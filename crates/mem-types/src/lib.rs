//! Base memory vocabulary shared by every crate in the Squeezy workspace.
//!
//! This crate defines the page/block geometry of the simulated machine
//! (4 KiB base pages, 128 MiB hot(un)plug memory blocks — the x86-64 Linux
//! defaults the paper uses), strongly-typed frame numbers, byte-size
//! helpers, frame ranges and a packed bitmap.
//!
//! Everything here is `no_std`-shaped plain data: no allocation policy, no
//! simulation state. It exists so that the guest memory manager, the
//! devices and the VMM all speak the same units without casting bugs.

pub mod bitmap;
pub mod range;
pub mod size;

pub use bitmap::Bitmap;
pub use range::FrameRange;
pub use size::ByteSize;

/// Base page size: 4 KiB, the x86-64 base page the paper's kernel uses.
pub const PAGE_SIZE: u64 = 4 * 1024;

/// Shift for [`PAGE_SIZE`] (`1 << PAGE_SHIFT == PAGE_SIZE`).
pub const PAGE_SHIFT: u32 = 12;

/// Memory hot(un)plug block size: 128 MiB, the x86-64 Linux
/// `memory_block_size_bytes()` default (§2.2 of the paper).
pub const MEM_BLOCK_SIZE: u64 = 128 * 1024 * 1024;

/// Pages per 128 MiB memory block.
pub const PAGES_PER_BLOCK: u64 = MEM_BLOCK_SIZE / PAGE_SIZE;

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;

/// A guest page-frame number (an index into guest physical memory).
///
/// Guest frames are what the guest buddy allocator hands out and what
/// memory blocks are made of. The VMM maps them to host frames lazily.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Gfn(pub u64);

impl Gfn {
    /// Returns the guest-physical byte address of this frame.
    #[inline]
    pub const fn addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// Returns the frame containing guest-physical byte address `addr`.
    #[inline]
    pub const fn from_addr(addr: u64) -> Self {
        Gfn(addr >> PAGE_SHIFT)
    }

    /// Returns the memory block this frame belongs to.
    #[inline]
    pub const fn block(self) -> BlockId {
        BlockId(self.0 / PAGES_PER_BLOCK)
    }

    /// Returns the frame `n` pages after this one.
    #[inline]
    pub const fn add(self, n: u64) -> Self {
        Gfn(self.0 + n)
    }

    /// Returns the index of this frame within its 128 MiB block.
    #[inline]
    pub const fn index_in_block(self) -> u64 {
        self.0 % PAGES_PER_BLOCK
    }
}

/// A host page-frame number (an index into host physical memory).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Hfn(pub u64);

/// Identifier of a 128 MiB hot(un)pluggable memory block.
///
/// Block `b` covers guest frames `[b * PAGES_PER_BLOCK, (b + 1) *
/// PAGES_PER_BLOCK)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockId(pub u64);

impl BlockId {
    /// Returns the first guest frame of this block.
    #[inline]
    pub const fn first_frame(self) -> Gfn {
        Gfn(self.0 * PAGES_PER_BLOCK)
    }

    /// Returns the frame range `[first, first + PAGES_PER_BLOCK)` covered
    /// by this block.
    #[inline]
    pub const fn frames(self) -> FrameRange {
        FrameRange {
            start: Gfn(self.0 * PAGES_PER_BLOCK),
            count: PAGES_PER_BLOCK,
        }
    }

    /// Returns the guest-physical byte address where this block starts.
    #[inline]
    pub const fn start_addr(self) -> u64 {
        self.0 * MEM_BLOCK_SIZE
    }
}

/// Converts a byte count to pages, asserting page alignment.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of [`PAGE_SIZE`].
#[inline]
pub fn bytes_to_pages(bytes: u64) -> u64 {
    assert!(
        bytes.is_multiple_of(PAGE_SIZE),
        "byte count {bytes} not page-aligned"
    );
    bytes / PAGE_SIZE
}

/// Converts a byte count to pages, rounding up to the next whole page.
#[inline]
pub const fn bytes_to_pages_ceil(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a byte count to 128 MiB blocks, asserting block alignment.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of [`MEM_BLOCK_SIZE`].
#[inline]
pub fn bytes_to_blocks(bytes: u64) -> u64 {
    assert!(
        bytes.is_multiple_of(MEM_BLOCK_SIZE),
        "byte count {bytes} not block-aligned"
    );
    bytes / MEM_BLOCK_SIZE
}

/// Rounds `bytes` up to the next multiple of [`MEM_BLOCK_SIZE`].
#[inline]
pub const fn align_up_to_block(bytes: u64) -> u64 {
    bytes.div_ceil(MEM_BLOCK_SIZE) * MEM_BLOCK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
        assert_eq!(PAGES_PER_BLOCK, 32 * 1024);
        assert_eq!(MEM_BLOCK_SIZE, 128 * MIB);
    }

    #[test]
    fn gfn_addr_roundtrip() {
        let g = Gfn(12345);
        assert_eq!(Gfn::from_addr(g.addr()), g);
        assert_eq!(g.addr(), 12345 * 4096);
    }

    #[test]
    fn gfn_block_mapping() {
        assert_eq!(Gfn(0).block(), BlockId(0));
        assert_eq!(Gfn(PAGES_PER_BLOCK - 1).block(), BlockId(0));
        assert_eq!(Gfn(PAGES_PER_BLOCK).block(), BlockId(1));
        assert_eq!(Gfn(PAGES_PER_BLOCK).index_in_block(), 0);
        assert_eq!(Gfn(PAGES_PER_BLOCK + 7).index_in_block(), 7);
    }

    #[test]
    fn block_frames_cover_whole_block() {
        let b = BlockId(3);
        let r = b.frames();
        assert_eq!(r.start, Gfn(3 * PAGES_PER_BLOCK));
        assert_eq!(r.count, PAGES_PER_BLOCK);
        assert_eq!(b.start_addr(), 3 * MEM_BLOCK_SIZE);
    }

    #[test]
    fn bytes_to_pages_exact_and_ceil() {
        assert_eq!(bytes_to_pages(8192), 2);
        assert_eq!(bytes_to_pages_ceil(1), 1);
        assert_eq!(bytes_to_pages_ceil(4096), 1);
        assert_eq!(bytes_to_pages_ceil(4097), 2);
        assert_eq!(bytes_to_pages_ceil(0), 0);
    }

    #[test]
    #[should_panic(expected = "not page-aligned")]
    fn bytes_to_pages_rejects_unaligned() {
        bytes_to_pages(100);
    }

    #[test]
    fn block_alignment_helpers() {
        assert_eq!(bytes_to_blocks(256 * MIB), 2);
        assert_eq!(align_up_to_block(1), MEM_BLOCK_SIZE);
        assert_eq!(align_up_to_block(MEM_BLOCK_SIZE), MEM_BLOCK_SIZE);
        assert_eq!(align_up_to_block(MEM_BLOCK_SIZE + 1), 2 * MEM_BLOCK_SIZE);
    }

    #[test]
    #[should_panic(expected = "not block-aligned")]
    fn bytes_to_blocks_rejects_unaligned() {
        bytes_to_blocks(MIB);
    }
}
