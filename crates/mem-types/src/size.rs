//! Human-readable byte sizes.

use core::fmt;

use crate::{GIB, KIB, MIB};

/// A byte count with human-readable `Display` (`512 MiB`, `2.00 GiB`, …).
///
/// `ByteSize` is a thin wrapper used wherever sizes appear in reports and
/// logs, so that every experiment prints sizes the way the paper does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Constructs a size of `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Constructs a size of `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// Constructs a size of `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// Returns the raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns this size expressed in whole mebibytes (truncating).
    pub const fn as_mib(self) -> u64 {
        self.0 / MIB
    }

    /// Returns this size expressed in mebibytes as a float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Returns this size expressed in gibibytes as a float.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / GIB as f64
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b == 0 {
            write!(f, "0 B")
        } else if b.is_multiple_of(GIB) {
            write!(f, "{} GiB", b / GIB)
        } else if b.is_multiple_of(MIB) {
            write!(f, "{} MiB", b / MIB)
        } else if b.is_multiple_of(KIB) {
            write!(f, "{} KiB", b / KIB)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl core::ops::Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl core::ops::Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl core::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;

    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(ByteSize::mib(512).to_string(), "512 MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2 GiB");
        assert_eq!(ByteSize::kib(4).to_string(), "4 KiB");
        assert_eq!(ByteSize(0).to_string(), "0 B");
        assert_eq!(ByteSize(100).to_string(), "100 B");
        assert_eq!(ByteSize::mib(1536).to_string(), "1536 MiB");
    }

    #[test]
    fn display_fractional() {
        assert_eq!(ByteSize(MIB * 3 / 2).to_string(), "1536 KiB");
        assert_eq!(ByteSize(MIB + 1).to_string(), "1.00 MiB");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ByteSize::mib(1) + ByteSize::mib(2), ByteSize::mib(3));
        assert_eq!(ByteSize::gib(1) - ByteSize::mib(512), ByteSize::mib(512));
        assert_eq!(ByteSize::mib(128) * 16, ByteSize::gib(2));
    }

    #[test]
    fn conversions() {
        assert_eq!(ByteSize::gib(2).as_mib(), 2048);
        assert!((ByteSize::mib(1536).as_gib_f64() - 1.5).abs() < 1e-9);
        assert!((ByteSize::kib(512).as_mib_f64() - 0.5).abs() < 1e-9);
    }
}
