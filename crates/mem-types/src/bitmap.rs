//! A packed fixed-size bitmap.
//!
//! Used by the virtio-mem device model to track which sub-blocks of the
//! managed region are plugged, and by the guest block layer to track
//! online blocks.

/// A fixed-capacity bitmap over `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// Creates a bitmap with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Returns the number of bits in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was = *word & mask != 0;
        *word |= mask;
        if !was {
            self.ones += 1;
        }
        was
    }

    /// Clears bit `i`, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was = *word & mask != 0;
        *word &= !mask;
        if was {
            self.ones -= 1;
        }
        was
    }

    /// Sets bits `[start, start + n)`, returning how many were newly
    /// set. Whole-word equivalent of `n` [`Bitmap::set`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the map.
    pub fn set_range(&mut self, start: usize, n: usize) -> usize {
        assert!(
            start + n <= self.len,
            "range {start}+{n} out of {}",
            self.len
        );
        let mut newly = 0;
        let mut i = start;
        let end = start + n;
        while i < end {
            let take = (64 - i % 64).min(end - i);
            let mask = (u64::MAX >> (64 - take)) << (i % 64);
            let word = &mut self.words[i / 64];
            newly += (mask & !*word).count_ones() as usize;
            *word |= mask;
            i += take;
        }
        self.ones += newly;
        newly
    }

    /// Clears bits `[start, start + n)`, returning how many were
    /// previously set. Whole-word equivalent of `n` [`Bitmap::clear`]
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the map.
    pub fn clear_range(&mut self, start: usize, n: usize) -> usize {
        assert!(
            start + n <= self.len,
            "range {start}+{n} out of {}",
            self.len
        );
        let mut dropped = 0;
        let mut i = start;
        let end = start + n;
        while i < end {
            let take = (64 - i % 64).min(end - i);
            let mask = (u64::MAX >> (64 - take)) << (i % 64);
            let word = &mut self.words[i / 64];
            dropped += (mask & *word).count_ones() as usize;
            *word &= !mask;
            i += take;
        }
        self.ones -= dropped;
        dropped
    }

    /// Counts clear bits in `[start, start + n)`.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the map.
    pub fn count_zeros_in(&self, start: usize, n: usize) -> usize {
        assert!(
            start + n <= self.len,
            "range {start}+{n} out of {}",
            self.len
        );
        let mut zeros = 0;
        let mut i = start;
        let end = start + n;
        while i < end {
            let take = (64 - i % 64).min(end - i);
            let mask = (u64::MAX >> (64 - take)) << (i % 64);
            zeros += (mask & !self.words[i / 64]).count_ones() as usize;
            i += take;
        }
        zeros
    }

    /// Returns the index of the first clear bit, or `None` if all set.
    pub fn first_zero(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let bit = (!w).trailing_zeros() as usize;
                let idx = wi * 64 + bit;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Returns the index of the first set bit, or `None` if all clear.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Iterates over the indices of all set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let len = self.len;
            let mut w = w;
            core::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = wi * 64 + bit;
                    if idx < len {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    /// Iterates over the indices of all clear bits in ascending order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.set(0));
        assert!(!b.set(64));
        assert!(!b.set(129));
        assert!(b.set(129), "second set reports prior value");
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn first_zero_and_one() {
        let mut b = Bitmap::new(70);
        assert_eq!(b.first_one(), None);
        assert_eq!(b.first_zero(), Some(0));
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.first_zero(), None);
        assert_eq!(b.first_one(), Some(0));
        b.clear(69);
        assert_eq!(b.first_zero(), Some(69));
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut b = Bitmap::new(200);
        let set = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<_> = b.iter_ones().collect();
        assert_eq!(got, set);
        let zeros: Vec<_> = b.iter_zeros().collect();
        assert_eq!(zeros.len(), 200 - set.len());
        assert!(!zeros.contains(&64));
    }

    #[test]
    fn range_ops_match_per_bit_ops() {
        // Every (start, n) window over a word boundary, checked against
        // the per-bit reference.
        for start in 0..70 {
            for n in 0..70 {
                if start + n > 130 {
                    continue;
                }
                let mut bulk = Bitmap::new(130);
                let mut bit = Bitmap::new(130);
                // Pre-set a pattern so set/clear see mixed prior state.
                for i in (0..130).step_by(3) {
                    bulk.set(i);
                    bit.set(i);
                }
                let newly = bulk.set_range(start, n);
                let mut newly_ref = 0;
                for i in start..start + n {
                    if !bit.set(i) {
                        newly_ref += 1;
                    }
                }
                assert_eq!(newly, newly_ref, "set_range({start}, {n})");
                assert_eq!(bulk, bit);
                assert_eq!(bulk.count_zeros_in(start, n), 0);

                let dropped = bulk.clear_range(start, n);
                let mut dropped_ref = 0;
                for i in start..start + n {
                    if bit.clear(i) {
                        dropped_ref += 1;
                    }
                }
                assert_eq!(dropped, dropped_ref, "clear_range({start}, {n})");
                assert_eq!(bulk, bit);
                assert_eq!(bulk.count_zeros_in(start, n), n);
            }
        }
    }

    #[test]
    fn count_zeros_in_counts_window_only() {
        let mut b = Bitmap::new(200);
        b.set(10);
        b.set(64);
        b.set(65);
        assert_eq!(b.count_zeros_in(0, 200), 197);
        assert_eq!(b.count_zeros_in(10, 1), 0);
        assert_eq!(b.count_zeros_in(11, 53), 53);
        assert_eq!(b.count_zeros_in(60, 10), 8);
        assert_eq!(b.count_zeros_in(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.first_zero(), None);
        assert_eq!(b.first_one(), None);
    }
}
