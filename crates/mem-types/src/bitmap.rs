//! A packed fixed-size bitmap.
//!
//! Used by the virtio-mem device model to track which sub-blocks of the
//! managed region are plugged, and by the guest block layer to track
//! online blocks.

/// A fixed-capacity bitmap over `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// Creates a bitmap with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Returns the number of bits in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was = *word & mask != 0;
        *word |= mask;
        if !was {
            self.ones += 1;
        }
        was
    }

    /// Clears bit `i`, returning its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was = *word & mask != 0;
        *word &= !mask;
        if was {
            self.ones -= 1;
        }
        was
    }

    /// Returns the index of the first clear bit, or `None` if all set.
    pub fn first_zero(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let bit = (!w).trailing_zeros() as usize;
                let idx = wi * 64 + bit;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Returns the index of the first set bit, or `None` if all clear.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Iterates over the indices of all set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let len = self.len;
            let mut w = w;
            core::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = wi * 64 + bit;
                    if idx < len {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    /// Iterates over the indices of all clear bits in ascending order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.set(0));
        assert!(!b.set(64));
        assert!(!b.set(129));
        assert!(b.set(129), "second set reports prior value");
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn first_zero_and_one() {
        let mut b = Bitmap::new(70);
        assert_eq!(b.first_one(), None);
        assert_eq!(b.first_zero(), Some(0));
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.first_zero(), None);
        assert_eq!(b.first_one(), Some(0));
        b.clear(69);
        assert_eq!(b.first_zero(), Some(69));
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut b = Bitmap::new(200);
        let set = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<_> = b.iter_ones().collect();
        assert_eq!(got, set);
        let zeros: Vec<_> = b.iter_zeros().collect();
        assert_eq!(zeros.len(), 200 - set.len());
        assert!(!zeros.contains(&64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.first_zero(), None);
        assert_eq!(b.first_one(), None);
    }
}
