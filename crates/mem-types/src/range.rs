//! Contiguous guest-frame ranges.

use core::fmt;

use crate::{Gfn, PAGE_SIZE};

/// A contiguous range of guest page frames `[start, start + count)`.
///
/// Ranges are how plug/unplug requests, EPT populate/release operations
/// and `madvise` calls describe memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FrameRange {
    /// First frame in the range.
    pub start: Gfn,
    /// Number of frames.
    pub count: u64,
}

impl FrameRange {
    /// Creates a range from its first frame and length in frames.
    pub const fn new(start: Gfn, count: u64) -> Self {
        FrameRange { start, count }
    }

    /// Creates a range covering `[start_addr, start_addr + bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not page-aligned.
    pub fn from_bytes(start_addr: u64, bytes: u64) -> Self {
        assert!(
            start_addr.is_multiple_of(PAGE_SIZE),
            "start not page-aligned"
        );
        assert!(bytes.is_multiple_of(PAGE_SIZE), "length not page-aligned");
        FrameRange {
            start: Gfn::from_addr(start_addr),
            count: bytes / PAGE_SIZE,
        }
    }

    /// Returns the first frame past the end of the range.
    pub const fn end(&self) -> Gfn {
        Gfn(self.start.0 + self.count)
    }

    /// Returns the range size in bytes.
    pub const fn bytes(&self) -> u64 {
        self.count * PAGE_SIZE
    }

    /// Returns `true` if the range holds zero frames.
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns `true` if `g` lies within the range.
    pub const fn contains(&self, g: Gfn) -> bool {
        g.0 >= self.start.0 && g.0 < self.start.0 + self.count
    }

    /// Returns `true` if the two ranges share at least one frame.
    pub const fn overlaps(&self, other: &FrameRange) -> bool {
        self.start.0 < other.start.0 + other.count && other.start.0 < self.start.0 + self.count
    }

    /// Iterates over every frame in the range.
    pub fn iter(&self) -> impl Iterator<Item = Gfn> + '_ {
        (self.start.0..self.start.0 + self.count).map(Gfn)
    }

    /// Returns the intersection of the two ranges, or `None` if disjoint.
    pub fn intersect(&self, other: &FrameRange) -> Option<FrameRange> {
        let lo = self.start.0.max(other.start.0);
        let hi = (self.start.0 + self.count).min(other.start.0 + other.count);
        if lo < hi {
            Some(FrameRange {
                start: Gfn(lo),
                count: hi - lo,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for FrameRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gfn[{:#x}..{:#x})",
            self.start.0,
            self.start.0 + self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_and_back() {
        let r = FrameRange::from_bytes(0x1000, 0x4000);
        assert_eq!(r.start, Gfn(1));
        assert_eq!(r.count, 4);
        assert_eq!(r.bytes(), 0x4000);
        assert_eq!(r.end(), Gfn(5));
    }

    #[test]
    #[should_panic(expected = "start not page-aligned")]
    fn from_bytes_rejects_unaligned_start() {
        FrameRange::from_bytes(0x100, 0x1000);
    }

    #[test]
    fn contains_and_overlaps() {
        let a = FrameRange::new(Gfn(10), 5);
        assert!(a.contains(Gfn(10)));
        assert!(a.contains(Gfn(14)));
        assert!(!a.contains(Gfn(15)));
        assert!(!a.contains(Gfn(9)));

        let b = FrameRange::new(Gfn(14), 2);
        let c = FrameRange::new(Gfn(15), 2);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn intersect() {
        let a = FrameRange::new(Gfn(0), 10);
        let b = FrameRange::new(Gfn(5), 10);
        assert_eq!(a.intersect(&b), Some(FrameRange::new(Gfn(5), 5)));
        let c = FrameRange::new(Gfn(20), 1);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn iter_yields_every_frame() {
        let r = FrameRange::new(Gfn(3), 3);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v, vec![Gfn(3), Gfn(4), Gfn(5)]);
        assert!(FrameRange::new(Gfn(0), 0).is_empty());
    }
}
