//! The memhog microbenchmark (§5.1).
//!
//! memhog repeatedly (de)allocates fixed-size chunks of memory, stressing
//! both CPU and memory. The reclamation microbenchmarks (Figures 5-7) run
//! 32 instances on a 32:1 VM sized so they occupy all of guest memory,
//! then kill them one by one and reclaim.

use guest_mm::Pid;
use mem_types::{bytes_to_pages_ceil, PAGE_SIZE};
use sim_core::CostModel;
use vmm::{FaultCharge, HostMemory, Vm, VmmError};

/// One memhog instance: a process with a fixed-size footprint.
#[derive(Clone, Copy, Debug)]
pub struct Memhog {
    /// The guest process backing this instance.
    pub pid: Pid,
    /// Target footprint in pages.
    pub pages: u64,
    /// Back the footprint with 2 MiB transparent huge pages.
    pub huge: bool,
}

impl Memhog {
    /// Spawns a memhog of `bytes` with the given allocation policy
    /// already configured on the process (callers set Squeezy policies
    /// through the manager).
    pub fn spawn(vm: &mut Vm, bytes: u64) -> Memhog {
        let pid = vm
            .guest
            .spawn_process(guest_mm::AllocPolicy::MovableDefault);
        Memhog {
            pid,
            pages: bytes_to_pages_ceil(bytes),
            huge: false,
        }
    }

    /// Spawns a memhog whose footprint is THP-backed (§7's 2 MiB fault
    /// granularity). `bytes` is rounded up to whole huge pages.
    pub fn spawn_huge(vm: &mut Vm, bytes: u64) -> Memhog {
        let pid = vm
            .guest
            .spawn_process(guest_mm::AllocPolicy::MovableDefault);
        let pages = bytes_to_pages_ceil(bytes).next_multiple_of(guest_mm::PAGES_PER_HUGE);
        Memhog {
            pid,
            pages,
            huge: true,
        }
    }

    /// Faults the full footprint in (the warm-up phase of §6.1.1).
    pub fn warm_up(
        &self,
        vm: &mut Vm,
        host: &mut HostMemory,
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        if self.huge {
            vm.touch_anon_huge(host, self.pid, self.pages / guest_mm::PAGES_PER_HUGE, cost)
        } else {
            vm.touch_anon(host, self.pid, self.pages, cost)
        }
    }

    /// One alloc/free cycle over `chunk_bytes` (memhog's steady-state
    /// churn): frees the chunk then faults it back.
    pub fn cycle(
        &self,
        vm: &mut Vm,
        host: &mut HostMemory,
        chunk_bytes: u64,
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        if self.huge {
            let chunk_huge = (chunk_bytes / PAGE_SIZE).div_ceil(guest_mm::PAGES_PER_HUGE);
            vm.guest.free_anon_huge(self.pid, chunk_huge)?;
            return vm.touch_anon_huge(host, self.pid, chunk_huge, cost);
        }
        let chunk_pages = chunk_bytes / PAGE_SIZE;
        vm.guest.free_anon(self.pid, chunk_pages)?;
        vm.touch_anon(host, self.pid, chunk_pages, cost)
    }

    /// Kills the instance, freeing its guest memory. Returns freed pages.
    pub fn kill(&self, vm: &mut Vm) -> Result<u64, VmmError> {
        Ok(vm.guest.exit_process(self.pid)?)
    }

    /// Footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::GuestMmConfig;
    use mem_types::{GIB, MIB};
    use vmm::VmConfig;

    fn vm_and_host() -> (Vm, HostMemory) {
        let mut host = HostMemory::new(8 * GIB);
        let vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: GIB,
                    kernel_bytes: 64 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 2.0,
            },
            &mut host,
        )
        .unwrap();
        (vm, host)
    }

    #[test]
    fn warm_up_faults_full_footprint() {
        let (mut vm, mut host) = vm_and_host();
        let cost = CostModel::default();
        let hog = Memhog::spawn(&mut vm, 128 * MIB);
        let c = hog.warm_up(&mut vm, &mut host, &cost).unwrap();
        assert_eq!(c.pages, 128 * MIB / PAGE_SIZE);
        assert_eq!(
            vm.guest.process(hog.pid).unwrap().rss_pages(),
            128 * MIB / PAGE_SIZE
        );
    }

    #[test]
    fn cycle_keeps_footprint_constant() {
        let (mut vm, mut host) = vm_and_host();
        let cost = CostModel::default();
        let hog = Memhog::spawn(&mut vm, 64 * MIB);
        hog.warm_up(&mut vm, &mut host, &cost).unwrap();
        let rss0 = vm.guest.process(hog.pid).unwrap().rss_pages();
        let c = hog.cycle(&mut vm, &mut host, 16 * MIB, &cost).unwrap();
        assert_eq!(c.pages, 16 * MIB / PAGE_SIZE);
        assert_eq!(vm.guest.process(hog.pid).unwrap().rss_pages(), rss0);
        // Recycled pages were already host-backed.
        assert_eq!(c.newly_backed, 0);
    }

    #[test]
    fn huge_memhog_maps_huge_pages() {
        let (mut vm, mut host) = vm_and_host();
        let cost = CostModel::default();
        vm.plug(256 * MIB, &cost).unwrap();
        let hog = Memhog::spawn_huge(&mut vm, 100 * MIB);
        assert_eq!(hog.pages % guest_mm::PAGES_PER_HUGE, 0, "rounded to huge");
        let c = hog.warm_up(&mut vm, &mut host, &cost).unwrap();
        assert_eq!(c.huge_mapped, hog.pages / guest_mm::PAGES_PER_HUGE);
        assert_eq!(vm.guest.process(hog.pid).unwrap().rss_huge(), c.huge_mapped);
        // Churn keeps the footprint and stays huge-backed.
        let c2 = hog.cycle(&mut vm, &mut host, 16 * MIB, &cost).unwrap();
        assert_eq!(c2.newly_backed, 0);
        assert_eq!(vm.guest.process(hog.pid).unwrap().rss_pages(), hog.pages);
    }

    #[test]
    fn kill_frees_guest_memory() {
        let (mut vm, mut host) = vm_and_host();
        let cost = CostModel::default();
        let hog = Memhog::spawn(&mut vm, 32 * MIB);
        hog.warm_up(&mut vm, &mut host, &cost).unwrap();
        let used = vm.guest.used_bytes();
        assert_eq!(hog.kill(&mut vm).unwrap(), 32 * MIB / PAGE_SIZE);
        assert_eq!(vm.guest.used_bytes(), used - 32 * MIB);
    }
}
