//! Synthetic invocation traces with Azure-like burstiness.
//!
//! The paper drives its FaaS experiments with traces from the Azure
//! Functions 2021 collection \[83\], selected for bursty request patterns
//! (§6.2.1), and analyses the 2019 production traces for Figure 2. The
//! datasets are proprietary, so this module synthesizes statistically
//! similar load: on/off-modulated Poisson arrivals (bursts of seconds to
//! tens of seconds over a low base rate) and Zipf-distributed per-function
//! popularity, matching the published heavy-tail characterizations
//! \[34, 66\].

use sim_core::rng::Zipf;
use sim_core::{poisson_arrivals_into, DetRng};

/// Parameters of one bursty arrival process.
#[derive(Clone, Copy, Debug)]
pub struct BurstyTraceConfig {
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Arrival rate during quiet phases (requests/second).
    pub base_rps: f64,
    /// Arrival rate during bursts (requests/second).
    pub burst_rps: f64,
    /// Mean burst length in seconds (exponential).
    pub mean_burst_s: f64,
    /// Mean quiet-gap length in seconds (exponential).
    pub mean_idle_s: f64,
}

impl Default for BurstyTraceConfig {
    fn default() -> Self {
        BurstyTraceConfig {
            duration_s: 450.0,
            base_rps: 0.3,
            burst_rps: 12.0,
            mean_burst_s: 15.0,
            mean_idle_s: 45.0,
        }
    }
}

/// Generates sorted arrival times (seconds) for a bursty trace.
///
/// The process alternates quiet and burst phases with exponential
/// lengths; within each phase arrivals are Poisson at the phase rate.
pub fn bursty_arrivals(cfg: &BurstyTraceConfig, rng: &mut DetRng) -> Vec<f64> {
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    let mut bursting = false;
    while t < cfg.duration_s {
        let (rate, mean_len) = if bursting {
            (cfg.burst_rps, cfg.mean_burst_s)
        } else {
            (cfg.base_rps, cfg.mean_idle_s)
        };
        let phase_end = (t + rng.exp(1.0 / mean_len)).min(cfg.duration_s);
        poisson_arrivals_into(rng, t, phase_end, rate, &mut arrivals);
        t = phase_end;
        bursting = !bursting;
    }
    arrivals
}

/// Per-function traces with Zipf-distributed popularity.
///
/// Returns `n` traces whose total average rate is `total_rps`; rank 0 is
/// the most popular function. Used to synthesize the Figure-2 top-10
/// churn analysis.
pub fn zipf_function_traces(
    n: usize,
    duration_s: f64,
    total_rps: f64,
    zipf_exponent: f64,
    rng: &mut DetRng,
) -> Vec<Vec<f64>> {
    let zipf = Zipf::new(n, zipf_exponent);
    (0..n)
        .map(|rank| {
            let share = zipf.pmf(rank);
            let rate = total_rps * share;
            let mut frng = rng.derive(rank as u64 + 1);
            // Popular functions burst harder (consistent with the Azure
            // analyses: bursts concentrate on hot functions).
            let cfg = BurstyTraceConfig {
                duration_s,
                base_rps: rate * 0.4,
                burst_rps: rate * 4.0,
                mean_burst_s: 20.0,
                mean_idle_s: 40.0,
            };
            bursty_arrivals(&cfg, &mut frng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let mut rng = DetRng::new(1);
        let cfg = BurstyTraceConfig::default();
        let a = bursty_arrivals(&cfg, &mut rng);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(a.iter().all(|&t| t >= 0.0 && t < cfg.duration_s));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BurstyTraceConfig::default();
        let a = bursty_arrivals(&cfg, &mut DetRng::new(7));
        let b = bursty_arrivals(&cfg, &mut DetRng::new(7));
        assert_eq!(a, b);
        let c = bursty_arrivals(&cfg, &mut DetRng::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn bursts_raise_rate_above_base() {
        let mut rng = DetRng::new(2);
        let cfg = BurstyTraceConfig {
            duration_s: 2000.0,
            base_rps: 0.2,
            burst_rps: 10.0,
            mean_burst_s: 20.0,
            mean_idle_s: 40.0,
        };
        let a = bursty_arrivals(&cfg, &mut rng);
        let avg_rate = a.len() as f64 / cfg.duration_s;
        // Expected = (0.2 * 40 + 10 * 20) / 60 ≈ 3.5 rps: between base
        // and burst rates.
        assert!(avg_rate > cfg.base_rps * 2.0, "rate {avg_rate}");
        assert!(avg_rate < cfg.burst_rps, "rate {avg_rate}");
    }

    #[test]
    fn bursty_traces_are_overdispersed() {
        // The coefficient of variation of inter-arrival times must
        // exceed 1 (a plain Poisson process has CV = 1): that is what
        // "bursty" means statistically, and what the Azure traces the
        // paper uses exhibit.
        let mut rng = DetRng::new(11);
        let cfg = BurstyTraceConfig {
            duration_s: 5000.0,
            ..BurstyTraceConfig::default()
        };
        let a = bursty_arrivals(&cfg, &mut rng);
        let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "inter-arrival CV {cv:.2} not bursty");
    }

    #[test]
    fn zipf_traces_decay_with_rank() {
        let mut rng = DetRng::new(3);
        let traces = zipf_function_traces(10, 3600.0, 30.0, 1.0, &mut rng);
        assert_eq!(traces.len(), 10);
        let first = traces[0].len();
        let last = traces[9].len();
        assert!(
            first > 3 * last,
            "rank 0 ({first}) should dominate rank 9 ({last})"
        );
        // Total volume is in the vicinity of total_rps * duration.
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let expected = 30.0 * 3600.0;
        let ratio = total as f64 / expected;
        assert!(
            (0.5..2.0).contains(&ratio),
            "total arrivals {total} vs expected {expected}"
        );
    }
}
