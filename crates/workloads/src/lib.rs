//! Workload models for the Squeezy evaluation.
//!
//! * [`functions`] — the Table-1 serverless functions (CNN, Bert, BFS,
//!   HTML) with vCPU shares, memory limits and anon/file footprint
//!   splits;
//! * [`memhog`] — the memhog microbenchmark driving Figures 5-7;
//! * [`trace`] — Azure-like bursty invocation trace synthesis;
//! * [`cluster`] — Zipf-skewed multi-tenant mixes for the cluster
//!   simulator;
//! * [`churn`] — the Figure-2 creations/evictions-per-minute analysis;
//! * [`registry`] — the named workload registry the scenario specs
//!   resolve against (`workload = diurnal`);
//! * [`source`] — streaming trace ingestion: the [`TraceSource`] trait
//!   plus file parsers/writers and generator adapters, so
//!   multi-million-invocation replays stay memory-bounded.

pub mod churn;
pub mod cluster;
pub mod functions;
pub mod memhog;
pub mod registry;
pub mod source;
pub mod trace;

pub use churn::{analyze_churn, ChurnResult, MinuteChurn};
pub use cluster::{
    diurnal_rate, diurnal_workload, multi_tenant_workload, DiurnalConfig, MultiTenantConfig,
    TenantLoad,
};
pub use functions::{FunctionKind, FunctionProfile};
pub use memhog::Memhog;
pub use registry::{WorkloadKind, WorkloadParams};
pub use source::{
    open_trace, read_trace_header, render_azure_minute, render_opendc, sample_azure_3day,
    sample_azure_rows, sample_opendc, validate_trace, Arrival, AzureMinuteSource,
    MaterializedSource, OpenDcRow, OpenDcSource, TraceError, TraceFormat, TraceHeader, TraceSource,
    TraceStats, TRACE_MAGIC,
};
pub use trace::{bursty_arrivals, zipf_function_traces, BurstyTraceConfig};
