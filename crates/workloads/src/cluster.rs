//! Zipf-skewed multi-tenant cluster workloads.
//!
//! A production FaaS cluster serves many tenants whose popularity is
//! heavy-tailed: the Azure trace analyses the paper builds on \[34, 66\]
//! report Zipf-like invocation shares with bursts concentrating on hot
//! functions. This module synthesizes that shape for the cluster
//! simulator: `n` tenants, rank-`r` tenant carrying a Zipf(`s`) share
//! of the total request rate through a bursty on/off process, with
//! function types cycled over the Table-1 mix so every run exercises
//! heterogeneous footprints.

use sim_core::rng::Zipf;
use sim_core::{nhpp_thinned_arrivals, DetRng};

use crate::functions::FunctionKind;
use crate::trace::zipf_function_traces;

/// Parameters of a multi-tenant cluster workload.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantConfig {
    /// Number of tenant functions (rank 0 is the hottest).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total average request rate across all tenants.
    pub total_rps: f64,
    /// Zipf popularity exponent (1.0 ≈ the published Azure fits).
    pub zipf_exponent: f64,
}

/// One tenant's synthesized load.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// The tenant's function type (cycled over the Table-1 mix by
    /// popularity rank).
    pub kind: FunctionKind,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
}

/// Synthesizes the tenant mix: Zipf-ranked bursty traces, one per
/// tenant, deterministic in `rng`.
///
/// # Panics
///
/// Panics if `cfg.tenants == 0`.
pub fn multi_tenant_workload(cfg: &MultiTenantConfig, rng: &mut DetRng) -> Vec<TenantLoad> {
    assert!(cfg.tenants > 0, "a cluster workload needs tenants");
    let traces = zipf_function_traces(
        cfg.tenants,
        cfg.duration_s,
        cfg.total_rps,
        cfg.zipf_exponent,
        rng,
    );
    traces
        .into_iter()
        .enumerate()
        .map(|(rank, arrivals)| TenantLoad {
            kind: FunctionKind::ALL[rank % FunctionKind::ALL.len()],
            arrivals,
        })
        .collect()
}

/// Parameters of a diurnal multi-tenant workload.
///
/// The fleet autoscaler only earns its keep against load that actually
/// moves: the Azure production traces show a pronounced day/night cycle
/// on top of per-function bursts. This generator modulates the total
/// request rate sinusoidally between `trough_rps` and `peak_rps` over
/// `period_s` (one "day", compressed to simulation scale), splits it
/// across tenants by Zipf popularity rank, and overlays short bursts so
/// scale-up decisions see both slow tides and fast spikes.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalConfig {
    /// Number of tenant functions (rank 0 is the hottest).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total request rate at the trough of the cycle.
    pub trough_rps: f64,
    /// Total request rate at the peak of the cycle.
    pub peak_rps: f64,
    /// Length of one full trough→peak→trough cycle in seconds.
    pub period_s: f64,
    /// Zipf popularity exponent across tenants.
    pub zipf_exponent: f64,
    /// Multiplier applied to the instantaneous rate during bursts
    /// (1.0 disables bursts).
    pub burst_factor: f64,
    /// Fraction of time spent bursting (mean burst 10 s).
    pub burst_duty: f64,
}

/// The total fleet-wide rate (requests/second) at time `t` — the
/// sinusoid the generator thins against, exposed so experiments can
/// plot offered load against scaling decisions.
pub fn diurnal_rate(cfg: &DiurnalConfig, t: f64) -> f64 {
    let mid = (cfg.peak_rps + cfg.trough_rps) / 2.0;
    let amp = (cfg.peak_rps - cfg.trough_rps) / 2.0;
    // Starts at the trough so short runs still see a rising edge.
    mid - amp * (2.0 * core::f64::consts::PI * t / cfg.period_s).cos()
}

/// Synthesizes the diurnal tenant mix: one trace per Zipf-ranked
/// tenant, deterministic in `rng`.
///
/// Each tenant's arrivals are a non-homogeneous Poisson process,
/// sampled by thinning against the tenant's share of the peak rate,
/// with on/off bursts multiplying the instantaneous rate by
/// `burst_factor`. Tenant function kinds cycle over the Table-1 mix by
/// rank, like [`multi_tenant_workload`].
///
/// # Panics
///
/// Panics if `cfg.tenants == 0`, rates are not positive,
/// `peak_rps < trough_rps`, `burst_factor < 1`, or `burst_duty` is
/// outside `[0, 1)`.
pub fn diurnal_workload(cfg: &DiurnalConfig, rng: &mut DetRng) -> Vec<TenantLoad> {
    assert!(cfg.tenants > 0, "a fleet workload needs tenants");
    assert!(
        cfg.trough_rps > 0.0 && cfg.peak_rps >= cfg.trough_rps,
        "need 0 < trough_rps <= peak_rps"
    );
    assert!(cfg.burst_factor >= 1.0, "bursts only add load");
    assert!(
        (0.0..1.0).contains(&cfg.burst_duty),
        "burst_duty must be in [0, 1): a full-duty \"burst\" is just a \
         higher base rate (fold it into trough/peak_rps instead)"
    );
    let zipf = Zipf::new(cfg.tenants, cfg.zipf_exponent);
    (0..cfg.tenants)
        .map(|rank| {
            let share = zipf.pmf(rank);
            let mut trng = rng.derive(rank as u64 + 1);
            // Envelope for thinning: the tenant's peak rate with the
            // burst multiplier always applied.
            let lambda_max = share * cfg.peak_rps * cfg.burst_factor;
            // On/off burst phases, like `bursty_arrivals`: mean burst
            // 10 s, mean gap sized to hit `burst_duty`.
            let mean_burst_s = 10.0;
            let mean_idle_s = if cfg.burst_duty > 0.0 && cfg.burst_duty < 1.0 {
                mean_burst_s * (1.0 - cfg.burst_duty) / cfg.burst_duty
            } else {
                f64::INFINITY
            };
            let mut bursting = false;
            let mut phase_end = if mean_idle_s.is_finite() {
                trng.exp(1.0 / mean_idle_s)
            } else {
                cfg.duration_s
            };
            let arrivals = nhpp_thinned_arrivals(&mut trng, lambda_max, cfg.duration_s, |r, t| {
                while t >= phase_end && phase_end < cfg.duration_s {
                    bursting = !bursting;
                    let mean_len = if bursting { mean_burst_s } else { mean_idle_s };
                    phase_end = if mean_len.is_finite() {
                        phase_end + r.exp(1.0 / mean_len)
                    } else {
                        cfg.duration_s
                    };
                }
                let burst = if bursting { cfg.burst_factor } else { 1.0 };
                share * diurnal_rate(cfg, t) * burst
            });
            TenantLoad {
                kind: FunctionKind::ALL[rank % FunctionKind::ALL.len()],
                arrivals,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: 8,
            duration_s: 1800.0,
            total_rps: 20.0,
            zipf_exponent: 1.0,
        }
    }

    #[test]
    fn tenant_popularity_is_heavy_tailed() {
        let tenants = multi_tenant_workload(&cfg(), &mut DetRng::new(5));
        assert_eq!(tenants.len(), 8);
        let hot = tenants[0].arrivals.len();
        let cold = tenants[7].arrivals.len();
        assert!(hot > 3 * cold, "rank 0 ({hot}) dominates rank 7 ({cold})");
    }

    #[test]
    fn function_mix_cycles_over_ranks() {
        let tenants = multi_tenant_workload(&cfg(), &mut DetRng::new(5));
        assert_eq!(tenants[0].kind, FunctionKind::Html);
        assert_eq!(tenants[1].kind, FunctionKind::Cnn);
        assert_eq!(tenants[4].kind, FunctionKind::Html, "wraps around");
    }

    #[test]
    fn deterministic_in_the_stream() {
        let a = multi_tenant_workload(&cfg(), &mut DetRng::new(9));
        let b = multi_tenant_workload(&cfg(), &mut DetRng::new(9));
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.arrivals, tb.arrivals);
        }
    }

    fn dcfg() -> DiurnalConfig {
        DiurnalConfig {
            tenants: 6,
            duration_s: 1200.0,
            trough_rps: 2.0,
            peak_rps: 20.0,
            period_s: 1200.0,
            zipf_exponent: 1.0,
            burst_factor: 3.0,
            burst_duty: 0.1,
        }
    }

    #[test]
    fn diurnal_rate_cycles_between_trough_and_peak() {
        let c = dcfg();
        assert!(
            (diurnal_rate(&c, 0.0) - 2.0).abs() < 1e-9,
            "starts at trough"
        );
        assert!(
            (diurnal_rate(&c, 600.0) - 20.0).abs() < 1e-9,
            "peaks mid-cycle"
        );
        assert!(
            (diurnal_rate(&c, 1200.0) - 2.0).abs() < 1e-9,
            "returns to trough"
        );
    }

    #[test]
    fn diurnal_load_swells_toward_the_peak() {
        let tenants = diurnal_workload(&dcfg(), &mut DetRng::new(3));
        assert_eq!(tenants.len(), 6);
        let count_in = |lo: f64, hi: f64| -> usize {
            tenants
                .iter()
                .flat_map(|t| &t.arrivals)
                .filter(|&&a| a >= lo && a < hi)
                .count()
        };
        let trough = count_in(0.0, 200.0) + count_in(1000.0, 1200.0);
        let peak = count_in(400.0, 800.0);
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak window {peak} ≫ trough windows {trough}"
        );
        for t in &tenants {
            assert!(t.arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted");
        }
    }

    #[test]
    fn diurnal_popularity_is_heavy_tailed_and_deterministic() {
        let a = diurnal_workload(&dcfg(), &mut DetRng::new(4));
        let b = diurnal_workload(&dcfg(), &mut DetRng::new(4));
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.arrivals, tb.arrivals);
        }
        assert!(
            a[0].arrivals.len() > 3 * a[5].arrivals.len(),
            "rank 0 ({}) dominates rank 5 ({})",
            a[0].arrivals.len(),
            a[5].arrivals.len()
        );
    }

    #[test]
    fn diurnal_volume_matches_the_envelope() {
        // Expected volume = mean rate × duration; thinning should land
        // in the vicinity (bursts add burst_duty × (factor-1) × mean).
        let c = DiurnalConfig {
            burst_factor: 1.0,
            burst_duty: 0.0,
            ..dcfg()
        };
        let tenants = diurnal_workload(&c, &mut DetRng::new(5));
        let total: usize = tenants.iter().map(|t| t.arrivals.len()).sum();
        let expected = (c.trough_rps + c.peak_rps) / 2.0 * c.duration_s;
        let ratio = total as f64 / expected;
        assert!(
            (0.7..1.3).contains(&ratio),
            "total {total} vs expected {expected}"
        );
    }
}
