//! Zipf-skewed multi-tenant cluster workloads.
//!
//! A production FaaS cluster serves many tenants whose popularity is
//! heavy-tailed: the Azure trace analyses the paper builds on \[34, 66\]
//! report Zipf-like invocation shares with bursts concentrating on hot
//! functions. This module synthesizes that shape for the cluster
//! simulator: `n` tenants, rank-`r` tenant carrying a Zipf(`s`) share
//! of the total request rate through a bursty on/off process, with
//! function types cycled over the Table-1 mix so every run exercises
//! heterogeneous footprints.

use sim_core::DetRng;

use crate::functions::FunctionKind;
use crate::trace::zipf_function_traces;

/// Parameters of a multi-tenant cluster workload.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantConfig {
    /// Number of tenant functions (rank 0 is the hottest).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total average request rate across all tenants.
    pub total_rps: f64,
    /// Zipf popularity exponent (1.0 ≈ the published Azure fits).
    pub zipf_exponent: f64,
}

/// One tenant's synthesized load.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// The tenant's function type (cycled over the Table-1 mix by
    /// popularity rank).
    pub kind: FunctionKind,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
}

/// Synthesizes the tenant mix: Zipf-ranked bursty traces, one per
/// tenant, deterministic in `rng`.
///
/// # Panics
///
/// Panics if `cfg.tenants == 0`.
pub fn multi_tenant_workload(cfg: &MultiTenantConfig, rng: &mut DetRng) -> Vec<TenantLoad> {
    assert!(cfg.tenants > 0, "a cluster workload needs tenants");
    let traces = zipf_function_traces(
        cfg.tenants,
        cfg.duration_s,
        cfg.total_rps,
        cfg.zipf_exponent,
        rng,
    );
    traces
        .into_iter()
        .enumerate()
        .map(|(rank, arrivals)| TenantLoad {
            kind: FunctionKind::ALL[rank % FunctionKind::ALL.len()],
            arrivals,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: 8,
            duration_s: 1800.0,
            total_rps: 20.0,
            zipf_exponent: 1.0,
        }
    }

    #[test]
    fn tenant_popularity_is_heavy_tailed() {
        let tenants = multi_tenant_workload(&cfg(), &mut DetRng::new(5));
        assert_eq!(tenants.len(), 8);
        let hot = tenants[0].arrivals.len();
        let cold = tenants[7].arrivals.len();
        assert!(hot > 3 * cold, "rank 0 ({hot}) dominates rank 7 ({cold})");
    }

    #[test]
    fn function_mix_cycles_over_ranks() {
        let tenants = multi_tenant_workload(&cfg(), &mut DetRng::new(5));
        assert_eq!(tenants[0].kind, FunctionKind::Html);
        assert_eq!(tenants[1].kind, FunctionKind::Cnn);
        assert_eq!(tenants[4].kind, FunctionKind::Html, "wraps around");
    }

    #[test]
    fn deterministic_in_the_stream() {
        let a = multi_tenant_workload(&cfg(), &mut DetRng::new(9));
        let b = multi_tenant_workload(&cfg(), &mut DetRng::new(9));
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.arrivals, tb.arrivals);
        }
    }
}
