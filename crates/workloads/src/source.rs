//! Streaming trace ingestion: the [`TraceSource`] subsystem.
//!
//! Every workload so far is a synthetic generator materialized fully in
//! memory before the run, so replay scale is capped by RAM rather than
//! by the event engine. A [`TraceSource`] instead yields [`Arrival`]s
//! lazily in non-decreasing time order, so simulator memory stays
//! O(pending) instead of O(total invocations) — the shape dslab's
//! OpenDC trace driver and the faas-sim Azure arrival-profile parser
//! use for file-driven replay.
//!
//! Three source families live behind the trait:
//!
//! * [`AzureMinuteSource`] — a streaming CSV parser for
//!   Azure-Functions-2021-style per-minute invocation-count rows,
//!   expanded to arrivals on the fly with seeded within-minute jitter
//!   (memory: one minute of arrivals).
//! * [`OpenDcSource`] — OpenDC-style rows carrying exact timestamps
//!   plus duration/memory hints (memory: one row).
//! * [`MaterializedSource`] — an adapter wrapping the existing
//!   materialized generators ([`WorkloadKind::generate`]), so all
//!   workloads flow through the one interface.
//!
//! The container that grows this repo is offline, so committed sample
//! traces under `examples/traces/` are *rendered* by the deterministic
//! writers here ([`render_azure_minute`], [`render_opendc`], driven by
//! `repro gen-trace`) and byte-pinned by test.
//!
//! Determinism: a trace file fully determines its arrival stream given
//! `(file seed, trial)` — the within-minute jitter of every Azure row
//! comes from a pure [`DetRng::derive`] chain over
//! `(seed, trial, minute, tenant)`, so replays are byte-identical for
//! any job count and trials draw distinct jitter. OpenDC rows carry
//! exact timestamps and are trial-invariant.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};

use sim_core::{DetRng, SimDuration};

use crate::functions::FunctionKind;
use crate::registry::{WorkloadKind, WorkloadParams};
use crate::TenantLoad;

/// Magic prefix of the first line of every trace file; the rest of the
/// line names the format ([`TraceFormat::key`]).
pub const TRACE_MAGIC: &str = "# squeezy-trace v1";

/// Derivation tag of the per-row within-minute jitter streams. The
/// chain hangs off the *file's own* seed (`seed → 0xA21 → trial →
/// minute → tenant`), independent of every scenario stream tag.
const AZURE_JITTER_STREAM: u64 = 0xA21;

/// Nanoseconds per trace minute.
const MINUTE_NS: u64 = 60_000_000_000;

/// One invocation pulled lazily from a trace source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time in nanoseconds since the trace origin.
    pub t_ns: u64,
    /// The function the invocation runs.
    pub function: FunctionKind,
    /// Tenant (deployment-slot) index, `< kinds().len()`.
    pub tenant: usize,
    /// Trace-recorded execution-time hint in seconds, when the format
    /// carries one (OpenDC); `None` means "use the function model".
    pub duration_s: Option<f64>,
    /// Trace-recorded memory hint in bytes, when the format carries one.
    pub memory_bytes: Option<u64>,
}

/// A parse or validation error, tied to the offending line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceError {
    /// 1-based physical line number; 0 when not tied to a line (I/O).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl TraceError {
    fn at(line: usize, msg: impl Into<String>) -> TraceError {
        TraceError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

/// A lazy, time-ordered arrival stream.
///
/// Implementations yield arrivals with non-decreasing `t_ns`; the
/// simulators pull them one at a time through the event loop, so the
/// whole trace is never resident.
pub trait TraceSource {
    /// The deployment slots (tenant kinds) this trace drives, in slot
    /// order. `Arrival::tenant` indexes into this list.
    fn kinds(&self) -> &[FunctionKind];

    /// Pulls the next arrival; `Ok(None)` at end of trace.
    fn next_arrival(&mut self) -> Result<Option<Arrival>, TraceError>;
}

/// The on-disk trace formats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFormat {
    /// Per-minute invocation counts, expanded with seeded jitter.
    AzureMinute,
    /// Exact-timestamp rows with duration/memory hints.
    OpenDc,
}

impl TraceFormat {
    /// The format name carried on the magic line.
    pub fn key(self) -> &'static str {
        match self {
            TraceFormat::AzureMinute => "azure-minute",
            TraceFormat::OpenDc => "opendc",
        }
    }
}

/// The parsed directive header of a trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// Which format the body rows use.
    pub format: TraceFormat,
    /// The file's jitter seed (azure-minute; 0 for opendc).
    pub seed: u64,
    /// Tenant slots in order, from the `# tenants = ...` directive.
    pub kinds: Vec<FunctionKind>,
}

/// Summary of a full validation scan ([`validate_trace`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    /// Total arrivals the trace expands to (at trial 0).
    pub arrivals: u64,
    /// Time of the last arrival, ns since the trace origin.
    pub end_ns: u64,
}

/// A buffered line reader that tracks 1-based physical line numbers.
struct LineReader<R: BufRead> {
    r: R,
    line: usize,
    buf: String,
}

impl<R: BufRead> LineReader<R> {
    fn new(r: R) -> Self {
        LineReader {
            r,
            line: 0,
            buf: String::new(),
        }
    }

    /// Reads the next line (without terminator); `None` at EOF.
    fn next_line(&mut self) -> Result<Option<&str>, TraceError> {
        self.buf.clear();
        let n = self
            .r
            .read_line(&mut self.buf)
            .map_err(|e| TraceError::at(self.line + 1, format!("read failed: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        while self.buf.ends_with('\n') || self.buf.ends_with('\r') {
            self.buf.pop();
        }
        Ok(Some(&self.buf))
    }

    /// Reads the next data line, skipping blanks and `#` comments.
    fn next_data_line(&mut self) -> Result<Option<(usize, String)>, TraceError> {
        loop {
            match self.next_line()? {
                None => return Ok(None),
                Some(s) => {
                    let t = s.trim();
                    if t.is_empty() || t.starts_with('#') {
                        continue;
                    }
                    let t = t.to_string();
                    return Ok(Some((self.line, t)));
                }
            }
        }
    }
}

/// Parses the magic line + `#` directives up to and including the
/// column-header row, leaving the reader at the first data row.
fn parse_header<R: BufRead>(r: &mut LineReader<R>) -> Result<TraceHeader, TraceError> {
    let first = r
        .next_line()?
        .ok_or_else(|| TraceError::at(1, "empty file (expected a `# squeezy-trace` magic line)"))?;
    let rest = first.strip_prefix(TRACE_MAGIC).ok_or_else(|| {
        TraceError::at(
            1,
            format!("not a trace file: first line must start with {TRACE_MAGIC:?}"),
        )
    })?;
    let format = match rest.trim() {
        "azure-minute" => TraceFormat::AzureMinute,
        "opendc" => TraceFormat::OpenDc,
        other => {
            return Err(TraceError::at(
                1,
                format!("unknown trace format {other:?} (valid: azure-minute, opendc)"),
            ))
        }
    };
    let mut seed: Option<u64> = None;
    let mut kinds: Option<Vec<FunctionKind>> = None;
    loop {
        let line = r.line;
        let s = match r.next_line()? {
            None => {
                return Err(TraceError::at(
                    line,
                    "truncated header: no column-header row",
                ))
            }
            Some(s) => s.trim().to_string(),
        };
        if s.is_empty() {
            continue;
        }
        if let Some(directive) = s.strip_prefix('#') {
            let directive = directive.trim();
            if let Some(v) = directive.strip_prefix("seed =") {
                seed = Some(parse_u64(v.trim(), r.line)?);
            } else if let Some(v) = directive.strip_prefix("tenants =") {
                let mut ks = Vec::new();
                for part in v.split(',') {
                    let key = part.trim();
                    ks.push(FunctionKind::from_key(key).map_err(|e| TraceError::at(r.line, e))?);
                }
                if ks.is_empty() {
                    return Err(TraceError::at(r.line, "tenants directive lists no kinds"));
                }
                kinds = Some(ks);
            }
            continue;
        }
        // First non-comment line: the column header.
        let want = match format {
            TraceFormat::AzureMinute => "minute,tenant,count",
            TraceFormat::OpenDc => "timestamp_ms,tenant,invocations,avg_exec_ms,memory_mb",
        };
        if s != want {
            return Err(TraceError::at(
                r.line,
                format!("bad column header {s:?} (expected {want:?})"),
            ));
        }
        break;
    }
    let kinds = kinds
        .ok_or_else(|| TraceError::at(r.line, "missing `# tenants = <kind>, ...` directive"))?;
    let seed = match format {
        TraceFormat::AzureMinute => seed.ok_or_else(|| {
            TraceError::at(r.line, "missing `# seed = <u64>` directive (azure-minute)")
        })?,
        TraceFormat::OpenDc => 0,
    };
    Ok(TraceHeader {
        format,
        seed,
        kinds,
    })
}

fn parse_u64(s: &str, line: usize) -> Result<u64, TraceError> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| TraceError::at(line, format!("bad integer {s:?}")))
}

fn parse_usize(s: &str, line: usize) -> Result<usize, TraceError> {
    s.parse()
        .map_err(|_| TraceError::at(line, format!("bad index {s:?}")))
}

fn parse_f64(s: &str, line: usize) -> Result<f64, TraceError> {
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(TraceError::at(line, format!("bad number {s:?}"))),
    }
}

/// Streams Azure-Functions-2021-style per-minute invocation counts.
///
/// Body rows are `minute,tenant,count`, sorted by minute (non-
/// decreasing) and by tenant (strictly increasing within a minute).
/// Each row expands to `count` arrivals at seeded uniform offsets
/// within its minute; only one minute of expanded arrivals is ever
/// buffered.
pub struct AzureMinuteSource<R: BufRead> {
    kinds: Vec<FunctionKind>,
    seed: u64,
    trial: u64,
    reader: LineReader<R>,
    /// A row read past the current minute, waiting for its turn.
    pending_row: Option<(u64, usize, u64)>,
    last_minute: Option<u64>,
    last_tenant: usize,
    /// The current minute's arrivals, sorted by `(t_ns, tenant)`.
    buf: Vec<Arrival>,
    pos: usize,
    done: bool,
}

impl AzureMinuteSource<BufReader<File>> {
    /// Opens a trace file (must be azure-minute format).
    pub fn from_path(path: &str, trial: u64) -> Result<Self, TraceError> {
        let f = File::open(path).map_err(|e| TraceError::at(0, format!("{path}: {e}")))?;
        Self::new(BufReader::new(f), trial)
    }
}

impl<R: BufRead> AzureMinuteSource<R> {
    /// Parses the header and prepares to stream rows.
    pub fn new(reader: R, trial: u64) -> Result<Self, TraceError> {
        let mut reader = LineReader::new(reader);
        let header = parse_header(&mut reader)?;
        if header.format != TraceFormat::AzureMinute {
            return Err(TraceError::at(
                1,
                format!(
                    "expected an azure-minute trace, found {}",
                    header.format.key()
                ),
            ));
        }
        Ok(Self::from_parts(header, reader, trial))
    }

    fn from_parts(header: TraceHeader, reader: LineReader<R>, trial: u64) -> Self {
        AzureMinuteSource {
            kinds: header.kinds,
            seed: header.seed,
            trial,
            reader,
            pending_row: None,
            last_minute: None,
            last_tenant: 0,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    fn parse_row(&mut self) -> Result<Option<(u64, usize, u64)>, TraceError> {
        let Some((line, s)) = self.reader.next_data_line()? else {
            return Ok(None);
        };
        let mut it = s.split(',');
        let (Some(m), Some(t), Some(c), None) = (it.next(), it.next(), it.next(), it.next()) else {
            return Err(TraceError::at(
                line,
                format!("malformed row {s:?} (expected `minute,tenant,count`)"),
            ));
        };
        let minute = parse_u64(m.trim(), line)?;
        let tenant = parse_usize(t.trim(), line)?;
        let count = parse_u64(c.trim(), line)?;
        if tenant >= self.kinds.len() {
            return Err(TraceError::at(
                line,
                format!(
                    "tenant index {tenant} out of range (trace declares {} tenants)",
                    self.kinds.len()
                ),
            ));
        }
        match self.last_minute {
            Some(last) if minute < last => {
                return Err(TraceError::at(
                    line,
                    format!("out-of-order minute {minute} after {last}"),
                ));
            }
            Some(last) if minute == last && tenant <= self.last_tenant => {
                return Err(TraceError::at(
                    line,
                    format!(
                        "tenant {tenant} repeats or regresses within minute {minute} \
                         (rows must be sorted by minute, then tenant)"
                    ),
                ));
            }
            _ => {}
        }
        self.last_minute = Some(minute);
        self.last_tenant = tenant;
        Ok(Some((minute, tenant, count)))
    }

    /// Expands the next minute's rows into `buf`; false at EOF.
    fn refill(&mut self) -> Result<bool, TraceError> {
        self.buf.clear();
        self.pos = 0;
        let first = match self.pending_row.take() {
            Some(row) => row,
            None => match self.parse_row()? {
                Some(row) => row,
                None => return Ok(false),
            },
        };
        let minute = first.0;
        let mut row = Some(first);
        while let Some((m, tenant, count)) = row {
            if m != minute {
                self.pending_row = Some((m, tenant, count));
                break;
            }
            let mut rng = DetRng::new(self.seed)
                .derive(AZURE_JITTER_STREAM)
                .derive(self.trial)
                .derive(minute)
                .derive(tenant as u64);
            for _ in 0..count {
                let offset = rng.range_f64(0.0, 60.0);
                self.buf.push(Arrival {
                    t_ns: minute * MINUTE_NS + SimDuration::from_secs_f64(offset).as_nanos(),
                    function: self.kinds[tenant],
                    tenant,
                    duration_s: None,
                    memory_bytes: None,
                });
            }
            row = self.parse_row()?;
        }
        self.buf.sort_by_key(|a| (a.t_ns, a.tenant));
        Ok(true)
    }
}

impl<R: BufRead> TraceSource for AzureMinuteSource<R> {
    fn kinds(&self) -> &[FunctionKind] {
        &self.kinds
    }

    fn next_arrival(&mut self) -> Result<Option<Arrival>, TraceError> {
        loop {
            if self.pos < self.buf.len() {
                self.pos += 1;
                return Ok(Some(self.buf[self.pos - 1]));
            }
            if self.done {
                return Ok(None);
            }
            if !self.refill()? {
                self.done = true;
            }
        }
    }
}

/// Streams OpenDC-style exact-timestamp rows.
///
/// Body rows are `timestamp_ms,tenant,invocations,avg_exec_ms,memory_mb`
/// with non-decreasing timestamps; each row yields `invocations`
/// arrivals at exactly its timestamp, carrying duration and memory
/// hints. Trial-invariant (no jitter).
pub struct OpenDcSource<R: BufRead> {
    kinds: Vec<FunctionKind>,
    reader: LineReader<R>,
    /// Remaining repeats of the current row.
    cur: Option<(Arrival, u64)>,
    last_ts: Option<u64>,
    done: bool,
}

impl OpenDcSource<BufReader<File>> {
    /// Opens a trace file (must be opendc format).
    pub fn from_path(path: &str) -> Result<Self, TraceError> {
        let f = File::open(path).map_err(|e| TraceError::at(0, format!("{path}: {e}")))?;
        Self::new(BufReader::new(f))
    }
}

impl<R: BufRead> OpenDcSource<R> {
    /// Parses the header and prepares to stream rows.
    pub fn new(reader: R) -> Result<Self, TraceError> {
        let mut reader = LineReader::new(reader);
        let header = parse_header(&mut reader)?;
        if header.format != TraceFormat::OpenDc {
            return Err(TraceError::at(
                1,
                format!("expected an opendc trace, found {}", header.format.key()),
            ));
        }
        Ok(Self::from_parts(header, reader))
    }

    fn from_parts(header: TraceHeader, reader: LineReader<R>) -> Self {
        OpenDcSource {
            kinds: header.kinds,
            reader,
            cur: None,
            last_ts: None,
            done: false,
        }
    }

    fn parse_row(&mut self) -> Result<Option<(Arrival, u64)>, TraceError> {
        let Some((line, s)) = self.reader.next_data_line()? else {
            return Ok(None);
        };
        let fields: Vec<&str> = s.split(',').collect();
        let [ts, tenant, invocations, exec, mem] = fields.as_slice() else {
            return Err(TraceError::at(
                line,
                format!(
                    "malformed row {s:?} (expected \
                     `timestamp_ms,tenant,invocations,avg_exec_ms,memory_mb`)"
                ),
            ));
        };
        let ts_ms = parse_u64(ts.trim(), line)?;
        let tenant = parse_usize(tenant.trim(), line)?;
        let invocations = parse_u64(invocations.trim(), line)?;
        let avg_exec_ms = parse_f64(exec.trim(), line)?;
        let memory_mb = parse_u64(mem.trim(), line)?;
        if tenant >= self.kinds.len() {
            return Err(TraceError::at(
                line,
                format!(
                    "tenant index {tenant} out of range (trace declares {} tenants)",
                    self.kinds.len()
                ),
            ));
        }
        if avg_exec_ms < 0.0 {
            return Err(TraceError::at(
                line,
                format!("negative avg_exec_ms {avg_exec_ms}"),
            ));
        }
        if let Some(last) = self.last_ts {
            if ts_ms < last {
                return Err(TraceError::at(
                    line,
                    format!("out-of-order timestamp {ts_ms} ms after {last} ms"),
                ));
            }
        }
        self.last_ts = Some(ts_ms);
        let arrival = Arrival {
            t_ns: ts_ms * 1_000_000,
            function: self.kinds[tenant],
            tenant,
            duration_s: Some(avg_exec_ms / 1e3),
            memory_bytes: Some(memory_mb * mem_types::MIB),
        };
        Ok(Some((arrival, invocations)))
    }
}

impl<R: BufRead> TraceSource for OpenDcSource<R> {
    fn kinds(&self) -> &[FunctionKind] {
        &self.kinds
    }

    fn next_arrival(&mut self) -> Result<Option<Arrival>, TraceError> {
        loop {
            if let Some((arrival, remaining)) = self.cur {
                if remaining > 0 {
                    self.cur = Some((arrival, remaining - 1));
                    return Ok(Some(arrival));
                }
                self.cur = None;
            }
            if self.done {
                return Ok(None);
            }
            match self.parse_row()? {
                Some(row) => self.cur = Some(row),
                None => self.done = true,
            }
        }
    }
}

/// Wraps materialized per-tenant arrival lists as a [`TraceSource`],
/// merging them into one `(t_ns, tenant)`-ordered stream — the same
/// order the simulators' in-memory merge uses, so a workload streamed
/// through this adapter replays byte-identically to its legacy path.
pub struct MaterializedSource {
    kinds: Vec<FunctionKind>,
    arrivals: Vec<Vec<f64>>,
    cursors: Vec<usize>,
}

impl MaterializedSource {
    /// Wraps already-generated tenant loads.
    pub fn new(loads: Vec<TenantLoad>) -> Self {
        MaterializedSource {
            kinds: loads.iter().map(|t| t.kind).collect(),
            cursors: vec![0; loads.len()],
            arrivals: loads.into_iter().map(|t| t.arrivals).collect(),
        }
    }

    /// Generates a named workload and wraps it — the adapter that puts
    /// azure-trace/zipf-cluster/diurnal (and the rest of the registry)
    /// behind the streaming interface.
    pub fn from_workload(kind: WorkloadKind, params: &WorkloadParams, rng: &mut DetRng) -> Self {
        MaterializedSource::new(kind.generate(params, rng))
    }
}

impl TraceSource for MaterializedSource {
    fn kinds(&self) -> &[FunctionKind] {
        &self.kinds
    }

    fn next_arrival(&mut self) -> Result<Option<Arrival>, TraceError> {
        let mut best: Option<(u64, usize)> = None;
        for (tenant, (arrivals, &cursor)) in self.arrivals.iter().zip(&self.cursors).enumerate() {
            if let Some(&a) = arrivals.get(cursor) {
                let t_ns = SimDuration::from_secs_f64(a).as_nanos();
                if best.is_none_or(|(bt, bten)| (t_ns, tenant) < (bt, bten)) {
                    best = Some((t_ns, tenant));
                }
            }
        }
        Ok(best.map(|(t_ns, tenant)| {
            self.cursors[tenant] += 1;
            Arrival {
                t_ns,
                function: self.kinds[tenant],
                tenant,
                duration_s: None,
                memory_bytes: None,
            }
        }))
    }
}

/// Reads just the header of a trace file (cheap: no body scan). Used
/// by the scenario layer to learn the tenant kinds a trace drives.
pub fn read_trace_header(path: &str) -> Result<TraceHeader, TraceError> {
    let f = File::open(path).map_err(|e| TraceError::at(0, format!("{path}: {e}")))?;
    parse_header(&mut LineReader::new(BufReader::new(f)))
}

/// Opens a trace file as a boxed source, dispatching on the magic line.
pub fn open_trace(path: &str, trial: u64) -> Result<Box<dyn TraceSource>, TraceError> {
    let f = File::open(path).map_err(|e| TraceError::at(0, format!("{path}: {e}")))?;
    let mut reader = LineReader::new(BufReader::new(f));
    let header = parse_header(&mut reader)?;
    Ok(match header.format {
        TraceFormat::AzureMinute => Box::new(AzureMinuteSource::from_parts(header, reader, trial)),
        TraceFormat::OpenDc => Box::new(OpenDcSource::from_parts(header, reader)),
    })
}

/// Fully scans a trace (at trial 0), checking every row parses and the
/// stream is time-ordered; returns arrival count and end time. The
/// scenario layer runs this preflight before replaying, so a malformed
/// file fails with its line number instead of mid-simulation.
pub fn validate_trace(path: &str) -> Result<TraceStats, TraceError> {
    let mut src = open_trace(path, 0)?;
    let mut stats = TraceStats {
        arrivals: 0,
        end_ns: 0,
    };
    let mut last = 0u64;
    while let Some(a) = src.next_arrival()? {
        debug_assert!(a.t_ns >= last, "sources yield non-decreasing times");
        last = a.t_ns;
        stats.arrivals += 1;
        stats.end_ns = a.t_ns;
    }
    Ok(stats)
}

fn render_header(out: &mut String, format: TraceFormat, seed: Option<u64>, kinds: &[FunctionKind]) {
    out.push_str(&format!("{TRACE_MAGIC} {}\n", format.key()));
    if let Some(seed) = seed {
        out.push_str(&format!("# seed = {seed:#x}\n"));
    }
    let keys: Vec<&str> = kinds.iter().map(|k| k.key()).collect();
    out.push_str(&format!("# tenants = {}\n", keys.join(", ")));
}

/// Renders an azure-minute trace deterministically: the writer half of
/// the round-trip the parser tests pin.
///
/// # Panics
///
/// Panics if `kinds` is empty, a row's tenant is out of range, or the
/// rows are not sorted by `(minute, tenant)` with unique tenants per
/// minute — writer misuse, not data errors.
pub fn render_azure_minute(
    seed: u64,
    kinds: &[FunctionKind],
    rows: &[(u64, usize, u64)],
) -> String {
    assert!(!kinds.is_empty(), "a trace needs tenants");
    let mut out = String::new();
    render_header(&mut out, TraceFormat::AzureMinute, Some(seed), kinds);
    out.push_str("minute,tenant,count\n");
    let mut last: Option<(u64, usize)> = None;
    for &(minute, tenant, count) in rows {
        assert!(tenant < kinds.len(), "tenant {tenant} out of range");
        assert!(
            last.is_none_or(|l| l < (minute, tenant)),
            "rows must be sorted by (minute, tenant)"
        );
        last = Some((minute, tenant));
        if count > 0 {
            out.push_str(&format!("{minute},{tenant},{count}\n"));
        }
    }
    out
}

/// One OpenDC-style writer row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenDcRow {
    pub timestamp_ms: u64,
    pub tenant: usize,
    pub invocations: u64,
    pub avg_exec_ms: f64,
    pub memory_mb: u64,
}

/// Renders an opendc trace deterministically.
///
/// # Panics
///
/// Panics if `kinds` is empty, a tenant is out of range, or timestamps
/// decrease.
pub fn render_opendc(kinds: &[FunctionKind], rows: &[OpenDcRow]) -> String {
    assert!(!kinds.is_empty(), "a trace needs tenants");
    let mut out = String::new();
    render_header(&mut out, TraceFormat::OpenDc, None, kinds);
    out.push_str("timestamp_ms,tenant,invocations,avg_exec_ms,memory_mb\n");
    let mut last = 0u64;
    for row in rows {
        assert!(
            row.tenant < kinds.len(),
            "tenant {} out of range",
            row.tenant
        );
        assert!(
            row.timestamp_ms >= last,
            "timestamps must be non-decreasing"
        );
        last = row.timestamp_ms;
        if row.invocations > 0 {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                row.timestamp_ms, row.tenant, row.invocations, row.avg_exec_ms, row.memory_mb
            ));
        }
    }
    out
}

/// The deterministic per-minute count table of the committed sample
/// traces: a daily sinusoid (period 1440 minutes) scaled by a harmonic
/// per-tenant popularity share. Closed-form — no RNG — so `repro
/// gen-trace` output is byte-pinned forever.
pub fn sample_azure_rows(
    minutes: u64,
    tenants: usize,
    peak_per_minute: f64,
) -> Vec<(u64, usize, u64)> {
    assert!(tenants > 0 && peak_per_minute > 0.0);
    let share_total: f64 = (1..=tenants).map(|k| 1.0 / k as f64).sum();
    let mut rows = Vec::with_capacity((minutes as usize) * tenants);
    for minute in 0..minutes {
        let phase = 2.0 * std::f64::consts::PI * minute as f64 / 1440.0;
        let envelope = peak_per_minute * (0.55 - 0.45 * phase.cos());
        for tenant in 0..tenants {
            let share = (1.0 / (tenant + 1) as f64) / share_total;
            rows.push((minute, tenant, (envelope * share).round() as u64));
        }
    }
    rows
}

/// Renders the committed 3-day, ≥2M-invocation azure-minute sample
/// (`examples/traces/azure_3day.csv`, written by `repro gen-trace`).
pub fn sample_azure_3day() -> String {
    let kinds = [
        FunctionKind::Html,
        FunctionKind::Cnn,
        FunctionKind::Bfs,
        FunctionKind::Bert,
    ];
    render_azure_minute(
        0xA2_2026,
        &kinds,
        &sample_azure_rows(3 * 1440, kinds.len(), 900.0),
    )
}

/// Renders the committed small opendc sample
/// (`examples/traces/opendc_sample.csv`, written by `repro gen-trace`).
pub fn sample_opendc() -> String {
    let kinds = [FunctionKind::Html, FunctionKind::Cnn];
    let mut rows = Vec::new();
    for step in 0u64..120 {
        rows.push(OpenDcRow {
            timestamp_ms: step * 1000,
            tenant: (step % 2) as usize,
            invocations: 1 + step % 3,
            avg_exec_ms: 80.0 + (step % 7) as f64 * 15.0,
            memory_mb: 128 + (step % 4) * 64,
        });
    }
    render_opendc(&kinds, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_err<T>(r: Result<T, TraceError>) -> TraceError {
        match r {
            Ok(_) => panic!("unexpectedly parsed"),
            Err(e) => e,
        }
    }

    fn drain(src: &mut dyn TraceSource) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(a) = src.next_arrival().expect("valid trace") {
            out.push(a);
        }
        out
    }

    #[test]
    fn azure_round_trip_streams_the_expected_expansion() {
        let kinds = [FunctionKind::Html, FunctionKind::Cnn];
        let rows = [(0, 0, 3), (0, 1, 2), (2, 0, 1)];
        let text = render_azure_minute(7, &kinds, &rows);
        let mut src = AzureMinuteSource::new(text.as_bytes(), 0).expect("parses");
        assert_eq!(src.kinds(), &kinds);
        let got = drain(&mut src);
        assert_eq!(got.len(), 6);
        assert!(got.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "ordered");
        // Expansion matches the documented jitter chain exactly.
        let mut expect = Vec::new();
        for &(minute, tenant, count) in &rows {
            let mut rng = DetRng::new(7)
                .derive(AZURE_JITTER_STREAM)
                .derive(0)
                .derive(minute)
                .derive(tenant as u64);
            for _ in 0..count {
                let off = rng.range_f64(0.0, 60.0);
                expect.push(Arrival {
                    t_ns: minute * MINUTE_NS + SimDuration::from_secs_f64(off).as_nanos(),
                    function: kinds[tenant],
                    tenant,
                    duration_s: None,
                    memory_bytes: None,
                });
            }
        }
        expect.sort_by_key(|a| (a.t_ns, a.tenant));
        assert_eq!(got, expect);
    }

    #[test]
    fn azure_trials_draw_distinct_jitter() {
        let text = render_azure_minute(7, &[FunctionKind::Html], &[(0, 0, 8)]);
        let a = drain(&mut AzureMinuteSource::new(text.as_bytes(), 0).unwrap());
        let b = drain(&mut AzureMinuteSource::new(text.as_bytes(), 0).unwrap());
        let c = drain(&mut AzureMinuteSource::new(text.as_bytes(), 1).unwrap());
        assert_eq!(a, b, "same trial, same stream");
        assert_ne!(a, c, "trials jitter independently");
        assert_eq!(a.len(), c.len(), "counts are trial-invariant");
    }

    #[test]
    fn azure_errors_carry_line_numbers() {
        let text = render_azure_minute(1, &[FunctionKind::Html], &[(0, 0, 1), (1, 0, 2)]);
        // The rendered layout: magic, seed, tenants, header, row@5, row@6.
        let broken = text.replace("1,0,2", "1,0,two");
        let err = drain_err(&broken);
        assert_eq!(err.line, 6, "{err}");
        assert!(err.msg.contains("bad integer"), "{err}");

        let out_of_order = text.replace("1,0,2", "0,0,2");
        let err = drain_err(&out_of_order);
        assert_eq!(err.line, 6, "{err}");
        assert!(err.msg.contains("repeats or regresses"), "{err}");

        let backwards = render_azure_minute(1, &[FunctionKind::Html], &[(0, 0, 1), (5, 0, 2)])
            .replace("5,0,2", "5,0,2\n3,0,1");
        let err = drain_err(&backwards);
        assert_eq!(err.line, 7, "{err}");
        assert!(err.msg.contains("out-of-order minute 3 after 5"), "{err}");

        let bad_tenant = text.replace("1,0,2", "1,9,2");
        let err = drain_err(&bad_tenant);
        assert_eq!(err.line, 6, "{err}");
        assert!(err.msg.contains("out of range"), "{err}");

        let malformed = text.replace("1,0,2", "1,0");
        let err = drain_err(&malformed);
        assert_eq!(err.line, 6, "{err}");
        assert!(err.msg.contains("malformed row"), "{err}");
    }

    fn drain_err(text: &str) -> TraceError {
        let mut src = AzureMinuteSource::new(text.as_bytes(), 0).expect("header ok");
        loop {
            match src.next_arrival() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("trace unexpectedly valid"),
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn header_errors_are_precise() {
        let no_magic = "minute,tenant,count\n";
        let err = expect_err(AzureMinuteSource::new(no_magic.as_bytes(), 0));
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("not a trace file"), "{err}");

        let bad_format = "# squeezy-trace v1 csv\n";
        let err = expect_err(AzureMinuteSource::new(bad_format.as_bytes(), 0));
        assert!(err.msg.contains("unknown trace format"), "{err}");

        let no_seed = "# squeezy-trace v1 azure-minute\n# tenants = html\nminute,tenant,count\n";
        let err = expect_err(AzureMinuteSource::new(no_seed.as_bytes(), 0));
        assert!(err.msg.contains("missing `# seed"), "{err}");

        let bad_kind =
            "# squeezy-trace v1 azure-minute\n# seed = 1\n# tenants = html, nope\nminute,tenant,count\n";
        let err = expect_err(AzureMinuteSource::new(bad_kind.as_bytes(), 0));
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("nope"), "{err}");

        let bad_columns = "# squeezy-trace v1 azure-minute\n# seed = 1\n# tenants = html\nm,t,c\n";
        let err = expect_err(AzureMinuteSource::new(bad_columns.as_bytes(), 0));
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("bad column header"), "{err}");
    }

    #[test]
    fn opendc_round_trip_with_hints() {
        let kinds = [FunctionKind::Html, FunctionKind::Cnn];
        let rows = [
            OpenDcRow {
                timestamp_ms: 0,
                tenant: 0,
                invocations: 2,
                avg_exec_ms: 125.5,
                memory_mb: 256,
            },
            OpenDcRow {
                timestamp_ms: 1500,
                tenant: 1,
                invocations: 1,
                avg_exec_ms: 80.0,
                memory_mb: 128,
            },
        ];
        let text = render_opendc(&kinds, &rows);
        let mut src = OpenDcSource::new(text.as_bytes()).expect("parses");
        let got = drain(&mut src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].t_ns, 0);
        assert_eq!(got[1].t_ns, 0, "both invocations at the row timestamp");
        assert_eq!(got[2].t_ns, 1_500_000_000);
        assert_eq!(got[0].duration_s, Some(0.1255));
        assert_eq!(got[0].memory_bytes, Some(256 * mem_types::MIB));
        assert_eq!(got[2].function, FunctionKind::Cnn);
    }

    #[test]
    fn opendc_rejects_backwards_timestamps_with_line() {
        let text = "# squeezy-trace v1 opendc\n# tenants = html\n\
                    timestamp_ms,tenant,invocations,avg_exec_ms,memory_mb\n\
                    1000,0,1,50.0,64\n500,0,1,50.0,64\n";
        let mut src = OpenDcSource::new(text.as_bytes()).expect("header ok");
        src.next_arrival().expect("first row fine");
        let err = src.next_arrival().unwrap_err();
        assert_eq!(err.line, 5, "{err}");
        assert!(err.msg.contains("out-of-order timestamp"), "{err}");
    }

    #[test]
    fn materialized_source_merges_in_time_tenant_order() {
        let loads = vec![
            TenantLoad {
                kind: FunctionKind::Html,
                arrivals: vec![1.0, 3.0],
            },
            TenantLoad {
                kind: FunctionKind::Cnn,
                arrivals: vec![1.0, 2.0],
            },
        ];
        let mut src = MaterializedSource::new(loads);
        let got = drain(&mut src);
        let seq: Vec<(u64, usize)> = got.iter().map(|a| (a.t_ns, a.tenant)).collect();
        assert_eq!(
            seq,
            vec![
                (1_000_000_000, 0),
                (1_000_000_000, 1),
                (2_000_000_000, 1),
                (3_000_000_000, 0)
            ],
            "ties break by tenant"
        );
    }

    #[test]
    fn open_trace_dispatches_and_validates() {
        let dir = std::env::temp_dir();
        let az = dir.join("squeezy_source_test_az.csv");
        let od = dir.join("squeezy_source_test_od.csv");
        std::fs::write(
            &az,
            render_azure_minute(3, &[FunctionKind::Html], &[(0, 0, 4)]),
        )
        .expect("write");
        std::fs::write(&od, sample_opendc()).expect("write");
        let az = az.to_str().unwrap();
        let od = od.to_str().unwrap();
        assert_eq!(
            read_trace_header(az).unwrap().format,
            TraceFormat::AzureMinute
        );
        assert_eq!(read_trace_header(od).unwrap().format, TraceFormat::OpenDc);
        assert_eq!(validate_trace(az).unwrap().arrivals, 4);
        let od_stats = validate_trace(od).unwrap();
        assert!(od_stats.arrivals > 120, "rows expand");
        assert_eq!(od_stats.end_ns, 119 * 1_000_000_000);
        let mut src = open_trace(az, 0).expect("opens");
        assert_eq!(drain(src.as_mut()).len(), 4);
        let err = expect_err(open_trace(
            dir.join("squeezy_source_missing.csv").to_str().unwrap(),
            0,
        ));
        assert_eq!(err.line, 0);

        let _ = std::fs::remove_file(az);
        let _ = std::fs::remove_file(od);
    }

    #[test]
    fn sample_traces_are_pinned_scale() {
        let rows = sample_azure_rows(3 * 1440, 4, 900.0);
        let total: u64 = rows.iter().map(|&(_, _, c)| c).sum();
        assert!(total >= 2_000_000, "3-day sample offers {total} arrivals");
        // The rendered sample parses back to exactly that many arrivals.
        let text = sample_azure_3day();
        let mut src = AzureMinuteSource::new(text.as_bytes(), 0).expect("parses");
        let mut n = 0u64;
        let mut last = 0;
        while let Some(a) = src.next_arrival().expect("valid") {
            assert!(a.t_ns >= last);
            last = a.t_ns;
            n += 1;
        }
        assert_eq!(n, total);
        assert!(last < 3 * 1440 * MINUTE_NS + MINUTE_NS);
    }
}
