//! Instance churn analysis (Figure 2).
//!
//! Replays invocation traces against a keep-alive instance pool and
//! counts instance creations and evictions per minute — the analysis the
//! paper runs over the 10 most popular Azure functions to motivate agile
//! N:1 resizing ("thousands of instances can be scaled up and down per
//! minute").

/// A creation/eviction count for one minute of the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinuteChurn {
    /// Instances created in this minute.
    pub creations: u32,
    /// Instances evicted in this minute.
    pub evictions: u32,
}

/// Result of a churn analysis.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Per-minute creation/eviction counts over the analysis window.
    pub per_minute: Vec<MinuteChurn>,
}

impl ChurnResult {
    /// Total creations over the window.
    pub fn total_creations(&self) -> u64 {
        self.per_minute.iter().map(|m| m.creations as u64).sum()
    }

    /// Total evictions over the window.
    pub fn total_evictions(&self) -> u64 {
        self.per_minute.iter().map(|m| m.evictions as u64).sum()
    }

    /// Peak creations in any single minute.
    pub fn peak_creations(&self) -> u32 {
        self.per_minute
            .iter()
            .map(|m| m.creations)
            .max()
            .unwrap_or(0)
    }
}

/// One live instance in the keep-alive pool.
#[derive(Clone, Copy, Debug)]
struct Instance {
    busy_until: f64,
}

/// Replays `traces` (per-function sorted arrival times, seconds) with
/// per-function execution times `exec_s` and a keep-alive window,
/// counting creations and evictions per minute over `duration_s`.
///
/// Instances are reused when idle, created when none is available, and
/// evicted `keepalive_s` after their last use (the paper's Figure 2 uses
/// a 5-minute idle eviction window).
///
/// # Panics
///
/// Panics if `traces` and `exec_s` lengths differ.
pub fn analyze_churn(
    traces: &[Vec<f64>],
    exec_s: &[f64],
    keepalive_s: f64,
    duration_s: f64,
) -> ChurnResult {
    assert_eq!(traces.len(), exec_s.len(), "one exec time per function");
    let minutes = (duration_s / 60.0).ceil() as usize;
    let mut per_minute = vec![MinuteChurn::default(); minutes];
    let mut record = |t: f64, creation: bool| {
        let m = ((t / 60.0) as usize).min(minutes.saturating_sub(1));
        if creation {
            per_minute[m].creations += 1;
        } else {
            per_minute[m].evictions += 1;
        }
    };

    for (arrivals, &exec) in traces.iter().zip(exec_s) {
        let mut pool: Vec<Instance> = Vec::new();
        for &t in arrivals {
            // Evict instances whose keep-alive expired before `t`.
            pool.retain(|inst| {
                let expiry = inst.busy_until + keepalive_s;
                if expiry <= t {
                    record(expiry, false);
                    false
                } else {
                    true
                }
            });
            // Reuse the warmest idle instance (MRU, like OpenWhisk's
            // container pools) or create a new one. MRU reuse lets the
            // cold end of the pool idle out — the eviction churn the
            // figure measures.
            if let Some(inst) = pool
                .iter_mut()
                .filter(|i| i.busy_until <= t)
                .max_by(|a, b| a.busy_until.partial_cmp(&b.busy_until).expect("finite"))
            {
                inst.busy_until = t + exec;
            } else {
                record(t, true);
                pool.push(Instance {
                    busy_until: t + exec,
                });
            }
        }
        // Drain remaining instances at their keep-alive expiry.
        for inst in pool {
            let expiry = inst.busy_until + keepalive_s;
            if expiry < duration_s {
                record(expiry, false);
            }
        }
    }
    ChurnResult { per_minute }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arrival_creates_once_evicts_once() {
        let traces = vec![vec![10.0]];
        let r = analyze_churn(&traces, &[1.0], 60.0, 300.0);
        assert_eq!(r.total_creations(), 1);
        assert_eq!(r.total_evictions(), 1);
        // Creation in minute 0, eviction at 10 + 1 + 60 = 71 s → minute 1.
        assert_eq!(r.per_minute[0].creations, 1);
        assert_eq!(r.per_minute[1].evictions, 1);
    }

    #[test]
    fn back_to_back_requests_reuse_instance() {
        // Second arrival lands after the first finishes: reuse.
        let traces = vec![vec![0.0, 5.0, 10.0]];
        let r = analyze_churn(&traces, &[1.0], 120.0, 300.0);
        assert_eq!(r.total_creations(), 1);
    }

    #[test]
    fn concurrent_requests_create_multiple_instances() {
        // Three arrivals while each execution takes 10 s: 3 instances.
        let traces = vec![vec![0.0, 1.0, 2.0]];
        let r = analyze_churn(&traces, &[10.0], 60.0, 300.0);
        assert_eq!(r.total_creations(), 3);
        assert_eq!(r.total_evictions(), 3);
    }

    #[test]
    fn keepalive_prevents_eviction_between_bursts() {
        // Two bursts 100 s apart; keep-alive 300 s: no eviction between.
        let traces = vec![vec![0.0, 100.0]];
        let r = analyze_churn(&traces, &[1.0], 300.0, 600.0);
        assert_eq!(r.total_creations(), 1);
        // Eviction at 101 + 300 = 401 s.
        assert_eq!(r.total_evictions(), 1);
        assert_eq!(r.per_minute[6].evictions, 1);
    }

    #[test]
    fn short_keepalive_churns() {
        // Same two bursts with 30 s keep-alive: re-create.
        let traces = vec![vec![0.0, 100.0]];
        let r = analyze_churn(&traces, &[1.0], 30.0, 600.0);
        assert_eq!(r.total_creations(), 2);
        assert_eq!(r.total_evictions(), 2);
    }

    #[test]
    fn evictions_past_duration_are_dropped() {
        let traces = vec![vec![290.0]];
        let r = analyze_churn(&traces, &[1.0], 60.0, 300.0);
        assert_eq!(r.total_creations(), 1);
        assert_eq!(r.total_evictions(), 0, "expiry lands past the window");
    }

    #[test]
    fn multiple_functions_accumulate() {
        let traces = vec![vec![0.0], vec![0.0], vec![0.0]];
        let r = analyze_churn(&traces, &[1.0, 1.0, 1.0], 10.0, 120.0);
        assert_eq!(r.total_creations(), 3);
        assert_eq!(r.peak_creations(), 3);
    }
}
