//! The named workload registry: one string key per generator, one
//! parameter block shared by all of them.
//!
//! The scenario layer (`faas::scenario`) names workloads in spec files
//! (`workload = diurnal`); this registry is the single place those
//! names resolve, so adding a generator here makes it reachable from
//! every simulator topology without touching the scenario code.

use sim_core::{poisson_arrivals_into, DetRng};

use crate::cluster::{diurnal_workload, multi_tenant_workload, DiurnalConfig, MultiTenantConfig};
use crate::functions::FunctionKind;
use crate::trace::{bursty_arrivals, BurstyTraceConfig};
use crate::TenantLoad;

/// The unified parameter block every registered workload draws from.
///
/// Generators read the fields they understand and ignore the rest
/// (`trough_rps`/`period_s`/`burst_*` only shape the diurnal tide);
/// the scenario spec format renders all of them so a spec file is
/// self-contained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Number of tenant functions (rank 0 is the hottest where the
    /// generator is popularity-ranked).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total request rate across tenants — the average rate for flat
    /// generators, the *peak* rate for `diurnal`.
    pub rps: f64,
    /// Total request rate at the trough of the diurnal cycle.
    pub trough_rps: f64,
    /// Length of one diurnal cycle in seconds.
    pub period_s: f64,
    /// Zipf popularity exponent for the skewed generators.
    pub zipf_exponent: f64,
    /// Burst multiplier of the diurnal generator (1.0 disables).
    pub burst_factor: f64,
    /// Fraction of time the diurnal generator spends bursting.
    pub burst_duty: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            tenants: 4,
            duration_s: 120.0,
            rps: 4.0,
            trough_rps: 1.0,
            period_s: 300.0,
            zipf_exponent: 1.0,
            burst_factor: 2.0,
            burst_duty: 0.15,
        }
    }
}

/// A named workload generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// Azure-like bursty traces, one per tenant, equal average rates:
    /// the single-host workload of the paper's §6.2 experiments.
    AzureTrace,
    /// Zipf-skewed bursty multi-tenant mix (the cluster workload):
    /// rank-`r` tenant carries a Zipf share of the total rate.
    ZipfCluster,
    /// Sinusoidal day/night tide × Zipf shares × on/off bursts (the
    /// fleet autoscaling workload).
    Diurnal,
    /// Memory-stress drumbeat: every tenant is the anonymous-heavy BFS
    /// function invoked on a fixed deterministic cadence, keeping
    /// footprints resident and the host's reclaim path busy.
    Memhog,
    /// Instance-churn stress: sparse independent Poisson arrivals so
    /// warm instances keep expiring between requests (Figure-2-style
    /// create/evict churn).
    Churn,
}

impl WorkloadKind {
    /// All registered workloads, in listing order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::AzureTrace,
        WorkloadKind::ZipfCluster,
        WorkloadKind::Diurnal,
        WorkloadKind::Memhog,
        WorkloadKind::Churn,
    ];

    /// Registry key used by scenario spec files.
    pub fn key(self) -> &'static str {
        match self {
            WorkloadKind::AzureTrace => "azure-trace",
            WorkloadKind::ZipfCluster => "zipf-cluster",
            WorkloadKind::Diurnal => "diurnal",
            WorkloadKind::Memhog => "memhog",
            WorkloadKind::Churn => "churn",
        }
    }

    /// One-line description for `repro scenarios`.
    pub fn describe(self) -> &'static str {
        match self {
            WorkloadKind::AzureTrace => "Azure-like bursty traces, equal per-tenant rates",
            WorkloadKind::ZipfCluster => "Zipf-skewed bursty multi-tenant mix",
            WorkloadKind::Diurnal => "day/night tide x Zipf x bursts (NHPP thinning)",
            WorkloadKind::Memhog => "deterministic memory-stress drumbeat (all-BFS)",
            WorkloadKind::Churn => "sparse Poisson arrivals, cold-start/eviction churn",
        }
    }

    /// Looks a workload up by key; `Err` carries the full list of
    /// valid keys.
    pub fn from_key(key: &str) -> Result<WorkloadKind, String> {
        sim_core::registry::lookup("workload", &WorkloadKind::ALL, WorkloadKind::key, key)
    }

    /// Synthesizes the tenant mix, deterministic in `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are out of range for the generator
    /// (`tenants == 0`, non-positive rates, a diurnal trough above the
    /// peak) — the scenario layer validates specs before reaching this.
    pub fn generate(self, params: &WorkloadParams, rng: &mut DetRng) -> Vec<TenantLoad> {
        assert!(params.tenants > 0, "a workload needs tenants");
        assert!(params.rps > 0.0, "a workload needs a positive rate");
        let n = params.tenants;
        let per_tenant = params.rps / n as f64;
        match self {
            WorkloadKind::AzureTrace => (0..n)
                .map(|rank| {
                    let mut trng = rng.derive(rank as u64 + 1);
                    let cfg = BurstyTraceConfig {
                        duration_s: params.duration_s,
                        base_rps: per_tenant * 0.4,
                        burst_rps: per_tenant * 4.0,
                        mean_burst_s: 20.0,
                        mean_idle_s: 40.0,
                    };
                    TenantLoad {
                        kind: FunctionKind::ALL[rank % FunctionKind::ALL.len()],
                        arrivals: bursty_arrivals(&cfg, &mut trng),
                    }
                })
                .collect(),
            WorkloadKind::ZipfCluster => multi_tenant_workload(
                &MultiTenantConfig {
                    tenants: n,
                    duration_s: params.duration_s,
                    total_rps: params.rps,
                    zipf_exponent: params.zipf_exponent,
                },
                rng,
            ),
            WorkloadKind::Diurnal => diurnal_workload(
                &DiurnalConfig {
                    tenants: n,
                    duration_s: params.duration_s,
                    trough_rps: params.trough_rps,
                    peak_rps: params.rps,
                    period_s: params.period_s,
                    zipf_exponent: params.zipf_exponent,
                    burst_factor: params.burst_factor,
                    burst_duty: params.burst_duty,
                },
                rng,
            ),
            WorkloadKind::Memhog => (0..n)
                .map(|rank| {
                    // Fixed cadence with a per-tenant phase offset so
                    // tenants never fire simultaneously: a deterministic
                    // drumbeat of the anonymous-heavy function.
                    let gap = 1.0 / per_tenant;
                    let phase = gap * (rank as f64 + 0.5) / n as f64;
                    let mut arrivals = Vec::new();
                    let mut t = phase;
                    while t < params.duration_s {
                        arrivals.push(t);
                        t += gap;
                    }
                    TenantLoad {
                        kind: FunctionKind::Bfs,
                        arrivals,
                    }
                })
                .collect(),
            WorkloadKind::Churn => (0..n)
                .map(|rank| {
                    let mut trng = rng.derive(rank as u64 + 1);
                    let mut arrivals = Vec::new();
                    poisson_arrivals_into(
                        &mut trng,
                        0.0,
                        params.duration_s,
                        per_tenant,
                        &mut arrivals,
                    );
                    TenantLoad {
                        kind: FunctionKind::ALL[rank % FunctionKind::ALL.len()],
                        arrivals,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            tenants: 4,
            duration_s: 200.0,
            rps: 6.0,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn registry_keys_round_trip() {
        for w in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_key(w.key()), Ok(w));
        }
        let err = WorkloadKind::from_key("azure").unwrap_err();
        assert!(err.contains("azure-trace"), "error lists valid keys: {err}");
        assert!(err.contains("diurnal"));
    }

    #[test]
    fn every_workload_generates_sorted_in_range_traces() {
        for w in WorkloadKind::ALL {
            let p = params();
            let tenants = w.generate(&p, &mut DetRng::new(3));
            assert_eq!(tenants.len(), p.tenants, "{}", w.key());
            let total: usize = tenants.iter().map(|t| t.arrivals.len()).sum();
            assert!(total > 0, "{} produced no arrivals", w.key());
            for t in &tenants {
                assert!(t.arrivals.windows(2).all(|a| a[0] <= a[1]), "{}", w.key());
                assert!(
                    t.arrivals.iter().all(|&a| (0.0..p.duration_s).contains(&a)),
                    "{}",
                    w.key()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_stream() {
        for w in WorkloadKind::ALL {
            let a = w.generate(&params(), &mut DetRng::new(7));
            let b = w.generate(&params(), &mut DetRng::new(7));
            for (ta, tb) in a.iter().zip(&b) {
                assert_eq!(ta.kind, tb.kind);
                assert_eq!(ta.arrivals, tb.arrivals, "{}", w.key());
            }
        }
    }

    #[test]
    fn zipf_cluster_matches_the_underlying_generator() {
        // The registry must be a pure renaming of the existing
        // generators: the bench byte-identity across the scenario
        // rebase depends on it.
        let p = params();
        let via_registry = WorkloadKind::ZipfCluster.generate(&p, &mut DetRng::new(9));
        let direct = multi_tenant_workload(
            &MultiTenantConfig {
                tenants: p.tenants,
                duration_s: p.duration_s,
                total_rps: p.rps,
                zipf_exponent: p.zipf_exponent,
            },
            &mut DetRng::new(9),
        );
        for (a, b) in via_registry.iter().zip(&direct) {
            assert_eq!(a.arrivals, b.arrivals);
        }
    }

    #[test]
    fn memhog_is_a_deterministic_all_bfs_drumbeat() {
        let tenants = WorkloadKind::Memhog.generate(&params(), &mut DetRng::new(1));
        assert!(tenants.iter().all(|t| t.kind == FunctionKind::Bfs));
        // Fixed cadence: constant inter-arrival gap per tenant.
        let gaps: Vec<f64> = tenants[0]
            .arrivals
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        assert!(gaps.windows(2).all(|g| (g[0] - g[1]).abs() < 1e-9));
    }
}
