//! The serverless functions of Table 1 and their resource profiles.
//!
//! The paper evaluates four functions — CNN (FunctionBench JPEG
//! classification), Bert (ML inference), BFS (graph traversal) and HTML
//! (web serving) — with the vCPU shares and memory limits of Table 1.
//! The footprint split between anonymous memory and file-backed
//! dependencies follows §5.1: BFS is anonymous-heavy, while HTML, Bert
//! and CNN lean on file-backed page cache; Bert has the largest runtime
//! dependencies (§6.3 "Workloads with larger dependencies (e.g., Bert)
//! suffer the most").

use guest_mm::FileId;
use mem_types::{ByteSize, MIB};

/// Identifier of a function type in the evaluation set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FunctionKind {
    /// Web service endpoint (low CPU share).
    Html,
    /// JPEG classification CNN.
    Cnn,
    /// Breadth-first search over a generated graph.
    Bfs,
    /// BERT ML inference.
    Bert,
}

impl FunctionKind {
    /// All Table-1 functions, in the paper's column order.
    pub const ALL: [FunctionKind; 4] = [
        FunctionKind::Html,
        FunctionKind::Cnn,
        FunctionKind::Bfs,
        FunctionKind::Bert,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FunctionKind::Html => "HTML",
            FunctionKind::Cnn => "Cnn",
            FunctionKind::Bfs => "BFS",
            FunctionKind::Bert => "Bert",
        }
    }

    /// Lowercase registry key used by scenario spec files
    /// (`slo.html = 500`).
    pub fn key(self) -> &'static str {
        match self {
            FunctionKind::Html => "html",
            FunctionKind::Cnn => "cnn",
            FunctionKind::Bfs => "bfs",
            FunctionKind::Bert => "bert",
        }
    }

    /// Looks a function up by its registry key; `Err` carries the full
    /// list of valid keys.
    pub fn from_key(key: &str) -> Result<FunctionKind, String> {
        sim_core::registry::lookup("function", &FunctionKind::ALL, FunctionKind::key, key)
    }

    /// Returns the full resource/behaviour profile.
    pub fn profile(self) -> FunctionProfile {
        match self {
            FunctionKind::Html => FunctionProfile {
                kind: self,
                vcpu_shares: 0.25,
                memory_limit: ByteSize::mib(768),
                anon_bytes: 200 * MIB,
                deps_bytes: 160 * MIB,
                rootfs_bytes: 48 * MIB,
                container_init_cpu_s: 0.55,
                function_init_cpu_s: 0.35,
                exec_cpu_s: 0.055,
            },
            FunctionKind::Cnn => FunctionProfile {
                kind: self,
                vcpu_shares: 1.0,
                memory_limit: ByteSize::mib(768),
                anon_bytes: 280 * MIB,
                deps_bytes: 280 * MIB,
                rootfs_bytes: 64 * MIB,
                container_init_cpu_s: 0.6,
                function_init_cpu_s: 0.9,
                exec_cpu_s: 0.35,
            },
            FunctionKind::Bfs => FunctionProfile {
                kind: self,
                vcpu_shares: 1.0,
                memory_limit: ByteSize::mib(768),
                anon_bytes: 420 * MIB,
                deps_bytes: 90 * MIB,
                rootfs_bytes: 40 * MIB,
                container_init_cpu_s: 0.5,
                function_init_cpu_s: 0.45,
                exec_cpu_s: 0.5,
            },
            FunctionKind::Bert => FunctionProfile {
                kind: self,
                vcpu_shares: 1.0,
                memory_limit: ByteSize::mib(1536),
                anon_bytes: 420 * MIB,
                deps_bytes: 720 * MIB,
                rootfs_bytes: 72 * MIB,
                container_init_cpu_s: 0.7,
                function_init_cpu_s: 1.6,
                exec_cpu_s: 0.8,
            },
        }
    }

    /// File id of the function's runtime/language dependencies.
    pub fn deps_file(self) -> FileId {
        FileId(100 + self as u32 * 2)
    }

    /// File id of the function's container root filesystem.
    pub fn rootfs_file(self) -> FileId {
        FileId(101 + self as u32 * 2)
    }
}

/// Resource limits and behaviour of one function (Table 1 + §5.1).
#[derive(Clone, Copy, Debug)]
pub struct FunctionProfile {
    /// Which function this is.
    pub kind: FunctionKind,
    /// vCPU shares per instance (Table 1).
    pub vcpu_shares: f64,
    /// User-defined memory limit per instance (Table 1) — this becomes
    /// the Squeezy partition size.
    pub memory_limit: ByteSize,
    /// Private anonymous working set per instance.
    pub anon_bytes: u64,
    /// File-backed runtime/language dependencies (shared across
    /// instances in the N:1 model).
    pub deps_bytes: u64,
    /// Container root filesystem read during sandbox creation.
    pub rootfs_bytes: u64,
    /// CPU work of container (sandbox) initialization, in cpu-seconds.
    pub container_init_cpu_s: f64,
    /// CPU work of runtime + function initialization, in cpu-seconds.
    pub function_init_cpu_s: f64,
    /// CPU work per request execution, in cpu-seconds.
    pub exec_cpu_s: f64,
}

impl FunctionProfile {
    /// Anonymous working set in pages.
    pub fn anon_pages(&self) -> u64 {
        self.anon_bytes / mem_types::PAGE_SIZE
    }

    /// Dependency footprint in pages.
    pub fn deps_pages(&self) -> u64 {
        self.deps_bytes / mem_types::PAGE_SIZE
    }

    /// Rootfs footprint in pages.
    pub fn rootfs_pages(&self) -> u64 {
        self.rootfs_bytes / mem_types::PAGE_SIZE
    }

    /// The instance's total private footprint must fit its limit.
    pub fn validate(&self) {
        assert!(
            self.anon_bytes <= self.memory_limit.bytes(),
            "{}: anon footprint exceeds memory limit",
            self.kind.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_limits_match_paper() {
        assert_eq!(
            FunctionKind::Html.profile().memory_limit,
            ByteSize::mib(768)
        );
        assert_eq!(FunctionKind::Cnn.profile().memory_limit, ByteSize::mib(768));
        assert_eq!(FunctionKind::Bfs.profile().memory_limit, ByteSize::mib(768));
        assert_eq!(
            FunctionKind::Bert.profile().memory_limit,
            ByteSize::mib(1536)
        );
        assert_eq!(FunctionKind::Html.profile().vcpu_shares, 0.25);
        assert_eq!(FunctionKind::Bert.profile().vcpu_shares, 1.0);
    }

    #[test]
    fn profiles_fit_their_limits() {
        for k in FunctionKind::ALL {
            k.profile().validate();
        }
    }

    #[test]
    fn bfs_is_anon_heavy_others_file_heavy() {
        let bfs = FunctionKind::Bfs.profile();
        assert!(bfs.anon_bytes > bfs.deps_bytes);
        for k in [FunctionKind::Html, FunctionKind::Cnn, FunctionKind::Bert] {
            let p = k.profile();
            assert!(
                p.deps_bytes * 2 > p.anon_bytes,
                "{} should lean on the page cache",
                k.name()
            );
        }
    }

    #[test]
    fn bert_has_largest_dependencies() {
        let bert = FunctionKind::Bert.profile().deps_bytes;
        for k in [FunctionKind::Html, FunctionKind::Cnn, FunctionKind::Bfs] {
            assert!(bert > k.profile().deps_bytes);
        }
    }

    #[test]
    fn file_ids_are_distinct() {
        let mut ids: Vec<u32> = FunctionKind::ALL
            .iter()
            .flat_map(|k| [k.deps_file().0, k.rootfs_file().0])
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
