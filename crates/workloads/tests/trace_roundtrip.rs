//! Property: the trace writers and parsers are exact inverses — a
//! rendered trace streams back precisely the arrival sequence its rows
//! define, for arbitrary row tables, seeds and trials.

use proptest::prelude::*;
use sim_core::{DetRng, SimDuration};
use workloads::source::{render_azure_minute, render_opendc, OpenDcRow};
use workloads::{Arrival, AzureMinuteSource, FunctionKind, OpenDcSource, TraceSource};

/// Drains a source to completion, asserting the time-order contract.
fn drain(src: &mut dyn TraceSource) -> Vec<Arrival> {
    let mut out: Vec<Arrival> = Vec::new();
    while let Some(a) = src.next_arrival().expect("round-tripped traces parse") {
        if let Some(last) = out.last() {
            assert!(a.t_ns >= last.t_ns, "non-decreasing times");
        }
        out.push(a);
    }
    out
}

/// The documented azure-minute expansion, computed independently of the
/// parser: jitter from `seed → 0xA21 → trial → minute → tenant`, sorted
/// by `(t_ns, tenant)` within each minute.
fn expand_azure(
    seed: u64,
    kinds: &[FunctionKind],
    rows: &[(u64, usize, u64)],
    trial: u64,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    let mut minute_buf: Vec<Arrival> = Vec::new();
    let mut cur = None;
    for &(minute, tenant, count) in rows {
        if cur != Some(minute) {
            minute_buf.sort_by_key(|a: &Arrival| (a.t_ns, a.tenant));
            out.append(&mut minute_buf);
            cur = Some(minute);
        }
        let mut rng = DetRng::new(seed)
            .derive(0xA21)
            .derive(trial)
            .derive(minute)
            .derive(tenant as u64);
        for _ in 0..count {
            let off = rng.range_f64(0.0, 60.0);
            minute_buf.push(Arrival {
                t_ns: minute * 60_000_000_000 + SimDuration::from_secs_f64(off).as_nanos(),
                function: kinds[tenant],
                tenant,
                duration_s: None,
                memory_bytes: None,
            });
        }
    }
    minute_buf.sort_by_key(|a: &Arrival| (a.t_ns, a.tenant));
    out.append(&mut minute_buf);
    out
}

/// A sorted-by-`(minute, tenant)` count table over `tenants` slots.
fn azure_rows_strategy() -> impl Strategy<Value = (usize, Vec<(u64, usize, u64)>)> {
    (
        1usize..=4,
        prop::collection::vec((0u64..12, 0u64..8), 0..40),
    )
        .prop_map(|(tenants, cells)| {
            let mut rows: Vec<(u64, usize, u64)> = cells
                .into_iter()
                .enumerate()
                .map(|(i, (minute, count))| (minute, i % tenants, count))
                .collect();
            rows.sort_by_key(|&(m, t, _)| (m, t));
            rows.dedup_by_key(|&mut (m, t, _)| (m, t));
            (tenants, rows)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn azure_writer_parser_round_trip(
        table in azure_rows_strategy(),
        seed in 0u64..1 << 48,
        trial in 0u64..4,
    ) {
        let (tenants, rows) = table;
        let kinds: Vec<FunctionKind> = (0..tenants)
            .map(|i| FunctionKind::ALL[i % FunctionKind::ALL.len()])
            .collect();
        let text = render_azure_minute(seed, &kinds, &rows);
        let mut src = AzureMinuteSource::new(text.as_bytes(), trial).expect("parses");
        prop_assert_eq!(src.kinds(), kinds.as_slice());
        let got = drain(&mut src);
        let want = expand_azure(seed, &kinds, &rows, trial);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn opendc_writer_parser_round_trip(
        cells in prop::collection::vec((0u64..5000, 0u64..5, (10u64..900, 1u64..9)), 0..40),
        tenants in 1usize..=3,
    ) {
        let kinds: Vec<FunctionKind> = (0..tenants)
            .map(|i| FunctionKind::ALL[i % FunctionKind::ALL.len()])
            .collect();
        let mut rows: Vec<OpenDcRow> = cells
            .into_iter()
            .map(|(ts, tenant, (exec_tenths, inv))| OpenDcRow {
                timestamp_ms: ts,
                tenant: tenant as usize % tenants,
                invocations: inv,
                avg_exec_ms: exec_tenths as f64 / 10.0,
                memory_mb: 64 + (ts % 512),
            })
            .collect();
        rows.sort_by_key(|r| r.timestamp_ms);
        let text = render_opendc(&kinds, &rows);
        let mut src = OpenDcSource::new(text.as_bytes()).expect("parses");
        let got = drain(&mut src);
        let want: Vec<Arrival> = rows
            .iter()
            .flat_map(|r| {
                std::iter::repeat_n(
                    Arrival {
                        t_ns: r.timestamp_ms * 1_000_000,
                        function: kinds[r.tenant],
                        tenant: r.tenant,
                        duration_s: Some(r.avg_exec_ms / 1e3),
                        memory_bytes: Some(r.memory_mb * mem_types::MIB),
                    },
                    r.invocations as usize,
                )
            })
            .collect();
        prop_assert_eq!(got, want);
    }
}
