//! Property: a fleet with a fixed host count, autoscaling off and no
//! failure injection is *byte-identical* to the cluster simulator —
//! for every router, over randomized multi-host configs, tenant
//! traces, seeds and trials.
//!
//! This mirrors the PR 3 `cluster ≡ faas` property one layer up: the
//! fleet's control plane (lifecycle states, eligibility filtering,
//! control ticks, crash plans, latency taps) must add *zero*
//! behavioral drift when it has nothing to do. Any stray event, extra
//! RNG draw or reordered push would shift the shared queue's FIFO
//! tie-breaks and change a digest.

use faas::{
    BackendKind, ClusterConfig, ClusterSim, Deployment, FixedFleet, FleetConfig, FleetSim,
    HarvestConfig, LeastLoaded, PowerOfTwoChoices, RoundRobin, Router, SimConfig, TenantTrace,
    VmSpec, WarmAffinity,
};
use mem_types::GIB;
use sim_core::DetRng;
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

fn random_host(rng: &mut DetRng, tenants: usize, duration_s: f64) -> SimConfig {
    let backends = BackendKind::ALL;
    let kinds = [FunctionKind::Html, FunctionKind::Cnn, FunctionKind::Bfs];
    SimConfig {
        backend: backends[rng.range(0, backends.len() as u64) as usize],
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: (0..tenants)
                .map(|d| Deployment {
                    kind: kinds[d % kinds.len()],
                    concurrency: 2 + rng.range(0, 3) as u32,
                    arrivals: Vec::new(),
                })
                .collect(),
            vcpus: Some(2.0),
        }],
        host_capacity: if rng.chance(0.5) {
            4 * GIB
        } else {
            u64::MAX / 2
        },
        keepalive_s: rng.range_f64(10.0, 40.0),
        duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: rng.chance(0.5),
        seed: rng.range(0, 1 << 32),
        trial: rng.range(0, 8),
    }
}

fn random_cluster(rng: &mut DetRng) -> ClusterConfig {
    let duration_s = 100.0;
    let nhosts = 1 + rng.range(0, 3) as usize;
    let ntenants = 1 + rng.range(0, 3) as usize;
    let hosts = (0..nhosts)
        .map(|_| random_host(rng, ntenants, duration_s))
        .collect();
    let tenants = (0..ntenants)
        .map(|d| {
            let trace = BurstyTraceConfig {
                duration_s,
                base_rps: rng.range_f64(0.05, 0.3),
                burst_rps: rng.range_f64(1.0, 4.0),
                mean_burst_s: 10.0,
                mean_idle_s: 30.0,
            };
            let mut trng = rng.derive(d as u64 + 1);
            TenantTrace {
                vm: 0,
                dep: d,
                arrivals: bursty_arrivals(&trace, &mut trng),
            }
        })
        .collect();
    ClusterConfig { hosts, tenants }
}

/// Builds the same router twice (routers are stateful, so each side
/// needs a fresh instance on an identical stream).
fn router_pair(rng: &mut DetRng) -> (Box<dyn Router>, Box<dyn Router>, &'static str) {
    match rng.range(0, 4) {
        0 => (
            Box::new(RoundRobin::default()),
            Box::new(RoundRobin::default()),
            "round-robin",
        ),
        1 => (Box::new(LeastLoaded), Box::new(LeastLoaded), "least-loaded"),
        2 => (
            Box::new(WarmAffinity),
            Box::new(WarmAffinity),
            "warm-affinity",
        ),
        _ => {
            let seed = rng.range(0, 1 << 32);
            (
                Box::new(PowerOfTwoChoices::from_seed(seed)),
                Box::new(PowerOfTwoChoices::from_seed(seed)),
                "power-of-two",
            )
        }
    }
}

#[test]
fn fixed_fleet_is_byte_identical_to_cluster_sim() {
    let mut rng = DetRng::new(0xF1EE7E57);
    for case in 0..10 {
        let cluster_cfg = random_cluster(&mut rng);
        let (router_a, router_b, router_name) = router_pair(&mut rng);
        let fleet_seed = rng.range(0, 1 << 32);

        let cluster = ClusterSim::new(cluster_cfg.clone(), router_a)
            .expect("cluster boots")
            .run();
        let fleet = FleetSim::new(
            FleetConfig::fixed(cluster_cfg, fleet_seed),
            router_b,
            Box::new(FixedFleet),
        )
        .expect("fleet boots")
        .run();

        assert_eq!(
            fleet.hosts.len(),
            cluster.hosts.len(),
            "case {case} ({router_name}): host count"
        );
        for (h, (fh, ch)) in fleet.hosts.iter().zip(&cluster.hosts).enumerate() {
            assert_eq!(
                fh.result.digest(),
                ch.digest(),
                "case {case} ({router_name}): host {h} diverged from ClusterSim"
            );
        }
        assert_eq!(fleet.completed, cluster.completed, "case {case}");
        assert_eq!(fleet.routed, cluster.routed, "case {case}: routing drifted");
        assert_eq!(
            fleet.scale_ups + fleet.scale_downs + fleet.crashes + fleet.lost + fleet.deferred,
            0,
            "case {case}: a fixed fleet takes no control action"
        );
    }
}
