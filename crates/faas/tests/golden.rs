//! Golden-digest regression tests: pin the exact `SimResult` every
//! backend produces on fixed workloads.
//!
//! The digests cover every field of the result (latency samples, time
//! series, reclaim totals) at full f64 bit precision, so any behavioral
//! drift in the runtime — however small — fails these tests. The
//! original capture ran against the pre-refactor monolith and held
//! unchanged across the backend-trait extraction, proving the
//! refactored event loop byte-identical; the pinned values were then
//! re-derived once when `SimResult::digest` switched to hashing
//! histogram samples in sorted (query-order-independent) order.

use faas::{BackendKind, Deployment, FaasSim, HarvestConfig, SimConfig, VmSpec};
use mem_types::{GIB, MIB};
use workloads::FunctionKind;

/// An unconstrained host: cold/warm starts, keep-alive evictions and
/// backend reclaims, no memory pressure.
fn ample(backend: BackendKind) -> SimConfig {
    SimConfig {
        backend,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: vec![Deployment {
                kind: FunctionKind::Html,
                concurrency: 4,
                arrivals: vec![1.0, 1.05, 1.1, 6.0, 30.0, 30.05],
            }],
            vcpus: Some(2.0),
        }],
        host_capacity: u64::MAX / 2,
        keepalive_s: 20.0,
        duration_s: 120.0,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: true,
        seed: 1,
        trial: 0,
    }
}

/// A tight host (1.5 GiB): admission pressure, evict-to-scale cycles
/// and — for SqueezySoft — soft revocation plus hollow-instance
/// rebuilds. All five backends produce distinct digests here.
fn tight(backend: BackendKind) -> SimConfig {
    SimConfig {
        backend,
        harvest: HarvestConfig {
            buffer_bytes: GIB,
            proactive_evictions: 1,
        },
        vms: vec![VmSpec {
            deployments: vec![
                Deployment {
                    kind: FunctionKind::Html,
                    concurrency: 2,
                    arrivals: vec![1.0, 1.05, 80.0, 80.05],
                },
                Deployment {
                    kind: FunctionKind::Html,
                    concurrency: 2,
                    arrivals: vec![40.0, 40.05],
                },
            ],
            vcpus: Some(2.0),
        }],
        host_capacity: 1536 * MIB,
        keepalive_s: 300.0,
        duration_s: 120.0,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: true,
        seed: 7,
        trial: 2,
    }
}

fn digest_table(make: fn(BackendKind) -> SimConfig) -> String {
    BackendKind::ALL
        .iter()
        .map(|&b| {
            let result = FaasSim::new(make(b)).expect("boot").run();
            format!("{b:?}:{:016x}", result.digest())
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn ample_host_digests_are_pinned() {
    // Squeezy and SqueezySoft coincide here by design: without host
    // pressure, soft memory never revokes and the paths are identical
    // (the unit test `soft_backend_without_pressure_behaves_like_squeezy`
    // asserts the same). The tight fixture below separates them.
    let expected = "\
Static:00399fd2bd591bfd
VirtioMem:30e8875ce68559be
HarvestOpts:56754c51f930a9da
Squeezy:fcf7fbaf1681b737
SqueezySoft:fcf7fbaf1681b737";
    assert_eq!(digest_table(ample), expected);
}

#[test]
fn tight_host_digests_are_pinned() {
    let expected = "\
Static:304ca97186badf9b
VirtioMem:518f6fdf1f68ab85
HarvestOpts:b5a0c188fd7acc44
Squeezy:ab9c7a5de56b014c
SqueezySoft:3c607dcfac0b4aa0";
    assert_eq!(digest_table(tight), expected);
}

/// Two identical runs digest equal; different seeds digest differently
/// (the digest actually covers the stochastic fields); and querying a
/// quantile (which re-sorts histogram samples in place) never changes
/// the digest.
#[test]
fn digest_discriminates_and_is_query_order_independent() {
    let a = FaasSim::new(ample(BackendKind::Squeezy))
        .expect("boot")
        .run()
        .digest();
    let mut b = FaasSim::new(ample(BackendKind::Squeezy))
        .expect("boot")
        .run();
    let _ = b.p99_ms(FunctionKind::Html);
    assert_eq!(a, b.digest(), "quantile queries don't perturb the digest");
    let mut cfg = ample(BackendKind::Squeezy);
    cfg.seed = 2;
    let c = FaasSim::new(cfg).expect("boot").run().digest();
    assert_ne!(a, c);
}
