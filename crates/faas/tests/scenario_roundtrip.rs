//! Property: `Scenario::parse(s.render()) == s` for every valid
//! scenario — the spec format loses nothing, whatever combination of
//! topology, backend sweep, workload, knobs and SLO overrides a
//! scenario carries (floats at full bit precision included). The same
//! property holds one level up for [`SweepSpec`]: list/range axes and
//! `expect.*` gate lines round-trip exactly too.

use faas::{
    AxisValues, BackendKind, ExpectKind, Expectation, PolicyKind, RouterKind, Scenario, SweepAxis,
    SweepSpec, Topology, WorkloadSpec,
};
use mem_types::{GIB, MIB};
use proptest::prelude::*;
use workloads::{FunctionKind, WorkloadKind};

/// Trace paths a spec may carry — including characters the `key =
/// value` format must treat as opaque value bytes.
const TRACE_PATHS: [&str; 3] = [
    "examples/traces/azure_3day.csv",
    "traces/odd name=x #1.csv",
    "./rel/../weird(1.csv",
];

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (0u8..1).prop_map(|_| Topology::SingleVm),
        (1usize..6).prop_map(Topology::Cluster),
        (0u8..1).prop_map(|_| Topology::Fleet),
    ]
}

/// A non-empty, duplicate-free backend sweep: the bits of a 5-bit
/// mask, in registry order.
fn backends_strategy() -> impl Strategy<Value = Vec<BackendKind>> {
    (1u8..32).prop_map(|mask| {
        BackendKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, b)| b)
            .collect()
    })
}

/// SLO overrides as a 4-bit mask over the function kinds (canonical
/// order) with one arbitrary positive target each.
fn slo_strategy() -> impl Strategy<Value = Vec<(FunctionKind, f64)>> {
    (0u8..16, 10.0f64..5000.0, 10.0f64..5000.0, 10.0f64..5000.0).prop_map(|(mask, a, b, c)| {
        let targets = [a, b, c, (a + b) / 2.0];
        FunctionKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(i, k)| (k, targets[i]))
            .collect()
    })
}

fn capacity_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        (1u64..17).prop_map(|g| g * GIB),
        (256u64..8192).prop_map(|m| m * MIB),
        // Raw odd byte counts exercise the no-suffix render path.
        (1_000_000u64..1 << 40).prop_map(|b| b | 1),
    ]
}

#[allow(clippy::type_complexity)]
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // The proptest shim supports tuples up to arity 4, so the field
    // space is sampled as a tuple-of-tuples and assembled by hand.
    // Indices past the named registry sample `trace(<path>)` workloads
    // (paths with dots, dashes, spaces and '=' must all round-trip).
    let shape = (
        topology_strategy(),
        backends_strategy(),
        0usize..WorkloadKind::ALL.len() + TRACE_PATHS.len(),
        slo_strategy(),
    );
    let load = (1u64..9, 1.0f64..600.0, 0.5f64..20.0, 0.01f64..1.0);
    let tide = (5.0f64..900.0, 0.0f64..2.0, 1.0f64..4.0, 0.0f64..0.9);
    let host = (1u64..5, 0.0f64..90.0, capacity_strategy(), 0u64..5);
    let fleet = (1u64..4, 0u64..4, 1.0f64..40.0, 0.0f64..40.0);
    let rest = (0.0f64..300.0, any::<u64>(), 1u64..5, 0u64..4);
    ((shape, load), (tide, host), (fleet, rest)).prop_map(
        |(
            ((topology, backends, workload_idx, slo), (tenants, duration_s, rps, trough_frac)),
            (
                (period_s, zipf_exponent, burst_factor, burst_duty),
                (concurrency, keepalive_s, host_capacity, router_idx),
            ),
            (
                (min_hosts, extra_hosts, boot_delay_s, cooldown_s),
                (mtbf_s, seed, trials, policy_idx),
            ),
        )| {
            let workload = match WorkloadKind::ALL.get(workload_idx) {
                Some(&kind) => WorkloadSpec::Named(kind),
                None => WorkloadSpec::Trace(
                    TRACE_PATHS[workload_idx - WorkloadKind::ALL.len()].to_string(),
                ),
            };
            let mut s = Scenario::new("prop-scenario", topology, workload);
            s.backends = backends;
            s.params.tenants = tenants as usize;
            s.params.duration_s = duration_s;
            s.params.rps = rps;
            // Any fraction of the peak keeps trough ≤ rps valid.
            s.params.trough_rps = rps * trough_frac;
            s.params.period_s = period_s;
            s.params.zipf_exponent = zipf_exponent;
            s.params.burst_factor = burst_factor;
            s.params.burst_duty = burst_duty;
            s.concurrency = concurrency as u32;
            s.keepalive_s = keepalive_s;
            s.host_capacity = host_capacity;
            s.router = RouterKind::ALL[router_idx as usize];
            s.policy = PolicyKind::ALL[policy_idx as usize];
            s.min_hosts = min_hosts as usize;
            s.max_hosts = (min_hosts + extra_hosts) as usize;
            s.boot_delay_s = boot_delay_s;
            s.cooldown_s = cooldown_s;
            s.mtbf_s = mtbf_s;
            s.slo = slo;
            s.seed = seed;
            s.trials = trials as u32;
            // Names ride on the seed draw: spaces, '=' and '#' inside
            // a value are all legal and must round-trip.
            const NAMES: [&str; 4] = [
                "prop-scenario",
                "two words",
                "x=y #tricky",
                "dots.and-dashes_9",
            ];
            s.name = NAMES[(seed % 4) as usize].to_string();
            s
        },
    )
}

/// A valid sweep spec: the scalar scenario plus up to three axes
/// (a float list, an integer list, a `hosts` range on multi-host
/// topologies) and a masked subset of `expect.*` gates (fleet-only
/// gates kept to fleet bases). Valid-by-construction: `SweepSpec::new`
/// canonicalizes and re-checks everything the parser would.
fn sweep_strategy() -> impl Strategy<Value = SweepSpec> {
    (scenario_strategy(), (0u8..8, 0u8..128), (2u64..9, 1u64..5)).prop_map(
        |(mut base, (axis_mask, gate_mask), (hosts_hi, ka_mult))| {
            let mut axes = Vec::new();
            if axis_mask & 1 != 0 {
                // Float-valued list axis; tokens are distinct for any
                // multiplier.
                axes.push(SweepAxis {
                    key: "keepalive_s".to_string(),
                    values: AxisValues::List(vec![
                        format!("{}", 5 * ka_mult),
                        format!("{}", 7 * ka_mult),
                        "2.5".to_string(),
                    ]),
                });
            }
            if axis_mask & 2 != 0 {
                axes.push(SweepAxis {
                    key: "trials".to_string(),
                    values: AxisValues::List(vec!["1".to_string(), "2".to_string()]),
                });
            }
            if axis_mask & 4 != 0 && base.topology != Topology::SingleVm {
                if base.topology == Topology::Fleet {
                    // Every swept max_hosts must stay ≥ min_hosts.
                    base.min_hosts = 1;
                }
                axes.push(SweepAxis {
                    key: "hosts".to_string(),
                    values: AxisValues::Range {
                        start: 1,
                        end: hosts_hi,
                        step: 2,
                        mult: true,
                    },
                });
            }
            let mut expect = Vec::new();
            for (i, k) in ExpectKind::ALL.into_iter().enumerate() {
                if gate_mask & (1 << i) != 0
                    && (!k.fleet_only() || base.topology == Topology::Fleet)
                {
                    expect.push(Expectation {
                        kind: k,
                        limit: 0.5 + 3.0 * i as f64,
                    });
                }
            }
            SweepSpec::new(base, axes, expect).expect("generator only makes valid sweeps")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_round_trips(s in scenario_strategy()) {
        prop_assert!(s.validate().is_ok(), "generator only makes valid scenarios");
        let text = s.render();
        let back = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("render produced an unparsable spec:\n{text}\n{e}"));
        prop_assert_eq!(back, s);
    }

    #[test]
    fn render_is_canonical(s in scenario_strategy()) {
        // Rendering the parsed scenario reproduces the text exactly:
        // render ∘ parse ∘ render = render.
        let text = s.render();
        let again = Scenario::parse(&text).expect("parses").render();
        prop_assert_eq!(again, text);
    }

    #[test]
    fn sweep_parse_render_round_trips(s in sweep_strategy()) {
        let text = s.render();
        let back = SweepSpec::parse(&text)
            .unwrap_or_else(|e| panic!("render produced an unparsable sweep spec:\n{text}\n{e}"));
        prop_assert_eq!(back, s);
    }

    #[test]
    fn sweep_render_is_canonical(s in sweep_strategy()) {
        let text = s.render();
        let again = SweepSpec::parse(&text).expect("parses").render();
        prop_assert_eq!(again, text);
    }

    #[test]
    fn sweep_cells_stay_within_bounds(s in sweep_strategy()) {
        // Expansion invariants for every generated grid: the cell
        // count is the axis-size product × backends, every cell keeps
        // the base seed, and every cell validates.
        let cells = s.cells();
        let per_backend: usize = s
            .axes
            .iter()
            .map(|a| a.values.expanded().len())
            .product();
        let expected = if s.axes.is_empty() {
            1
        } else {
            per_backend * s.base.backends.len()
        };
        prop_assert_eq!(cells.len(), expected);
        for c in &cells {
            prop_assert_eq!(c.scenario.seed, s.base.seed);
            prop_assert!(c.scenario.validate().is_ok());
        }
    }
}
