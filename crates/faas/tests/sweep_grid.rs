//! End-to-end grid runs: a sweep expands, runs byte-identically for
//! any job count, evaluates its `expect.*` gates per cell, and the
//! compare report is deterministic — the behavioral contract `repro
//! run` builds on.

use faas::{compare_results, Scenario, SweepSpec};
use sim_core::ExpOpts;
use workloads::WorkloadKind;

/// A grid small enough for the debug test tier: 2 backends × 2 hosts
/// × 2 keepalives = 8 cells of a short cluster trace.
fn grid_text() -> String {
    "name = grid-it\n\
     topology = cluster(2)\n\
     workload = zipf-cluster\n\
     backend = virtio-mem, squeezy\n\
     hosts = 2, 3\n\
     tenants = 2\n\
     duration_s = 30\n\
     rps = 1.5\n\
     keepalive_s = 10, 20\n\
     seed = 77\n"
        .to_string()
}

#[test]
fn grid_runs_byte_identically_for_any_job_count() {
    let spec = SweepSpec::parse(&grid_text()).expect("parses");
    let serial = spec.run(&ExpOpts::serial()).expect("runs");
    let parallel = spec.run(&ExpOpts::serial().with_jobs(5)).expect("runs");
    assert_eq!(serial.cells.len(), 8, "2 backends x 2 hosts x 2 keepalives");
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.digest(), parallel.digest());
}

#[test]
fn trials_flag_overrides_per_cell_trial_counts() {
    let spec = SweepSpec::parse(&grid_text()).expect("parses");
    let opts = ExpOpts::serial().with_jobs(2);
    let mut opts3 = opts;
    opts3.trials = 3;
    let out = spec.run(&opts3).expect("runs");
    for (name, result) in &out.cells {
        for (_, trials) in &result.cells {
            assert_eq!(trials.len(), 3, "{name}");
        }
    }
}

#[test]
fn gates_fail_the_grid_and_render_per_cell_verdicts() {
    let text = format!(
        "{}expect.completion_min = 99.9\nexpect.p99_ms_max = 0.001\n",
        grid_text()
    );
    let spec = SweepSpec::parse(&text).expect("parses");
    let out = spec.run(&ExpOpts::serial()).expect("runs");
    // Sub-microsecond p99 is impossible; full completion at this load
    // is expected — both verdict polarities appear, and any failure
    // fails the grid.
    assert_eq!(out.verdicts.len(), 16, "2 gates x 8 cells");
    assert!(out
        .verdicts
        .iter()
        .all(|v| v.kind.key() != "expect.p99_ms_max" || !v.pass));
    assert!(out.failed());
    let rendered = out.render();
    assert!(rendered.contains("FAIL"), "{rendered}");
    assert!(rendered.contains("expectations:"), "{rendered}");
}

#[test]
fn passing_gates_leave_the_grid_green() {
    let text = format!(
        "{}expect.completion_min = 10\nexpect.p99_ms_max = 1000000\n",
        grid_text()
    );
    let spec = SweepSpec::parse(&text).expect("parses");
    let out = spec.run(&ExpOpts::serial()).expect("runs");
    assert!(!out.failed(), "{}", out.render());
    assert!(out.verdicts.iter().all(|v| v.pass));
}

#[test]
fn compare_is_deterministic_and_marks_direction() {
    // Two scalar specs differing only in keepalive; paired seeds make
    // the diff meaningful, and two runs must render identically
    // (the bootstrap stream is seeded, not ambient).
    let mut a = Scenario::new("a", faas::Topology::Cluster(2), WorkloadKind::ZipfCluster);
    a.params.tenants = 2;
    a.params.duration_s = 30.0;
    a.params.rps = 1.5;
    a.trials = 3;
    a.seed = 77;
    let mut b = a.clone();
    b.name = "b".to_string();
    b.keepalive_s = 1.0;
    let opts = ExpOpts::serial();
    let ra = a.run(&opts).expect("runs");
    let rb = b.run(&opts).expect("runs");
    let r1 = compare_results("a", &ra, "b", &rb).render();
    let r2 = compare_results("a", &ra, "b", &rb).render();
    assert_eq!(r1, r2, "compare is deterministic");
    assert!(r1.contains("p99_ms"), "{r1}");
    let self_cmp = compare_results("a", &ra, "a", &ra);
    for (_, diffs) in &self_cmp.rows {
        for d in diffs {
            assert_eq!(d.diff(), 0.0, "self-compare has zero deltas");
            assert!(!d.significant(), "self-compare is never significant");
        }
    }
}
