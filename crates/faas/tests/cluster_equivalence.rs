//! Property: a one-host cluster with the passthrough router is
//! *byte-identical* to the single-host simulator — for every backend,
//! over randomized bursty traces, seeds and trials.
//!
//! This is the load-bearing guarantee of the cluster layer: the shared
//! event engine, the sink adapter and pop-time routing add zero
//! behavioral drift, so cluster experiments remain comparable with
//! every single-host figure of the paper.

use faas::{
    BackendKind, ClusterConfig, ClusterSim, Deployment, FaasSim, HarvestConfig, SimConfig,
    SingleHost, VmSpec,
};
use mem_types::GIB;
use sim_core::DetRng;
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

fn random_config(rng: &mut DetRng) -> SimConfig {
    let backends = BackendKind::ALL;
    let backend = backends[rng.range(0, backends.len() as u64) as usize];
    let kinds = [FunctionKind::Html, FunctionKind::Cnn, FunctionKind::Bfs];
    let duration_s = 120.0;
    let ndeps = 1 + rng.range(0, 2) as usize;
    let deployments = (0..ndeps)
        .map(|d| {
            let trace = BurstyTraceConfig {
                duration_s,
                base_rps: rng.range_f64(0.05, 0.3),
                burst_rps: rng.range_f64(1.0, 4.0),
                mean_burst_s: 10.0,
                mean_idle_s: 30.0,
            };
            let mut trng = rng.derive(d as u64 + 1);
            Deployment {
                kind: kinds[rng.range(0, kinds.len() as u64) as usize],
                concurrency: 2 + rng.range(0, 3) as u32,
                arrivals: bursty_arrivals(&trace, &mut trng),
            }
        })
        .collect();
    SimConfig {
        backend,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments,
            vcpus: Some(2.0),
        }],
        // Half the runs under real memory pressure.
        host_capacity: if rng.chance(0.5) {
            3 * GIB
        } else {
            u64::MAX / 2
        },
        keepalive_s: rng.range_f64(10.0, 40.0),
        duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: rng.chance(0.5),
        seed: rng.range(0, 1 << 32),
        trial: rng.range(0, 8),
    }
}

#[test]
fn one_host_cluster_is_byte_identical_to_faas_sim() {
    let mut rng = DetRng::new(0x50C1E7);
    for case in 0..12 {
        let cfg = random_config(&mut rng);
        let backend = cfg.backend;
        let single = FaasSim::new(cfg.clone()).expect("boot").run();
        let cluster = ClusterSim::new(ClusterConfig::from_single(cfg), Box::new(SingleHost))
            .expect("boot")
            .run();
        assert_eq!(cluster.hosts.len(), 1);
        assert_eq!(
            single.digest(),
            cluster.hosts[0].digest(),
            "case {case} ({backend:?}): cluster host diverged from FaasSim"
        );
        assert_eq!(single.completed, cluster.completed);
    }
}
