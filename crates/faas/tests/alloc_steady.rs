//! Steady-state allocation audit of the event engine.
//!
//! The perf tentpole's contract: once a host is warmed up, the
//! per-event path — arrival, dispatch, CPU completion, keep-alive —
//! performs no heap allocation. Timer-wheel slots, the flat `IdMap`s,
//! the CPU pool's water-filling scratch and the latency tap all reuse
//! capacity, so the only allocations left are amortized buffer growth
//! (logarithmic in run length) and per-sample metrics appends.
//!
//! The test pins that by differencing: two identical drumbeat runs, one
//! twice as long as the other. The extra invocations ride entirely on
//! warmed-up buffers, so the allocation *delta* per extra invocation
//! must be far below one — a per-event allocation anywhere in the
//! engine would push it to one or more.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use faas::config::{BackendKind, Deployment, HarvestConfig, SimConfig, VmSpec};
use faas::FaasSim;
use workloads::FunctionKind;

/// A pass-through allocator that counts allocation calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A warm drumbeat: fixed-cadence arrivals on one Html deployment, far
/// inside the keep-alive window, so after the first cold start every
/// invocation runs the steady-state dispatch/complete path.
fn drumbeat(duration_s: f64) -> (SimConfig, u64) {
    let gap = 0.1;
    let mut arrivals = Vec::new();
    let mut t = 0.05;
    while t < duration_s {
        arrivals.push(t);
        t += gap;
    }
    let n = arrivals.len() as u64;
    let cfg = SimConfig {
        backend: BackendKind::Squeezy,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: vec![Deployment {
                kind: FunctionKind::Html,
                concurrency: 2,
                arrivals,
            }],
            vcpus: Some(4.0),
        }],
        host_capacity: u64::MAX / 2,
        keepalive_s: 60.0,
        duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: false,
        seed: 0x57EAD,
        trial: 0,
    };
    (cfg, n)
}

/// Allocation calls spent inside `run()` for a drumbeat of `duration_s`
/// (setup is excluded: booting VMs legitimately allocates).
fn allocs_for(duration_s: f64) -> (u64, u64) {
    let (cfg, n) = drumbeat(duration_s);
    let sim = FaasSim::new(cfg).expect("host boots");
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = sim.run();
    let spent = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(result.completed, n, "drumbeat must be fully served");
    (spent, n)
}

#[test]
fn steady_state_invocations_do_not_allocate_per_event() {
    let (short, n_short) = allocs_for(100.0);
    let (long, n_long) = allocs_for(200.0);
    let extra_invocations = (n_long - n_short) as f64;
    // The longer run's extra invocations are pure steady state; allow a
    // generous budget for amortized growth and per-sample metrics, but
    // a true per-event allocation (≥1 per invocation, usually several)
    // is far outside it.
    let delta = long.saturating_sub(short) as f64;
    let per_invocation = delta / extra_invocations;
    assert!(
        per_invocation < 0.5,
        "steady state allocates {per_invocation:.2} times per invocation \
         (short run: {short} allocs / {n_short} inv, \
         long run: {long} allocs / {n_long} inv)"
    );
}
