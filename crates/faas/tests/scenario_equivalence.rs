//! The scenario front door adds zero behavioral drift: for each of the
//! three topologies, `Scenario::run_trial` is *byte-identical* to the
//! same experiment hand-wired through `SimConfig` / `ClusterConfig` /
//! `FleetConfig` the way the bench harness used to build them.
//!
//! The hand-built side spells out every seed derivation (trace stream
//! `0x77`, host seeds `0x40 + h`, template tag `0x3E`, fleet stream
//! `0xF1EE`, router probe seed `seed → trial`) — so if the scenario
//! layer ever drifts from the documented derivation contract, these
//! digests catch it.

use faas::{
    default_slos, AutoscaleOpts, BackendKind, ClusterConfig, ClusterSim, Deployment, FaasSim,
    FailureConfig, FleetConfig, FleetSim, HarvestConfig, PolicyKind, PowerOfTwoChoices, RouterKind,
    Scenario, SimConfig, SimResult, SlamSlo, TenantTrace, Topology, VmSpec, WarmAffinity,
};
use mem_types::GIB;
use sim_core::{DetRng, ExpOpts};
use workloads::{TenantLoad, WorkloadKind, WorkloadParams};

/// The hand-rolled seed derivations the bench harness used before the
/// scenario API (and which the API must keep forever).
fn trace_rng(seed: u64, trial: u64) -> DetRng {
    DetRng::new(seed).derive(0x77).derive(trial)
}

fn host_seed(seed: u64, h: u64) -> u64 {
    DetRng::new(seed).derive(0x40 + h).seed()
}

fn router_seed(seed: u64, trial: u64) -> u64 {
    DetRng::new(seed).derive(trial).seed()
}

/// The per-host config the old bench modules hand-wired.
fn hand_host_config(
    spec: &Scenario,
    tenants: &[TenantLoad],
    backend: BackendKind,
    seed: u64,
    trial: u64,
) -> SimConfig {
    SimConfig {
        backend,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: tenants
                .iter()
                .map(|t| Deployment {
                    kind: t.kind,
                    concurrency: spec.concurrency,
                    arrivals: Vec::new(),
                })
                .collect(),
            vcpus: None,
        }],
        host_capacity: spec.host_capacity,
        keepalive_s: spec.keepalive_s,
        duration_s: spec.params.duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: false,
        seed,
        trial,
    }
}

fn tenant_traces(tenants: &[TenantLoad]) -> Vec<TenantTrace> {
    tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantTrace {
            vm: 0,
            dep: ti,
            arrivals: t.arrivals.clone(),
        })
        .collect()
}

#[test]
fn single_vm_scenario_is_byte_identical_to_hand_built_sim_config() {
    let mut spec = Scenario::new("equiv-single", Topology::SingleVm, WorkloadKind::AzureTrace);
    spec.params = WorkloadParams {
        tenants: 2,
        duration_s: 90.0,
        rps: 2.0,
        ..WorkloadParams::default()
    };
    spec.concurrency = 3;
    spec.keepalive_s = 25.0;
    spec.host_capacity = 8 * GIB;
    spec.seed = 0xA1;

    for backend in [BackendKind::Static, BackendKind::Squeezy] {
        for trial in [0u64, 1] {
            // Hand-built: generate the traces on the documented stream
            // and wire them into a single-host SimConfig directly.
            let tenants =
                WorkloadKind::AzureTrace.generate(&spec.params, &mut trace_rng(spec.seed, trial));
            let mut cfg =
                hand_host_config(&spec, &tenants, backend, host_seed(spec.seed, 0), trial);
            for (dep, t) in cfg.vms[0].deployments.iter_mut().zip(&tenants) {
                dep.arrivals = t.arrivals.clone();
            }
            cfg.record_latency_points = true;
            let hand = FaasSim::new(cfg).expect("boot").run();

            let out = spec.run_trial(backend, trial);
            assert_eq!(
                out.host_digests,
                vec![hand.digest()],
                "single-vm digest diverged ({} trial {trial})",
                backend.name()
            );
            assert_eq!(out.completed, hand.completed);
        }
    }
}

#[test]
fn cluster_scenario_is_byte_identical_to_hand_built_cluster_config() {
    let mut spec = Scenario::new(
        "equiv-cluster",
        Topology::Cluster(2),
        WorkloadKind::ZipfCluster,
    );
    spec.params = WorkloadParams {
        tenants: 3,
        duration_s: 80.0,
        rps: 2.5,
        ..WorkloadParams::default()
    };
    spec.host_capacity = 5 * GIB;
    spec.router = RouterKind::WarmAffinity;
    spec.seed = 0xC1;

    for backend in [BackendKind::VirtioMem, BackendKind::Squeezy] {
        let trial = 0u64;
        let tenants =
            WorkloadKind::ZipfCluster.generate(&spec.params, &mut trace_rng(spec.seed, trial));
        let hand_cfg = ClusterConfig {
            hosts: (0..2)
                .map(|h| hand_host_config(&spec, &tenants, backend, host_seed(spec.seed, h), trial))
                .collect(),
            tenants: tenant_traces(&tenants),
        };
        let hand = ClusterSim::new(hand_cfg, Box::new(WarmAffinity))
            .expect("boot")
            .run();

        let out = spec.run_trial(backend, trial);
        let hand_digests: Vec<u64> = hand.hosts.iter().map(SimResult::digest).collect();
        assert_eq!(out.host_digests, hand_digests, "{}", backend.name());
        assert_eq!(
            out.routed_per_host.as_deref(),
            Some(&hand.routed_per_host()[..])
        );
        assert_eq!(out.completed, hand.completed);
        assert_eq!(
            out.latency_over_time.as_ref().map(|r| r.sorted_points()),
            Some(hand.latency_over_time.sorted_points()),
            "reservoir timeline diverged"
        );
    }
}

#[test]
fn fleet_scenario_is_byte_identical_to_hand_built_fleet_config() {
    let mut spec = Scenario::new("equiv-fleet", Topology::Fleet, WorkloadKind::Diurnal);
    spec.params = WorkloadParams {
        tenants: 3,
        duration_s: 60.0,
        rps: 3.5,
        trough_rps: 0.5,
        period_s: 60.0,
        ..WorkloadParams::default()
    };
    spec.host_capacity = 5 * GIB;
    spec.keepalive_s = 12.0;
    spec.router = RouterKind::PowerOfTwo;
    spec.policy = PolicyKind::SlamSlo;
    spec.min_hosts = 1;
    spec.max_hosts = 3;
    spec.boot_delay_s = 8.0;
    spec.cooldown_s = 6.0;
    spec.mtbf_s = 45.0;
    spec.seed = 0xF7;

    for backend in [BackendKind::Squeezy, BackendKind::SqueezySoft] {
        let trial = 0u64;
        let tenants =
            WorkloadKind::Diurnal.generate(&spec.params, &mut trace_rng(spec.seed, trial));
        let hand_cfg = FleetConfig {
            initial_hosts: (0..spec.min_hosts)
                .map(|h| {
                    hand_host_config(
                        &spec,
                        &tenants,
                        backend,
                        host_seed(spec.seed, h as u64),
                        trial,
                    )
                })
                .collect(),
            template: hand_host_config(&spec, &tenants, backend, host_seed(spec.seed, 0x3E), trial),
            tenants: tenant_traces(&tenants),
            autoscale: AutoscaleOpts {
                min_hosts: spec.min_hosts,
                max_hosts: spec.max_hosts,
                boot_delay_s: spec.boot_delay_s,
                cooldown_s: spec.cooldown_s,
            },
            failures: FailureConfig {
                mtbf_s: spec.mtbf_s,
            },
            slo: default_slos(tenants.iter().map(|t| t.kind)),
            seed: DetRng::new(spec.seed).derive(0xF1EE).derive(trial).seed(),
        };
        let hand = FleetSim::new(
            hand_cfg,
            Box::new(PowerOfTwoChoices::from_seed(router_seed(spec.seed, trial))),
            Box::new(SlamSlo::default_policy()),
        )
        .expect("boot")
        .run();

        let out = spec.run_trial(backend, trial);
        let hand_digests: Vec<u64> = hand.hosts.iter().map(|h| h.result.digest()).collect();
        assert_eq!(out.host_digests, hand_digests, "{}", backend.name());
        let stats = out.fleet.expect("fleet stats present");
        assert_eq!(
            (
                stats.scale_ups,
                stats.scale_downs,
                stats.crashes,
                stats.lost
            ),
            (hand.scale_ups, hand.scale_downs, hand.crashes, hand.lost)
        );
        assert_eq!(
            (stats.slo_violations, stats.slo_total),
            (hand.slo_violations, hand.slo_total)
        );
        assert_eq!(
            out.latency_over_time.as_ref().map(|r| r.sorted_points()),
            Some(hand.latency_over_time.sorted_points()),
            "reservoir timeline diverged"
        );
        assert_eq!(out.completed, hand.completed);
    }
}

#[test]
fn scenario_run_is_byte_identical_for_any_job_count() {
    let mut spec = Scenario::new("equiv-jobs", Topology::Cluster(2), WorkloadKind::Churn);
    spec.backends = vec![BackendKind::VirtioMem, BackendKind::Squeezy];
    spec.params.tenants = 3;
    spec.params.duration_s = 60.0;
    spec.params.rps = 2.0;
    spec.keepalive_s = 8.0;
    spec.trials = 2;

    let serial = spec.run(&ExpOpts::serial()).expect("runs");
    let parallel = spec.run(&ExpOpts::serial().with_jobs(4)).expect("runs");
    assert_eq!(serial.digest(), parallel.digest());
    assert_eq!(serial.render(), parallel.render());
    // Fields a cluster doesn't produce report as absent, not zeros.
    for (_, trials) in &serial.cells {
        for t in trials {
            assert!(t.fleet.is_none(), "no control plane on a cluster");
            assert!(t.latency_over_time.is_some());
        }
    }
}
