//! The streaming arrival path adds zero behavioral drift.
//!
//! Two pins, per the trace-ingestion design:
//!
//! * **Streamed ≡ materialized** — a workload generated in memory and
//!   replayed through [`workloads::MaterializedSource`] produces the
//!   same completions, routing, and reservoir timeline as the legacy
//!   path that hands the simulators materialized arrival lists. The
//!   only sanctioned difference is the metrics discipline: streamed
//!   runs bound their per-function accumulators (capped reservoir
//!   histograms, streamed usage integral, empty time series), so the
//!   order-sensitive outcomes are compared field by field instead of
//!   by whole-result digest.
//! * **File-streamed ≡ in-memory-streamed** — the same arrival stream
//!   read back from an on-disk trace file is *byte-identical* (full
//!   per-host digests) to streaming it from memory: the parser adds
//!   nothing and loses nothing.

use std::fs;
use std::path::PathBuf;

use faas::{
    ClusterConfig, ClusterSim, FaasSim, FixedFleet, FleetConfig, FleetSim, RoundRobin, SimConfig,
    TenantTrace, LATENCY_RESERVOIR_CAP,
};
use sim_core::DetRng;
use workloads::{
    render_opendc, MaterializedSource, OpenDcRow, TenantLoad, WorkloadKind, WorkloadParams,
};

/// A small multi-tenant workload on the documented trace stream.
fn loads(seed: u64) -> Vec<TenantLoad> {
    let params = WorkloadParams {
        tenants: 3,
        duration_s: 90.0,
        rps: 2.5,
        ..WorkloadParams::default()
    };
    let mut rng = DetRng::new(seed).derive(0x77).derive(0);
    WorkloadKind::ZipfCluster.generate(&params, &mut rng)
}

fn host_cfg(tenants: &[TenantLoad], seed: u64, duration_s: f64) -> SimConfig {
    use faas::{BackendKind, Deployment, HarvestConfig, VmSpec};
    SimConfig {
        backend: BackendKind::Squeezy,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: tenants
                .iter()
                .map(|t| Deployment {
                    kind: t.kind,
                    concurrency: 2,
                    arrivals: Vec::new(),
                })
                .collect(),
            vcpus: Some(2.0),
        }],
        host_capacity: 6 * mem_types::GIB,
        keepalive_s: 15.0,
        duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: false,
        seed,
        trial: 0,
    }
}

fn cluster_cfg(tenants: &[TenantLoad], with_arrivals: bool) -> ClusterConfig {
    ClusterConfig {
        hosts: (0..2).map(|h| host_cfg(tenants, 0xE0 + h, 90.0)).collect(),
        tenants: tenants
            .iter()
            .enumerate()
            .map(|(ti, t)| TenantTrace {
                vm: 0,
                dep: ti,
                arrivals: if with_arrivals {
                    t.arrivals.clone()
                } else {
                    Vec::new()
                },
            })
            .collect(),
    }
}

#[test]
fn cluster_streamed_replay_matches_the_materialized_path() {
    let tenants = loads(0x5C);
    let offered: usize = tenants
        .iter()
        .map(|t| t.arrivals.iter().filter(|&&a| a < 90.0).count())
        .sum();

    let legacy = ClusterSim::new(cluster_cfg(&tenants, true), Box::new(RoundRobin::default()))
        .expect("boot")
        .run();
    let streamed = ClusterSim::with_source(
        cluster_cfg(&tenants, false),
        Box::new(RoundRobin::default()),
        Box::new(MaterializedSource::new(tenants.clone())),
        "materialized",
    )
    .expect("boot")
    .run();

    assert_eq!(streamed.injected, offered as u64, "feed replays the trace");
    assert_eq!(streamed.completed, legacy.completed);
    assert_eq!(streamed.routed, legacy.routed, "routing order preserved");
    assert_eq!(
        streamed.events_processed, legacy.events_processed,
        "fed arrivals count as processed events"
    );
    assert_eq!(
        streamed.latency_over_time.sorted_points(),
        legacy.latency_over_time.sorted_points(),
        "the reservoir timeline sees identical completions in identical order"
    );
    for (s, l) in streamed.hosts.iter().zip(&legacy.hosts) {
        assert_eq!(s.completed, l.completed);
        assert!(
            s.host_usage.points().is_empty(),
            "bounded mode records no series"
        );
        assert!(
            (s.gib_seconds() - l.gib_seconds()).abs() <= 1e-9 * l.gib_seconds().abs().max(1.0),
            "streamed usage integral matches the series integral: {} vs {}",
            s.gib_seconds(),
            l.gib_seconds()
        );
        for ((ks, ms), (kl, ml)) in s.per_func.iter().zip(&l.per_func) {
            assert_eq!(ks, kl);
            assert_eq!(ms.cold_starts, ml.cold_starts);
            assert_eq!(ms.warm_starts, ml.warm_starts);
            assert_eq!(
                ms.latency.seen(),
                ml.latency.count() as u64,
                "bounded histograms still count every sample"
            );
            assert!(ms.latency.count() <= LATENCY_RESERVOIR_CAP);
            assert!(
                (ms.latency.mean() - ml.latency.mean()).abs() <= 1e-9,
                "capped mean is exact (streaming moments)"
            );
        }
    }
}

#[test]
fn fleet_streamed_replay_matches_the_materialized_path() {
    let tenants = loads(0xF1);
    let cluster = cluster_cfg(&tenants, true);
    let legacy = FleetSim::new(
        FleetConfig::fixed(cluster, 0xF1EE7),
        Box::new(RoundRobin::default()),
        Box::new(FixedFleet),
    )
    .expect("boot")
    .run();
    let streamed = FleetSim::with_source(
        FleetConfig::fixed(cluster_cfg(&tenants, false), 0xF1EE7),
        Box::new(RoundRobin::default()),
        Box::new(FixedFleet),
        Box::new(MaterializedSource::new(tenants.clone())),
        "materialized",
    )
    .expect("boot")
    .run();

    assert_eq!(streamed.completed, legacy.completed);
    assert_eq!(streamed.routed, legacy.routed);
    assert_eq!(streamed.events_processed, legacy.events_processed);
    assert_eq!(streamed.injected, legacy.injected);
    assert_eq!(
        (streamed.lost, streamed.deferred),
        (legacy.lost, legacy.deferred)
    );
    assert_eq!(
        streamed.latency_over_time.sorted_points(),
        legacy.latency_over_time.sorted_points()
    );
    assert!(
        streamed.peak_queue_depth <= legacy.peak_queue_depth,
        "lazy injection never deepens the queue ({} vs {})",
        streamed.peak_queue_depth,
        legacy.peak_queue_depth
    );
}

#[test]
fn single_vm_streamed_replay_matches_the_materialized_path() {
    let tenants = loads(0x51);
    let mut cfg = host_cfg(&tenants, 0xAB, 90.0);
    for (dep, t) in cfg.vms[0].deployments.iter_mut().zip(&tenants) {
        dep.arrivals = t.arrivals.clone();
    }
    let legacy = FaasSim::new(cfg).expect("boot").run();
    let (streamed, injected) = FaasSim::with_source(
        host_cfg(&tenants, 0xAB, 90.0),
        Box::new(MaterializedSource::new(tenants.clone())),
        "materialized",
    )
    .expect("boot")
    .run_counted();

    let offered: usize = tenants
        .iter()
        .map(|t| t.arrivals.iter().filter(|&&a| a < 90.0).count())
        .sum();
    assert_eq!(injected, offered as u64);
    assert_eq!(streamed.completed, legacy.completed);
    for ((ks, ms), (kl, ml)) in streamed.per_func.iter().zip(&legacy.per_func) {
        assert_eq!(ks, kl);
        assert_eq!(
            (ms.cold_starts, ms.warm_starts),
            (ml.cold_starts, ml.warm_starts)
        );
        assert_eq!(ms.latency.seen(), ml.latency.count() as u64);
    }
}

/// Writes `text` under the workspace target dir (inside the repo) and
/// returns its path.
fn temp_trace(name: &str, text: &str) -> String {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.push("../../target/test-traces");
    fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    fs::write(&path, text).expect("write trace");
    path.to_string_lossy().into_owned()
}

#[test]
fn file_streamed_run_is_byte_identical_to_memory_streamed() {
    // An opendc trace carries exact timestamps, so the same arrivals
    // can be expressed both as a file and as materialized lists —
    // whole-millisecond times convert to identical nanoseconds on both
    // paths.
    use workloads::FunctionKind;
    let kinds = [FunctionKind::Html, FunctionKind::Cnn];
    let rows: Vec<OpenDcRow> = (0..120)
        .map(|i| OpenDcRow {
            timestamp_ms: 250 * i,
            tenant: (i % 2) as usize,
            invocations: 1 + i % 3,
            avg_exec_ms: 80.0,
            memory_mb: 128,
        })
        .collect();
    let text = render_opendc(&kinds, &rows);
    let path = temp_trace("equiv_opendc.csv", &text);

    let mut loads: Vec<TenantLoad> = kinds
        .iter()
        .map(|&kind| TenantLoad {
            kind,
            arrivals: Vec::new(),
        })
        .collect();
    for r in &rows {
        for _ in 0..r.invocations {
            loads[r.tenant].arrivals.push(r.timestamp_ms as f64 / 1e3);
        }
    }

    let tenants = loads.clone();
    let from_file = ClusterSim::with_source(
        cluster_cfg(&tenants, false),
        Box::new(RoundRobin::default()),
        workloads::open_trace(&path, 0).expect("trace opens"),
        &path,
    )
    .expect("boot")
    .run();
    let from_memory = ClusterSim::with_source(
        cluster_cfg(&tenants, false),
        Box::new(RoundRobin::default()),
        Box::new(MaterializedSource::new(loads)),
        "materialized",
    )
    .expect("boot")
    .run();

    let df: Vec<u64> = from_file.hosts.iter().map(|h| h.digest()).collect();
    let dm: Vec<u64> = from_memory.hosts.iter().map(|h| h.digest()).collect();
    assert_eq!(df, dm, "file and memory streams replay byte-identically");
    assert_eq!(from_file.injected, from_memory.injected);
    assert_eq!(from_file.routed, from_memory.routed);
    assert_eq!(
        from_file.latency_over_time.sorted_points(),
        from_memory.latency_over_time.sorted_points()
    );
}
