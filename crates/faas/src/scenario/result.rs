//! The unified result every scenario run returns, whatever simulator
//! ran it.
//!
//! One [`ScenarioOutcome`] per `(backend, trial)` cell: request
//! accounting, merged latency histograms, memory footprint, and the
//! layer-specific extras as `Option`s — a field a topology doesn't
//! produce reports as absent, never as a zero that could be mistaken
//! for a measurement. [`ScenarioResult`] groups the cells per backend
//! and renders the comparison table.

use std::collections::BTreeMap;

use sim_core::experiment::mean_over;
use sim_core::{Fnv1a, Histogram, Reservoir, TextTable};
use workloads::FunctionKind;

use super::{Scenario, Topology};
use crate::cluster::ClusterResult;
use crate::config::BackendKind;
use crate::fleet::FleetResult;
use crate::metrics::SimResult;

/// Control-plane numbers only a fleet run produces.
#[derive(Clone, Copy, Debug)]
pub struct FleetStats {
    /// Integrated provisioned-host time in host-hours.
    pub host_hours: f64,
    /// Completions that breached their function's SLO target.
    pub slo_violations: u64,
    /// Completions with an SLO target (the violation denominator).
    pub slo_total: u64,
    /// Hosts booted by the autoscaler.
    pub scale_ups: u64,
    /// Hosts gracefully drained by the autoscaler.
    pub scale_downs: u64,
    /// Hosts killed by failure injection.
    pub crashes: u64,
    /// Queued requests re-routed off crashed hosts.
    pub requeued: u64,
    /// In-flight executions lost to crashes (plus unservable drops).
    pub lost: u64,
    /// Arrival deferrals while capacity was provisioning.
    pub deferred: u64,
    /// Smallest number of simultaneously active hosts.
    pub min_active: usize,
    /// Largest number of simultaneously active hosts.
    pub peak_active: usize,
}

impl FleetStats {
    /// Fraction of SLO-tracked completions over their target.
    pub fn slo_violation_rate(&self) -> f64 {
        self.slo_violations as f64 / self.slo_total.max(1) as f64
    }
}

/// Everything one `(backend, trial)` cell of a scenario produces.
pub struct ScenarioOutcome {
    /// The elasticity backend this cell ran.
    pub backend: BackendKind,
    /// Trial number within the sweep.
    pub trial: u64,
    /// Requests offered by the trace within the duration.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that triggered a new instance.
    pub cold_starts: u64,
    /// Requests served by a warm instance.
    pub warm_starts: u64,
    /// Integrated host memory footprint (GiB·s) across all hosts.
    pub gib_seconds: f64,
    /// Request-latency histograms, merged per function across hosts.
    pub latency: BTreeMap<FunctionKind, Histogram>,
    /// Bounded `(arrival_s, latency_ms)` reservoir — the time-resolved
    /// latency timeline. Absent for a single VM (the single-host
    /// simulator records exact per-request points instead).
    pub latency_over_time: Option<Reservoir>,
    /// Requests routed per host. Absent for a single VM.
    pub routed_per_host: Option<Vec<u64>>,
    /// Control-plane numbers. Absent outside the fleet topology.
    pub fleet: Option<FleetStats>,
    /// Per-host [`SimResult::digest`]s, in host order — the
    /// byte-identity anchor the equivalence tests compare.
    pub host_digests: Vec<u64>,
}

impl ScenarioOutcome {
    pub(crate) fn from_sim(
        backend: BackendKind,
        trial: u64,
        offered: u64,
        result: SimResult,
    ) -> ScenarioOutcome {
        let latency = result
            .per_func
            .iter()
            .map(|(&kind, m)| (kind, m.latency.clone()))
            .collect();
        let (cold, warm) = result
            .per_func
            .values()
            .fold((0, 0), |(c, w), m| (c + m.cold_starts, w + m.warm_starts));
        ScenarioOutcome {
            backend,
            trial,
            offered,
            completed: result.completed,
            cold_starts: cold,
            warm_starts: warm,
            gib_seconds: result.gib_seconds(),
            latency,
            latency_over_time: None,
            routed_per_host: None,
            fleet: None,
            host_digests: vec![result.digest()],
        }
    }

    pub(crate) fn from_cluster(
        backend: BackendKind,
        trial: u64,
        offered: u64,
        result: ClusterResult,
    ) -> ScenarioOutcome {
        let (cold, warm) = result.cold_warm_starts();
        ScenarioOutcome {
            backend,
            trial,
            offered,
            completed: result.completed,
            cold_starts: cold,
            warm_starts: warm,
            gib_seconds: result.total_gib_seconds(),
            latency: result.merged_latency(),
            routed_per_host: Some(result.routed_per_host()),
            host_digests: result.hosts.iter().map(SimResult::digest).collect(),
            latency_over_time: Some(result.latency_over_time),
            fleet: None,
        }
    }

    pub(crate) fn from_fleet(
        backend: BackendKind,
        trial: u64,
        offered: u64,
        result: FleetResult,
    ) -> ScenarioOutcome {
        let (cold, warm) = result.cold_warm_starts();
        let stats = FleetStats {
            host_hours: result.host_hours(),
            slo_violations: result.slo_violations,
            slo_total: result.slo_total,
            scale_ups: result.scale_ups,
            scale_downs: result.scale_downs,
            crashes: result.crashes,
            requeued: result.requeued,
            lost: result.lost,
            deferred: result.deferred,
            min_active: result.min_active(),
            peak_active: result.peak_active(),
        };
        ScenarioOutcome {
            backend,
            trial,
            offered,
            completed: result.completed,
            cold_starts: cold,
            warm_starts: warm,
            gib_seconds: result.total_gib_seconds(),
            latency: result.merged_latency(),
            routed_per_host: Some(
                result
                    .routed
                    .iter()
                    .map(|per_tenant| per_tenant.iter().sum())
                    .collect(),
            ),
            host_digests: result.hosts.iter().map(|h| h.result.digest()).collect(),
            latency_over_time: Some(result.latency_over_time),
            fleet: Some(stats),
        }
    }

    /// All functions' latencies merged into one histogram.
    pub fn merged_latency(&self) -> Histogram {
        let mut all = Histogram::new();
        for h in self.latency.values() {
            all.merge(h);
        }
        all
    }

    /// Fraction of requests that triggered a cold start.
    pub fn cold_ratio(&self) -> f64 {
        self.cold_starts as f64 / (self.cold_starts + self.warm_starts).max(1) as f64
    }

    /// Share of all routed requests landing on the hottest host
    /// (`None` for a single VM).
    pub fn hot_share(&self) -> Option<f64> {
        let routed = self.routed_per_host.as_ref()?;
        let max = routed.iter().copied().max().unwrap_or(0) as f64;
        let total: u64 = routed.iter().sum();
        Some(max / total.max(1) as f64)
    }

    /// A stable FNV-1a digest over the whole outcome — per-host result
    /// digests, routing, reservoir points (in sorted order) and
    /// control-plane counters. Equal digests mean the scenario run is
    /// byte-identical to another construction of the same experiment.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.offered);
        h.write_u64(self.completed);
        h.write_u64(self.cold_starts);
        h.write_u64(self.warm_starts);
        h.write_f64(self.gib_seconds);
        h.write_u64(self.host_digests.len() as u64);
        for &d in &self.host_digests {
            h.write_u64(d);
        }
        if let Some(routed) = &self.routed_per_host {
            for &r in routed {
                h.write_u64(r);
            }
        }
        if let Some(res) = &self.latency_over_time {
            h.write_u64(res.seen());
            for (t, v) in res.sorted_points() {
                h.write_f64(t);
                h.write_f64(v);
            }
        }
        if let Some(f) = &self.fleet {
            h.write_f64(f.host_hours);
            for v in [
                f.slo_violations,
                f.slo_total,
                f.scale_ups,
                f.scale_downs,
                f.crashes,
                f.requeued,
                f.lost,
                f.deferred,
                f.min_active as u64,
                f.peak_active as u64,
            ] {
                h.write_u64(v);
            }
        }
        h.finish()
    }
}

/// The unified outcome of [`Scenario::run`]: one column of trials per
/// backend in the sweep, plus the spec that produced them.
pub struct ScenarioResult {
    /// The scenario that ran.
    pub spec: Scenario,
    /// `(backend, per-trial outcomes)` in spec order.
    pub cells: Vec<(BackendKind, Vec<ScenarioOutcome>)>,
}

impl ScenarioResult {
    /// FNV-1a digest over every cell (spec order, trial order).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (backend, trials) in &self.cells {
            h.write(backend.key().as_bytes());
            for t in trials {
                h.write_u64(t.digest());
            }
        }
        h.finish()
    }

    /// Renders the backend-comparison table (trial means per cell).
    /// Columns a topology doesn't produce are omitted entirely rather
    /// than shown as zeros.
    pub fn render(&self) -> String {
        let spec = &self.spec;
        let trials = self.cells.first().map(|(_, t)| t.len()).unwrap_or(0);
        let mut out = format!(
            "Scenario {:?}: {} topology, {} workload ({} tenants, {:.0}s), seed {}, {} trial(s)\n",
            spec.name,
            spec.topology.key(),
            spec.workload.key(),
            spec.params.tenants,
            spec.params.duration_s,
            spec.seed,
            trials,
        );
        match spec.topology {
            Topology::SingleVm => {}
            Topology::Cluster(_) => out.push_str(&format!("router {}\n", spec.router.key())),
            Topology::Fleet => out.push_str(&format!(
                "router {}, policy {}, hosts {}..{}, mtbf {}\n",
                spec.router.key(),
                spec.policy.key(),
                spec.min_hosts,
                spec.max_hosts,
                if spec.mtbf_s > 0.0 {
                    format!("{:.0}s", spec.mtbf_s)
                } else {
                    "off".to_string()
                },
            )),
        }

        let mut header = vec![
            "Backend", "Served", "p50(ms)", "p99(ms)", "Cold(%)", "GiB*s",
        ];
        if matches!(spec.topology, Topology::Cluster(_)) {
            header.push("Hot(%)");
        }
        if spec.topology == Topology::Fleet {
            header.extend([
                "Hosts", "Host-hrs", "SLOv(%)", "Scale+", "Scale-", "Crash", "Lost",
            ]);
        }
        let mut table = TextTable::new(&header);
        for (backend, trials) in &self.cells {
            // One merge pass per trial serves both percentiles.
            let mut merged: Vec<Histogram> =
                trials.iter().map(ScenarioOutcome::merged_latency).collect();
            let quantile_mean = |merged: &mut [Histogram], q: f64| {
                let qs: Vec<f64> = merged.iter_mut().map(|h| h.quantile(q)).collect();
                sim_core::metrics::mean(&qs)
            };
            let mut row = vec![
                backend.name().to_string(),
                format!(
                    "{:.0}/{:.0}",
                    mean_over(trials, |t| t.completed as f64),
                    mean_over(trials, |t| t.offered as f64)
                ),
                format!("{:.0}", quantile_mean(&mut merged, 0.5)),
                format!("{:.0}", quantile_mean(&mut merged, 0.99)),
                format!("{:.1}", 100.0 * mean_over(trials, |t| t.cold_ratio())),
                format!("{:.1}", mean_over(trials, |t| t.gib_seconds)),
            ];
            if matches!(spec.topology, Topology::Cluster(_)) {
                row.push(format!(
                    "{:.1}",
                    100.0 * mean_over(trials, |t| t.hot_share().unwrap_or(0.0))
                ));
            }
            if spec.topology == Topology::Fleet {
                let f = |get: fn(&FleetStats) -> f64| {
                    mean_over(trials, |t| t.fleet.as_ref().map(get).unwrap_or(0.0))
                };
                row.push(format!(
                    "{:.0}→{:.0}",
                    f(|s| s.min_active as f64),
                    f(|s| s.peak_active as f64)
                ));
                row.push(format!("{:.2}", f(|s| s.host_hours)));
                row.push(format!("{:.1}", 100.0 * f(|s| s.slo_violation_rate())));
                row.push(format!("{:.0}", f(|s| s.scale_ups as f64)));
                row.push(format!("{:.0}", f(|s| s.scale_downs as f64)));
                row.push(format!("{:.0}", f(|s| s.crashes as f64)));
                row.push(format!("{:.0}", f(|s| s.lost as f64)));
            }
            table.row(row);
        }
        out.push_str(&table.render());

        // The time-resolved view, where the topology records one.
        let quarters: Vec<String> = self
            .cells
            .iter()
            .filter_map(|(backend, trials)| {
                let q = spec.params.duration_s / 4.0;
                let means: Vec<Vec<f64>> = trials
                    .iter()
                    .filter_map(|t| {
                        t.latency_over_time.as_ref().map(|res| {
                            (0..4)
                                .map(|i| {
                                    res.mean_in(i as f64 * q, (i + 1) as f64 * q).unwrap_or(0.0)
                                })
                                .collect()
                        })
                    })
                    .collect();
                if means.is_empty() {
                    return None;
                }
                let avg = |i: usize| means.iter().map(|m| m[i]).sum::<f64>() / means.len() as f64;
                Some(format!(
                    "  {}: {:.0} / {:.0} / {:.0} / {:.0} ms",
                    backend.name(),
                    avg(0),
                    avg(1),
                    avg(2),
                    avg(3)
                ))
            })
            .collect();
        if !quarters.is_empty() {
            out.push_str("Time-resolved mean latency (reservoir-sampled quarters):\n");
            for line in quarters {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}
