//! The line-oriented `key = value` scenario spec format.
//!
//! Hand-rolled on purpose: the workspace's dependencies are vendored
//! offline shims, so there is no serde — and the format is small
//! enough that a real parser with line-numbered errors is less code
//! than a derive would hide. Grammar:
//!
//! ```text
//! # comment (full-line only)
//! key = value
//! backend = squeezy, virtio-mem      # lists are comma-separated
//! host_capacity = 6GiB               # byte sizes take KiB/MiB/GiB
//! slo.html = 500.0                   # per-function SLO override (ms)
//! ```
//!
//! [`Scenario::render`] emits every key in canonical order and
//! [`Scenario::parse`] accepts keys in any order, so
//! `parse(render(s)) == s` for every valid scenario — the
//! `scenario_roundtrip` property test pins it.

use mem_types::{GIB, MIB};
use workloads::FunctionKind;

use super::{Scenario, Topology, WorkloadSpec};
use crate::cluster::RouterKind;
use crate::config::BackendKind;
use crate::fleet::PolicyKind;

/// Every scalar spec key, in canonical render order (`slo.*` lines
/// follow `mtbf_s`). Must stay in sync with the parser's dispatch
/// below — the `registry_help_lists_everything` test cross-checks it.
pub(crate) const KEYS: [&str; 24] = [
    "name",
    "topology",
    "backend",
    "workload",
    "tenants",
    "rps",
    "trough_rps",
    "period_s",
    "zipf_exponent",
    "burst_factor",
    "burst_duty",
    "duration_s",
    "concurrency",
    "keepalive_s",
    "host_capacity",
    "router",
    "policy",
    "min_hosts",
    "max_hosts",
    "boot_delay_s",
    "cooldown_s",
    "mtbf_s",
    "seed",
    "trials",
];

/// Renders a byte count the way specs write them: whole `GiB`/`MiB`/
/// `KiB` when exact, raw bytes otherwise. Round-trips through
/// [`parse_bytes`].
fn render_bytes(b: u64) -> String {
    if b.is_multiple_of(GIB) {
        format!("{}GiB", b / GIB)
    } else if b.is_multiple_of(MIB) {
        format!("{}MiB", b / MIB)
    } else if b.is_multiple_of(1024) {
        format!("{}KiB", b / 1024)
    } else {
        format!("{b}")
    }
}

/// Parses `4GiB` / `512MiB` / `64KiB` / plain bytes.
fn parse_bytes(v: &str) -> Result<u64, String> {
    let (digits, unit) = match v {
        _ if v.ends_with("GiB") => (&v[..v.len() - 3], GIB),
        _ if v.ends_with("MiB") => (&v[..v.len() - 3], MIB),
        _ if v.ends_with("KiB") => (&v[..v.len() - 3], 1024),
        _ => (v, 1),
    };
    let n: u64 = digits.parse().map_err(|_| {
        format!("expected a byte size like `6GiB`, `512MiB` or plain bytes, got {v:?}")
    })?;
    n.checked_mul(unit)
        .ok_or_else(|| format!("byte size {v:?} overflows"))
}

/// Parses a `u64` in decimal or `0x`-prefixed hex (seeds read nicer in
/// hex).
pub(crate) fn parse_u64(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("expected an unsigned integer, got {v:?}"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    v.parse()
        .map_err(|_| format!("expected a number, got {v:?}"))
}

/// Range-checked narrowing: a spec value that doesn't fit the field's
/// type is an error, never a silent truncation.
pub(crate) fn parse_int<T: TryFrom<u64>>(v: &str) -> Result<T, String> {
    T::try_from(parse_u64(v)?).map_err(|_| format!("value {v} is out of range for this key"))
}

/// Scans spec text into trimmed `(lineno, key, value)` pairs, skipping
/// blank and `#` lines. Malformed lines and duplicate keys go to
/// `errs`; scanning continues so a bad spec reports every problem at
/// once. Shared by [`Scenario::parse`] and the sweep-grid parser.
pub(crate) fn scan_pairs<'a>(
    text: &'a str,
    errs: &mut Vec<String>,
) -> Vec<(usize, &'a str, &'a str)> {
    let mut pairs: Vec<(usize, &str, &str)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let Some((k, v)) = line.split_once('=') else {
            errs.push(format!(
                "line {lineno}: expected `key = value`, got {line:?}"
            ));
            continue;
        };
        let (k, v) = (k.trim(), v.trim());
        if k.is_empty() || v.is_empty() {
            errs.push(format!(
                "line {lineno}: expected `key = value`, got {line:?}"
            ));
            continue;
        }
        if let Some(&(prev, _, _)) = pairs.iter().find(|&&(_, pk, _)| pk == k) {
            errs.push(format!(
                "line {lineno}: key `{k}` already set on line {prev}"
            ));
            continue;
        }
        pairs.push((lineno, k, v));
    }
    pairs
}

/// Builds a [`Scenario`] from scanned pairs — shape keys first, then
/// [`Scenario::apply_key`] per pair — without validating. `None` when
/// a shape key is missing or unparsable (those errors are in `errs`,
/// alongside any per-key failures).
pub(crate) fn build_scenario(
    pairs: &[(usize, &str, &str)],
    errs: &mut Vec<String>,
) -> Option<Scenario> {
    let find = |key: &str| pairs.iter().find(|&&(_, k, _)| k == key).copied();
    let at = |lineno: usize, key: &str, e: String| format!("line {lineno}: {key}: {e}");

    // The shape keys decide how the rest is interpreted, so their
    // absence is fatal for this pass — but still reported together.
    let name = find("name").map(|(_, _, v)| v);
    let topology = find("topology").map(|(ln, _, v)| (ln, Topology::from_key(v)));
    let workload = find("workload").map(|(ln, _, v)| (ln, WorkloadSpec::from_key(v)));
    for (key, present) in [
        ("name", name.is_some()),
        ("topology", topology.is_some()),
        ("workload", workload.is_some()),
    ] {
        if !present {
            errs.push(format!("missing required key `{key}`"));
        }
    }
    if let Some((ln, Err(e))) = &topology {
        errs.push(at(*ln, "topology", e.clone()));
    }
    if let Some((ln, Err(e))) = &workload {
        errs.push(at(*ln, "workload", e.clone()));
    }
    let (Some(name), Some((_, Ok(topology))), Some((_, Ok(workload)))) = (name, topology, workload)
    else {
        return None;
    };

    let mut s = Scenario::new(name, topology, workload);
    for &(lineno, key, value) in pairs {
        if let Err(e) = Scenario::apply_key(&mut s, key, value) {
            errs.push(at(lineno, key, e));
        }
    }
    // Canonical override order, so `parse ∘ render` is the
    // identity regardless of line order in the source.
    s.slo
        .sort_by_key(|&(kind, _)| FunctionKind::ALL.iter().position(|&k| k == kind).unwrap());
    Some(s)
}

impl Scenario {
    /// Renders the spec in the canonical `key = value` form:
    /// every key, in [`KEYS`] order, plus one `slo.<function>` line per
    /// override. `parse(render(s)) == s` for every valid scenario.
    pub fn render(&self) -> String {
        let p = &self.params;
        let backends: Vec<&str> = self.backends.iter().map(|b| b.key()).collect();
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("name", self.name.clone());
        kv("topology", self.topology.key());
        kv("backend", backends.join(", "));
        kv("workload", self.workload.key());
        kv("tenants", format!("{}", p.tenants));
        kv("rps", format!("{:?}", p.rps));
        kv("trough_rps", format!("{:?}", p.trough_rps));
        kv("period_s", format!("{:?}", p.period_s));
        kv("zipf_exponent", format!("{:?}", p.zipf_exponent));
        kv("burst_factor", format!("{:?}", p.burst_factor));
        kv("burst_duty", format!("{:?}", p.burst_duty));
        kv("duration_s", format!("{:?}", p.duration_s));
        kv("concurrency", format!("{}", self.concurrency));
        kv("keepalive_s", format!("{:?}", self.keepalive_s));
        kv("host_capacity", render_bytes(self.host_capacity));
        kv("router", self.router.key().to_string());
        kv("policy", self.policy.key().to_string());
        kv("min_hosts", format!("{}", self.min_hosts));
        kv("max_hosts", format!("{}", self.max_hosts));
        kv("boot_delay_s", format!("{:?}", self.boot_delay_s));
        kv("cooldown_s", format!("{:?}", self.cooldown_s));
        kv("mtbf_s", format!("{:?}", self.mtbf_s));
        for &(kind, target) in &self.slo {
            kv(&format!("slo.{}", kind.key()), format!("{target:?}"));
        }
        kv("seed", format!("{}", self.seed));
        kv("trials", format!("{}", self.trials));
        out
    }

    /// Parses a spec file and validates it.
    ///
    /// Errors carry line numbers and, for unknown names, the full list
    /// of valid alternatives — and every bad line is reported at once
    /// (malformed lines, duplicate/unknown keys and unparsable values
    /// are all collected before giving up), so a typo'd spec is fixed
    /// in one pass, not one error per run.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut errs: Vec<String> = Vec::new();
        let pairs = scan_pairs(text, &mut errs);
        let s = build_scenario(&pairs, &mut errs);
        match s {
            Some(s) if errs.is_empty() => {
                s.validate()?;
                Ok(s)
            }
            _ => Err(errs.join("\n")),
        }
    }

    /// Applies one `key = value` pair to the scenario under
    /// construction (the shape keys were handled before `Scenario::new`).
    pub(crate) fn apply_key(s: &mut Scenario, key: &str, value: &str) -> Result<(), String> {
        match key {
            "name" | "topology" | "workload" => {}
            "backend" => {
                let mut backends = Vec::new();
                for part in value.split(',') {
                    backends.push(BackendKind::from_key(part.trim())?);
                }
                s.backends = backends;
            }
            "tenants" => s.params.tenants = parse_int(value)?,
            "rps" => s.params.rps = parse_f64(value)?,
            "trough_rps" => s.params.trough_rps = parse_f64(value)?,
            "period_s" => s.params.period_s = parse_f64(value)?,
            "zipf_exponent" => s.params.zipf_exponent = parse_f64(value)?,
            "burst_factor" => s.params.burst_factor = parse_f64(value)?,
            "burst_duty" => s.params.burst_duty = parse_f64(value)?,
            "duration_s" => s.params.duration_s = parse_f64(value)?,
            "concurrency" => s.concurrency = parse_int(value)?,
            "keepalive_s" => s.keepalive_s = parse_f64(value)?,
            "host_capacity" => s.host_capacity = parse_bytes(value)?,
            "router" => s.router = RouterKind::from_key(value)?,
            "policy" => s.policy = PolicyKind::from_key(value)?,
            "min_hosts" => s.min_hosts = parse_int(value)?,
            "max_hosts" => s.max_hosts = parse_int(value)?,
            "boot_delay_s" => s.boot_delay_s = parse_f64(value)?,
            "cooldown_s" => s.cooldown_s = parse_f64(value)?,
            "mtbf_s" => s.mtbf_s = parse_f64(value)?,
            "seed" => s.seed = parse_u64(value)?,
            "trials" => s.trials = parse_int(value)?,
            slo if slo.starts_with("slo.") => {
                let kind = FunctionKind::from_key(&slo["slo.".len()..])?;
                s.slo.push((kind, parse_f64(value)?));
            }
            unknown => {
                // Suggest across the *whole* spec vocabulary — scalar
                // keys, the sweep-only `hosts` axis, `expect.*` gates
                // and the `slo.*` overrides — so a typo'd grid spec
                // points at the key it meant.
                let slo_keys: Vec<String> = FunctionKind::ALL
                    .iter()
                    .map(|k| format!("slo.{}", k.key()))
                    .collect();
                let mut candidates: Vec<&str> = KEYS.to_vec();
                candidates.push("hosts");
                candidates.extend(super::expect::ExpectKind::ALL.iter().map(|e| e.key()));
                candidates.extend(slo_keys.iter().map(String::as_str));
                let hint = sim_core::registry::nearest(unknown, &candidates)
                    .map(|n| format!("; did you mean `{n}`?"))
                    .unwrap_or_default();
                return Err(format!(
                    "unknown key `{unknown}` (valid keys: {}, slo.<function>, \
                     expect.* gates and the `hosts` sweep axis — see `repro scenarios`){hint}",
                    KEYS.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn fleet_spec() -> Scenario {
        let mut s = Scenario::new("fleet-slam", Topology::Fleet, WorkloadKind::Diurnal);
        s.backends = vec![
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::SqueezySoft,
        ];
        s.params.tenants = 5;
        s.params.rps = 8.0;
        s.params.trough_rps = 1.0;
        s.params.duration_s = 300.0;
        s.params.period_s = 300.0;
        s.host_capacity = 4 * GIB;
        s.router = RouterKind::PowerOfTwo;
        s.policy = PolicyKind::SlamSlo;
        s.mtbf_s = 150.0;
        s.slo = vec![(FunctionKind::Html, 900.0), (FunctionKind::Bert, 4000.0)];
        s.seed = 0xF7;
        s
    }

    #[test]
    fn render_parse_round_trips() {
        let s = fleet_spec();
        let text = s.render();
        let back = Scenario::parse(&text).expect("round-trip parses");
        assert_eq!(back, s);
    }

    #[test]
    fn parse_accepts_comments_blank_lines_and_any_order() {
        let text = "\n# a fleet\ntrials = 2\nworkload = diurnal\n\nname = x\ntopology = fleet\n";
        let s = Scenario::parse(text).expect("parses");
        assert_eq!(s.trials, 2);
        assert_eq!(s.workload, WorkloadKind::Diurnal);
    }

    #[test]
    fn parse_rejects_unknown_names_with_the_valid_list() {
        let base = "name = x\ntopology = fleet\nworkload = diurnal\n";
        let err = Scenario::parse(&format!("{base}backend = sqeezy\n")).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("squeezy-soft"), "lists valid backends: {err}");
        let err = Scenario::parse(&format!("{base}rooter = least-loaded\n")).unwrap_err();
        assert!(err.contains("unknown key `rooter`"), "{err}");
        assert!(err.contains("host_capacity"), "lists valid keys: {err}");
        let err = Scenario::parse("name = x\ntopology = ring\nworkload = diurnal\n").unwrap_err();
        assert!(err.contains("cluster(N)"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_lines_and_duplicates() {
        let err = Scenario::parse("name x\n").unwrap_err();
        assert!(
            err.contains("line 1") && err.contains("key = value"),
            "{err}"
        );
        let err = Scenario::parse("name = x\nname = y\ntopology = fleet\nworkload = diurnal\n")
            .unwrap_err();
        assert!(err.contains("already set on line 1"), "{err}");
        let err = Scenario::parse("topology = fleet\nworkload = diurnal\n").unwrap_err();
        assert!(err.contains("missing required key `name`"), "{err}");
    }

    #[test]
    fn parse_reports_every_bad_line_at_once() {
        let text = "name = x\ntopology = fleet\nworkload = diurnal\n\
                    backend = sqeezy\nrooter = least-loaded\ntrials = oops\n";
        let err = Scenario::parse(text).unwrap_err();
        assert!(err.contains("line 4") && err.contains("sqeezy"), "{err}");
        assert!(err.contains("line 5") && err.contains("rooter"), "{err}");
        assert!(err.contains("line 6") && err.contains("oops"), "{err}");
    }

    #[test]
    fn parse_validates_the_result() {
        let err = Scenario::parse(
            "name = x\ntopology = fleet\nworkload = diurnal\nmin_hosts = 5\nmax_hosts = 2\n",
        )
        .unwrap_err();
        assert!(
            err.contains("max_hosts (2) must be ≥ min_hosts (5)"),
            "{err}"
        );
    }

    #[test]
    fn byte_sizes_round_trip() {
        for b in [6 * GIB, 1536 * MIB, 64 * 1024, 12345] {
            assert_eq!(parse_bytes(&render_bytes(b)), Ok(b));
        }
        assert_eq!(parse_bytes("4GiB"), Ok(4 * GIB));
        assert!(parse_bytes("4gb").is_err());
    }

    #[test]
    fn seeds_parse_in_hex_and_decimal() {
        let base = "name = x\ntopology = single-vm\nworkload = memhog\n";
        let hex = Scenario::parse(&format!("{base}seed = 0xF7\n")).unwrap();
        let dec = Scenario::parse(&format!("{base}seed = 247\n")).unwrap();
        assert_eq!(hex.seed, dec.seed);
    }
}
