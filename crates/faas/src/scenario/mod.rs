//! The declarative scenario API: one front door to all three
//! simulators.
//!
//! A [`Scenario`] names everything an experiment needs — a workload
//! from the [`workloads::registry`], a topology
//! ([`Topology::SingleVm`] | [`Topology::Cluster`] | [`Topology::Fleet`]),
//! an elasticity backend per host (or a sweep list of them), a router,
//! an autoscale policy, SLOs, duration/seed/trials — and
//! [`Scenario::run`] dispatches to [`crate::FaasSim`],
//! [`crate::ClusterSim`] or [`crate::FleetSim`] and returns one unified
//! [`ScenarioResult`]. Every future experiment becomes a data change:
//! a spec file (see [`Scenario::parse`] / [`Scenario::render`] for the
//! line-oriented `key = value` format) instead of another ~100 lines
//! of hand-wired config glue.
//!
//! Determinism contract: a scenario's RNG streams are derived from
//! `(seed, trial)` through the *same* stream tags the bench harness
//! has always used, so
//!
//! * every backend of a sweep sees identical tenant traces and crash
//!   plans (paired comparison), and
//! * `Scenario::run_trial` is byte-identical to a hand-built
//!   `SimConfig`/`ClusterConfig`/`FleetConfig` — the
//!   `scenario_equivalence` tests pin all three topologies.

mod compare;
mod expect;
mod format;
mod result;
mod sweep;

pub use compare::{compare_results, CompareReport, MetricDiff, ALPHA};
pub use expect::{render_verdicts, ExpectKind, ExpectVerdict, Expectation};
pub use result::{FleetStats, ScenarioOutcome, ScenarioResult};
pub use sweep::{AxisValues, GridOutcome, SweepAxis, SweepCell, SweepSpec, MAX_CELLS};

use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::DetRng;
use workloads::{FunctionKind, TenantLoad, WorkloadKind, WorkloadParams};

use crate::cluster::RouterKind;
use crate::config::{BackendKind, HarvestConfig, SimConfig};
use crate::fleet::{default_slos, PolicyKind};
use crate::{ClusterConfig, ClusterSim, FaasSim, FleetConfig, FleetSim};

/// Derivation tag of the tenant-trace stream: traces depend on
/// `(seed, trial)` only, never on the backend or router under test.
pub(crate) const TRACE_STREAM: u64 = 0x77;

/// Base tag of per-host jitter seeds (`host_seed(h) = seed → 0x40+h`).
pub(crate) const HOST_SEED_BASE: u64 = 0x40;

/// Largest host count a spec may ask for. Host indices above this
/// would push `0x40 + h` into the reserved tags ([`TEMPLATE_TAG`]'s
/// `0x40 + 0x3E` and [`TRACE_STREAM`]), aliasing streams the design
/// promises are independent — `validate` rejects such specs.
pub(crate) const HOST_TAG_CAP: usize = 0x20;

/// Host-seed tag of the fleet's boot template — above every valid
/// initial host index (see [`HOST_TAG_CAP`]), so booted hosts never
/// share an initial host's stream.
pub(crate) const TEMPLATE_TAG: u64 = 0x3E;

/// Derivation tag of the fleet's own streams (crash plan, reservoir).
pub(crate) const FLEET_STREAM: u64 = 0xF1EE;

/// The workload a scenario drives: a named generator from the
/// [`workloads::registry`], or a trace file streamed from disk.
///
/// Named workloads materialize their arrival lists up front — fine at
/// experiment scale. `trace(<path>)` replays an on-disk trace
/// (azure-minute or opendc, see [`workloads::TRACE_MAGIC`]) through
/// the lazy [`workloads::TraceSource`] path instead, so a multi-day,
/// multi-million-invocation replay never holds more than the pending
/// events in memory. The trace file also replaces the `tenants`/`rps`
/// workload params: its `# tenants = ...` directive defines the
/// deployment slots.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// A named generator ([`WorkloadKind`]).
    Named(WorkloadKind),
    /// A trace file, replayed lazily from disk.
    Trace(String),
}

impl WorkloadSpec {
    /// Registry key used by spec files (`trace(<path>)` carries its
    /// path).
    pub fn key(&self) -> String {
        match self {
            WorkloadSpec::Named(k) => k.key().to_string(),
            WorkloadSpec::Trace(path) => format!("trace({path})"),
        }
    }

    /// Parses a workload key; `Err` carries the valid forms.
    pub fn from_key(key: &str) -> Result<WorkloadSpec, String> {
        if let Some(inner) = key
            .strip_prefix("trace(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            if inner.is_empty() {
                return Err("trace(<path>) needs a file path".to_string());
            }
            return Ok(WorkloadSpec::Trace(inner.to_string()));
        }
        match WorkloadKind::from_key(key) {
            Ok(k) => Ok(WorkloadSpec::Named(k)),
            Err(e) => Err(format!("{e}, or trace(<path>)")),
        }
    }
}

impl From<WorkloadKind> for WorkloadSpec {
    fn from(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec::Named(kind)
    }
}

/// Named-workload comparisons read naturally at call sites
/// (`spec.workload == WorkloadKind::Diurnal`).
impl PartialEq<WorkloadKind> for WorkloadSpec {
    fn eq(&self, other: &WorkloadKind) -> bool {
        matches!(self, WorkloadSpec::Named(k) if k == other)
    }
}

/// Which simulator a scenario runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topology {
    /// One host driven by [`crate::FaasSim`] (the paper's deployment).
    SingleVm,
    /// `n` hosts under one event engine ([`crate::ClusterSim`]).
    Cluster(usize),
    /// An elastic host set with a control plane ([`crate::FleetSim`]).
    Fleet,
}

impl Topology {
    /// Registry key used by spec files (`cluster(4)` carries its size).
    pub fn key(self) -> String {
        match self {
            Topology::SingleVm => "single-vm".to_string(),
            Topology::Cluster(n) => format!("cluster({n})"),
            Topology::Fleet => "fleet".to_string(),
        }
    }

    /// Parses a topology key; `Err` carries the valid forms.
    pub fn from_key(key: &str) -> Result<Topology, String> {
        match key {
            "single-vm" => Ok(Topology::SingleVm),
            "fleet" => Ok(Topology::Fleet),
            other => {
                let inner = other
                    .strip_prefix("cluster(")
                    .and_then(|rest| rest.strip_suffix(')'));
                match inner.and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => Ok(Topology::Cluster(n)),
                    None => Err(format!(
                        "unknown topology {key:?} (valid: single-vm, cluster(N), fleet)"
                    )),
                }
            }
        }
    }
}

/// A declarative experiment specification — the single public entry
/// point to the single-VM, cluster and fleet simulators.
///
/// Build one in code (start from [`Scenario::new`] and set fields) or
/// load one from a spec file with [`Scenario::parse`]. Fields that a
/// topology does not use are simply ignored by it (`policy` on a
/// cluster, `router` on a single VM), the same way host configs inside
/// a [`ClusterConfig`] ignore their arrival lists; [`Scenario::validate`]
/// checks values and cross-field consistency up front with real error
/// messages.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Display name (also the report-section title under `repro run`).
    pub name: String,
    /// Which simulator runs the spec.
    pub topology: Topology,
    /// The elasticity backends to sweep — one [`ScenarioResult`] cell
    /// per backend, all under identical traces (paired comparison).
    pub backends: Vec<BackendKind>,
    /// The workload: a named generator or a streamed trace file.
    pub workload: WorkloadSpec,
    /// The workload parameter block (tenants, rates, duration, ...).
    pub params: WorkloadParams,
    /// Per-tenant max concurrent instances on each host.
    pub concurrency: u32,
    /// Keep-alive window before evicting idle instances, in seconds.
    pub keepalive_s: f64,
    /// Physical memory per host, in bytes.
    pub host_capacity: u64,
    /// Routing policy (cluster and fleet topologies).
    pub router: RouterKind,
    /// Autoscale policy (fleet topology).
    pub policy: PolicyKind,
    /// Fleet size floor (fleet topology).
    pub min_hosts: usize,
    /// Fleet size ceiling; the `fixed` policy provisions at this peak.
    pub max_hosts: usize,
    /// Provisioning delay for booted hosts, in seconds.
    pub boot_delay_s: f64,
    /// Cooldown between scale actions, in seconds.
    pub cooldown_s: f64,
    /// Mean time between injected host crashes (0 disables; fleet
    /// topology).
    pub mtbf_s: f64,
    /// Per-function SLO target overrides in milliseconds; functions
    /// without an override use [`default_slos`].
    pub slo: Vec<(FunctionKind, f64)>,
    /// Root seed of every derived stream.
    pub seed: u64,
    /// Repeated trials on derived RNG streams (a `repro run --trials`
    /// flag larger than 1 overrides this).
    pub trials: u32,
}

impl Scenario {
    /// A scenario with the registry defaults: Squeezy backend,
    /// least-loaded router, fixed fleet policy, 6 GiB hosts, seed 42,
    /// one trial.
    pub fn new(name: &str, topology: Topology, workload: impl Into<WorkloadSpec>) -> Scenario {
        Scenario {
            name: name.to_string(),
            topology,
            backends: vec![BackendKind::Squeezy],
            workload: workload.into(),
            params: WorkloadParams::default(),
            concurrency: 2,
            keepalive_s: 20.0,
            host_capacity: 6 * mem_types::GIB,
            router: RouterKind::LeastLoaded,
            policy: PolicyKind::Fixed,
            min_hosts: 1,
            max_hosts: 4,
            boot_delay_s: 15.0,
            cooldown_s: 10.0,
            mtbf_s: 0.0,
            slo: Vec::new(),
            seed: 42,
            trials: 1,
        }
    }

    /// Validates the spec up front; `Err` lists *every* problem, one
    /// per line, so a spec file is fixed in one pass.
    pub fn validate(&self) -> Result<(), String> {
        let mut errs: Vec<String> = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                errs.push(msg);
            }
        };
        let p = &self.params;
        // The spec format stores the name as one `key = value` line
        // with trimmed ends, so only names that survive that trip are
        // valid — `parse(render(s)) == s` depends on it.
        check(
            !self.name.is_empty() && !self.name.contains('\n') && self.name.trim() == self.name,
            "name must be non-empty and single-line, without leading/trailing whitespace"
                .to_string(),
        );
        check(
            !self.backends.is_empty(),
            "backend list must not be empty".to_string(),
        );
        for (i, b) in self.backends.iter().enumerate() {
            check(
                !self.backends[..i].contains(b),
                format!("backend {} listed twice", b.key()),
            );
        }
        check(
            p.tenants >= 1,
            format!("tenants must be ≥ 1 (got {})", p.tenants),
        );
        let positive = |v: f64| v.is_finite() && v > 0.0;
        check(
            positive(p.duration_s),
            format!("duration_s must be positive (got {})", p.duration_s),
        );
        check(
            positive(p.rps),
            format!("rps must be positive (got {})", p.rps),
        );
        check(
            p.zipf_exponent.is_finite() && p.zipf_exponent >= 0.0,
            format!("zipf_exponent must be ≥ 0 (got {})", p.zipf_exponent),
        );
        if let WorkloadSpec::Trace(path) = &self.workload {
            // Same round-trip constraint as the name: the path lives
            // inside one `workload = trace(<path>)` line.
            check(
                !path.is_empty() && !path.contains('\n') && path.trim() == path,
                "trace path must be non-empty and single-line, without leading/trailing whitespace"
                    .to_string(),
            );
        }
        if self.workload == WorkloadKind::Diurnal {
            check(
                positive(p.trough_rps),
                format!("trough_rps must be positive (got {})", p.trough_rps),
            );
            check(
                p.trough_rps <= p.rps,
                format!(
                    "trough_rps ({}) must be ≤ rps ({}, the diurnal peak)",
                    p.trough_rps, p.rps
                ),
            );
            check(
                positive(p.period_s),
                format!("period_s must be positive (got {})", p.period_s),
            );
            check(
                p.burst_factor.is_finite() && p.burst_factor >= 1.0,
                format!("burst_factor must be ≥ 1 (got {})", p.burst_factor),
            );
            check(
                (0.0..1.0).contains(&p.burst_duty),
                format!("burst_duty must be in [0, 1) (got {})", p.burst_duty),
            );
        }
        check(
            self.concurrency >= 1,
            format!("concurrency must be ≥ 1 (got {})", self.concurrency),
        );
        check(
            self.keepalive_s.is_finite() && self.keepalive_s >= 0.0,
            format!("keepalive_s must be ≥ 0 (got {})", self.keepalive_s),
        );
        check(
            self.host_capacity > 0,
            "host_capacity must be positive".to_string(),
        );
        if let Topology::Cluster(n) = self.topology {
            check(n >= 1, format!("cluster size must be ≥ 1 (got {n})"));
            check(
                n <= HOST_TAG_CAP,
                format!("cluster size must be ≤ {HOST_TAG_CAP} (got {n}): host seed tags live below the reserved stream tags"),
            );
        }
        if self.topology == Topology::Fleet {
            check(
                self.min_hosts >= 1,
                format!("min_hosts must be ≥ 1 (got {})", self.min_hosts),
            );
            check(
                self.max_hosts >= self.min_hosts,
                format!(
                    "max_hosts ({}) must be ≥ min_hosts ({})",
                    self.max_hosts, self.min_hosts
                ),
            );
            check(
                self.max_hosts <= HOST_TAG_CAP,
                format!("max_hosts must be ≤ {HOST_TAG_CAP} (got {}): host seed tags live below the reserved stream tags", self.max_hosts),
            );
            check(
                positive(self.boot_delay_s),
                format!("boot_delay_s must be positive (got {})", self.boot_delay_s),
            );
            check(
                self.cooldown_s.is_finite() && self.cooldown_s >= 0.0,
                format!("cooldown_s must be ≥ 0 (got {})", self.cooldown_s),
            );
            check(
                self.mtbf_s.is_finite() && self.mtbf_s >= 0.0,
                format!("mtbf_s must be ≥ 0 (got {}; 0 disables)", self.mtbf_s),
            );
        }
        for (i, &(kind, target)) in self.slo.iter().enumerate() {
            check(
                positive(target),
                format!("slo.{} must be positive (got {target})", kind.key()),
            );
            check(
                !self.slo[..i].iter().any(|&(k, _)| k == kind),
                format!("slo.{} listed twice", kind.key()),
            );
        }
        check(
            self.trials >= 1,
            format!("trials must be ≥ 1 (got {})", self.trials),
        );
        if errs.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "scenario {:?} is invalid:\n  - {}",
                self.name,
                errs.join("\n  - ")
            ))
        }
    }

    /// A CI-scale variant: duration capped at 120 simulated seconds,
    /// one trial. Deterministic, so `repro run --quick` output stays
    /// byte-identical across job counts.
    pub fn quick(&self) -> Scenario {
        let mut s = self.clone();
        s.params.duration_s = s.params.duration_s.min(120.0);
        s.params.period_s = s.params.period_s.min(120.0);
        s.trials = 1;
        s
    }

    /// Synthesizes this scenario's tenant traces for one trial —
    /// derived from `(seed, trial)` alone, so every backend of the
    /// sweep sees identical load.
    ///
    /// For a `trace(<path>)` workload this only reads the file's
    /// header: the tenant slots come back with *empty* arrival lists
    /// (the body streams lazily at run time, never materialized).
    ///
    /// # Panics
    ///
    /// Panics if a trace file's header cannot be read — [`Scenario::run`]
    /// preflights the whole file first, so this only fires when
    /// `run_trial` is driven directly against a bad path.
    pub fn tenant_loads(&self, trial: u64) -> Vec<TenantLoad> {
        match &self.workload {
            WorkloadSpec::Named(kind) => {
                let mut rng = DetRng::new(self.seed).derive(TRACE_STREAM).derive(trial);
                kind.generate(&self.params, &mut rng)
            }
            WorkloadSpec::Trace(path) => workloads::read_trace_header(path)
                .unwrap_or_else(|e| panic!("trace {path}: {e}"))
                .kinds
                .into_iter()
                .map(|kind| TenantLoad {
                    kind,
                    arrivals: Vec::new(),
                })
                .collect(),
        }
    }

    /// Jitter seed of host `tag` (host index, or [`TEMPLATE_TAG`]).
    pub(crate) fn host_seed(&self, tag: u64) -> u64 {
        DetRng::new(self.seed).derive(HOST_SEED_BASE + tag).seed()
    }

    /// Seed of the router's probe stream for one trial.
    pub fn router_seed(&self, trial: u64) -> u64 {
        DetRng::new(self.seed).derive(trial).seed()
    }

    /// Seed of the fleet's own streams (crash plan, reservoir) for one
    /// trial.
    pub(crate) fn fleet_seed(&self, trial: u64) -> u64 {
        DetRng::new(self.seed)
            .derive(FLEET_STREAM)
            .derive(trial)
            .seed()
    }

    /// The per-host base config every multi-host topology clones:
    /// deployment slots for each tenant, arrivals left empty (the
    /// cluster/fleet owns the traces).
    pub(crate) fn host_config(
        &self,
        tenants: &[TenantLoad],
        backend: BackendKind,
        seed: u64,
        trial: u64,
    ) -> SimConfig {
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![crate::config::VmSpec {
                deployments: tenants
                    .iter()
                    .map(|t| crate::config::Deployment {
                        kind: t.kind,
                        concurrency: self.concurrency,
                        arrivals: Vec::new(),
                    })
                    .collect(),
                vcpus: None,
            }],
            host_capacity: self.host_capacity,
            keepalive_s: self.keepalive_s,
            duration_s: self.params.duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial,
        }
    }

    /// Effective per-function SLO targets: [`default_slos`] over the
    /// workload's function kinds, with this spec's overrides applied.
    pub fn effective_slos(
        &self,
        kinds: impl IntoIterator<Item = FunctionKind>,
    ) -> Vec<(FunctionKind, f64)> {
        let mut slos = default_slos(kinds);
        for &(kind, target) in &self.slo {
            match slos.iter_mut().find(|(k, _)| *k == kind) {
                Some(entry) => entry.1 = target,
                None => slos.push((kind, target)),
            }
        }
        slos
    }

    /// Runs one `(backend, trial)` cell on the topology's simulator.
    ///
    /// This is the composable core [`Scenario::run`] loops over; grid
    /// experiments (`bench::cluster`, `bench::fleet`) call it directly
    /// from their own sweep engines.
    ///
    /// # Panics
    ///
    /// Panics if a host fails to boot (e.g. `host_capacity` smaller
    /// than the VMs' boot memory) — the same contract as constructing
    /// the simulators by hand.
    pub fn run_trial(&self, backend: BackendKind, trial: u64) -> ScenarioOutcome {
        if let WorkloadSpec::Trace(path) = &self.workload {
            return self.run_trace_trial(path, backend, trial);
        }
        let duration_s = self.params.duration_s;
        let offered_of = |arrivals: &[f64]| arrivals.iter().filter(|&&a| a < duration_s).count();
        match self.topology {
            Topology::SingleVm => {
                let cfg = SimConfig::from_scenario(self, backend, trial);
                let offered: usize = cfg
                    .vms
                    .iter()
                    .flat_map(|v| &v.deployments)
                    .map(|d| offered_of(&d.arrivals))
                    .sum();
                let result = FaasSim::new(cfg).expect("scenario host boots").run();
                ScenarioOutcome::from_sim(backend, trial, offered as u64, result)
            }
            Topology::Cluster(_) => {
                let cfg = ClusterConfig::from_scenario(self, backend, trial);
                let offered: usize = cfg.tenants.iter().map(|t| offered_of(&t.arrivals)).sum();
                let router = self.router.build(self.router_seed(trial));
                let result = ClusterSim::new(cfg, router)
                    .expect("scenario hosts boot")
                    .run();
                ScenarioOutcome::from_cluster(backend, trial, offered as u64, result)
            }
            Topology::Fleet => {
                let cfg = FleetConfig::from_scenario(self, backend, trial);
                let offered: usize = cfg.tenants.iter().map(|t| offered_of(&t.arrivals)).sum();
                let router = self.router.build(self.router_seed(trial));
                let result = FleetSim::new(cfg, router, self.policy.build())
                    .expect("scenario fleet boots")
                    .run();
                ScenarioOutcome::from_fleet(backend, trial, offered as u64, result)
            }
        }
    }

    /// One `(backend, trial)` cell of a `trace(<path>)` workload: the
    /// same topology dispatch as the named path, but arrivals stream
    /// from the file through the simulators' `with_source` ctors —
    /// never materialized, metrics bounded. `offered` is the number of
    /// arrivals the feed actually injected within the duration.
    fn run_trace_trial(&self, path: &str, backend: BackendKind, trial: u64) -> ScenarioOutcome {
        let source =
            workloads::open_trace(path, trial).unwrap_or_else(|e| panic!("trace {path}: {e}"));
        match self.topology {
            Topology::SingleVm => {
                let cfg = SimConfig::from_scenario(self, backend, trial);
                let (result, injected) = FaasSim::with_source(cfg, source, path)
                    .expect("scenario host boots")
                    .run_counted();
                ScenarioOutcome::from_sim(backend, trial, injected, result)
            }
            Topology::Cluster(_) => {
                let cfg = ClusterConfig::from_scenario(self, backend, trial);
                let router = self.router.build(self.router_seed(trial));
                let result = ClusterSim::with_source(cfg, router, source, path)
                    .expect("scenario hosts boot")
                    .run();
                ScenarioOutcome::from_cluster(backend, trial, result.injected, result)
            }
            Topology::Fleet => {
                let cfg = FleetConfig::from_scenario(self, backend, trial);
                let router = self.router.build(self.router_seed(trial));
                let result = FleetSim::with_source(cfg, router, self.policy.build(), source, path)
                    .expect("scenario fleet boots")
                    .run();
                ScenarioOutcome::from_fleet(backend, trial, result.injected, result)
            }
        }
    }

    /// Runs the whole scenario — every backend of the sweep × every
    /// trial — through the experiment engine (`opts.jobs` shards the
    /// grid; output is byte-identical for any job count) and returns
    /// the unified result.
    ///
    /// `opts.trials > 1` overrides the spec's own trial count.
    pub fn run(&self, opts: &ExpOpts) -> Result<ScenarioResult, String> {
        self.validate()?;
        if let WorkloadSpec::Trace(path) = &self.workload {
            // Preflight the whole file (every row parsed, time order
            // checked) so a malformed trace fails here with a line
            // number instead of mid-simulation.
            workloads::validate_trace(path).map_err(|e| format!("trace {path}: {e}"))?;
        }
        let trials = if opts.trials > 1 {
            opts.trials
        } else {
            self.trials
        };
        struct Exp<'a> {
            spec: &'a Scenario,
            trials: u32,
        }
        impl Experiment for Exp<'_> {
            type Point = BackendKind;
            type Output = ScenarioOutcome;

            fn points(&self) -> Vec<BackendKind> {
                self.spec.backends.clone()
            }

            fn trials(&self) -> u32 {
                self.trials
            }

            fn seed(&self) -> u64 {
                self.spec.seed
            }

            fn run_trial(&self, &backend: &BackendKind, ctx: &mut TrialCtx) -> ScenarioOutcome {
                self.spec.run_trial(backend, ctx.trial)
            }
        }
        let grouped = run_experiment(&Exp { spec: self, trials }, opts.effective_jobs());
        Ok(ScenarioResult {
            spec: self.clone(),
            cells: self.backends.iter().copied().zip(grouped).collect(),
        })
    }
}

/// The registry listing `repro scenarios` prints: every name the spec
/// format resolves, with one-line workload descriptions and the full
/// key set.
pub fn registry_help() -> String {
    let mut out = String::from("Scenario registry — the names a spec file may use\n\n");
    out.push_str("topologies:  single-vm, cluster(N), fleet\n");
    out.push_str("workloads:\n");
    for w in WorkloadKind::ALL {
        out.push_str(&format!("  {:<13} {}\n", w.key(), w.describe()));
    }
    out.push_str(
        "  trace(<path>) replay a trace file lazily from disk (azure-minute or opendc; \
         write one with `repro gen-trace`)\n",
    );
    let keys = |items: Vec<&'static str>| items.join(", ");
    out.push_str(&format!(
        "backends:    {}\n",
        keys(BackendKind::ALL.iter().map(|b| b.key()).collect())
    ));
    out.push_str(&format!(
        "routers:     {}\n",
        keys(RouterKind::ALL.iter().map(|r| r.key()).collect())
    ));
    out.push_str(&format!(
        "policies:    {}\n",
        keys(PolicyKind::ALL.iter().map(|p| p.key()).collect())
    ));
    out.push_str("\nspec keys (line-oriented `key = value`, `#` comments):\n  ");
    out.push_str(&format::KEYS.join(", "));
    out.push_str("\n  plus per-function SLO overrides: ");
    let slo_keys: Vec<String> = FunctionKind::ALL
        .iter()
        .map(|k| format!("slo.{}", k.key()))
        .collect();
    out.push_str(&slo_keys.join(", "));
    out.push('\n');
    out.push_str(
        "\nsweep axes — any of these keys also accepts a list `a, b, c` or a range \
         `lo..hi step N` / `lo..hi step Nx` (multiplicative), expanding the spec into a \
         named grid of cells:\n  ",
    );
    out.push_str(&sweep::SWEEPABLE.join(", "));
    out.push_str(
        "\n  (`hosts` sweeps cluster size or fleet max_hosts; a `backend` list sweeps \
         as before, crossed in as the outermost grid dimension)\n",
    );
    out.push_str(
        "\nexpectation gates (evaluated per cell after the run; `repro run` exits \
         nonzero when one fails):\n",
    );
    for e in expect::ExpectKind::ALL {
        out.push_str(&format!("  {:<22} {}\n", e.key(), e.describe()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_keys_round_trip() {
        for t in [Topology::SingleVm, Topology::Cluster(7), Topology::Fleet] {
            assert_eq!(Topology::from_key(&t.key()), Ok(t));
        }
        assert!(Topology::from_key("cluster(x)").is_err());
        assert!(Topology::from_key("mesh").unwrap_err().contains("fleet"));
    }

    #[test]
    fn validate_collects_every_problem() {
        let mut s = Scenario::new("bad", Topology::Fleet, WorkloadKind::Diurnal);
        s.params.rps = -1.0;
        s.params.trough_rps = 5.0;
        s.min_hosts = 3;
        s.max_hosts = 2;
        s.trials = 0;
        let err = s.validate().unwrap_err();
        assert!(err.contains("rps must be positive"), "{err}");
        assert!(
            err.contains("max_hosts (2) must be ≥ min_hosts (3)"),
            "{err}"
        );
        assert!(err.contains("trials must be ≥ 1"), "{err}");
    }

    #[test]
    fn validate_rejects_unroundtrippable_names_and_tag_collisions() {
        let mut s = Scenario::new(" padded ", Topology::Cluster(56), WorkloadKind::ZipfCluster);
        let err = s.validate().unwrap_err();
        assert!(err.contains("without leading/trailing whitespace"), "{err}");
        assert!(err.contains("cluster size must be ≤ 32"), "{err}");
        s = Scenario::new("multi\nline", Topology::Fleet, WorkloadKind::Diurnal);
        s.max_hosts = 63;
        let err = s.validate().unwrap_err();
        assert!(err.contains("single-line"), "{err}");
        assert!(err.contains("max_hosts must be ≤ 32"), "{err}");
    }

    #[test]
    fn validate_accepts_the_defaults() {
        for topo in [Topology::SingleVm, Topology::Cluster(2), Topology::Fleet] {
            for w in WorkloadKind::ALL {
                Scenario::new("ok", topo, w).validate().expect("valid");
            }
        }
    }

    #[test]
    fn quick_caps_duration_and_trials() {
        let mut s = Scenario::new("q", Topology::Fleet, WorkloadKind::Diurnal);
        s.params.duration_s = 600.0;
        s.params.period_s = 600.0;
        s.trials = 5;
        let q = s.quick();
        assert_eq!(q.params.duration_s, 120.0);
        assert_eq!(q.params.period_s, 120.0, "quick still sees a full cycle");
        assert_eq!(q.trials, 1);
        // Already-small durations are untouched.
        let mut small = Scenario::new("s", Topology::SingleVm, WorkloadKind::AzureTrace);
        small.params.duration_s = 60.0;
        small.params.period_s = 60.0;
        assert_eq!(small.quick(), small);
    }

    #[test]
    fn traces_are_paired_across_backends_and_independent_across_trials() {
        let s = Scenario::new("t", Topology::Cluster(2), WorkloadKind::ZipfCluster);
        let a = s.tenant_loads(0);
        let b = s.tenant_loads(0);
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.arrivals, tb.arrivals);
        }
        let c = s.tenant_loads(1);
        assert_ne!(
            a.iter().map(|t| t.arrivals.len()).sum::<usize>(),
            usize::MAX,
            "sanity"
        );
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.arrivals != y.arrivals),
            "trials draw distinct traces"
        );
    }

    #[test]
    fn effective_slos_apply_overrides() {
        let mut s = Scenario::new("slo", Topology::Fleet, WorkloadKind::Diurnal);
        s.slo = vec![(FunctionKind::Html, 99.0)];
        let slos = s.effective_slos([FunctionKind::Html, FunctionKind::Cnn]);
        let get = |k| slos.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(FunctionKind::Html), 99.0, "override wins");
        assert!(get(FunctionKind::Cnn) > 300.0, "default kept");
    }

    #[test]
    fn registry_help_lists_everything() {
        let help = registry_help();
        for needle in [
            "single-vm",
            "cluster(N)",
            "fleet",
            "diurnal",
            "squeezy-soft",
            "power-of-two",
            "slam-slo",
            "host_capacity",
            "slo.bert",
            "hosts",
            "lo..hi step N",
            "expect.p99_ms_max",
            "expect.slo_viol_max",
            "expect.completion_min",
        ] {
            assert!(help.contains(needle), "missing {needle} in:\n{help}");
        }
        // Help is sourced from the registries, so every gate is listed.
        for e in expect::ExpectKind::ALL {
            assert!(help.contains(e.key()), "missing {} in help", e.key());
        }
    }
}
