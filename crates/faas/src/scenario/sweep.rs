//! Multi-axis sweep grids over the scenario spec format.
//!
//! Any scalar spec key can carry a *list* (`keepalive_s = 10, 30, 60`,
//! `router = least-loaded, power-of-two`) or a *numeric range*
//! (`hosts = 2..8 step 2x`, `tenants = 4..16 step 4`), and the virtual
//! `hosts` axis sweeps cluster size (cluster topology) or `max_hosts`
//! (fleet topology). A [`SweepSpec`] expands deterministically into
//! named cells — `name/backend=squeezy/policy=fixed/hosts=4` — each a
//! plain single-backend [`Scenario`], all sharing the base seed so
//! every cell sees identical tenant traces (paired comparison). The
//! whole grid runs through one [`run_experiment`] call, so output is
//! byte-identical for any `--jobs`, and `expect.*` gates are evaluated
//! per cell afterwards.
//!
//! `parse(render(s)) == s` holds for every valid sweep spec, exactly
//! like the scalar format — the roundtrip property test covers list
//! and range axes and `expect.*` lines too.

use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};

use super::expect::{self, ExpectVerdict, Expectation};
use super::{compare, format, Scenario, ScenarioOutcome, ScenarioResult, Topology, WorkloadSpec};
use crate::config::BackendKind;

/// Keys that may carry a list or range axis: every scalar spec key
/// except the shape keys (`name`, `topology`, `workload`) and
/// `backend` (whose list form is the existing backend sweep, crossed
/// into the grid as the outermost dimension), plus the virtual
/// `hosts` axis. Canonical axis order is this array's order.
pub(crate) const SWEEPABLE: [&str; 21] = [
    "hosts",
    "tenants",
    "rps",
    "trough_rps",
    "period_s",
    "zipf_exponent",
    "burst_factor",
    "burst_duty",
    "duration_s",
    "concurrency",
    "keepalive_s",
    "host_capacity",
    "router",
    "policy",
    "min_hosts",
    "max_hosts",
    "boot_delay_s",
    "cooldown_s",
    "mtbf_s",
    "seed",
    "trials",
];

/// Hard ceiling on grid size — a typo'd range should fail fast, not
/// enqueue a million simulations.
pub const MAX_CELLS: usize = 512;

/// The values one axis sweeps: an explicit list or a numeric range.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValues {
    /// Comma-separated values, kept as the strings the key's parser
    /// will consume.
    List(Vec<String>),
    /// `start..end step N` (additive) or `start..end step Nx`
    /// (multiplicative), inclusive of `end` when the walk lands on it.
    Range {
        /// First value.
        start: u64,
        /// Inclusive upper bound.
        end: u64,
        /// Additive increment or multiplicative factor.
        step: u64,
        /// Whether `step` multiplies instead of adds.
        mult: bool,
    },
}

impl AxisValues {
    /// Canonical spec-file form (`a, b, c` / `lo..hi step N[x]`).
    pub fn render(&self) -> String {
        match self {
            AxisValues::List(vs) => vs.join(", "),
            AxisValues::Range {
                start,
                end,
                step,
                mult,
            } => format!("{start}..{end} step {step}{}", if *mult { "x" } else { "" }),
        }
    }

    /// The concrete value strings, in sweep order. Range walks are
    /// clamped at [`MAX_CELLS`] + 1 entries so a runaway range is
    /// caught by the grid-size check, never by memory.
    pub fn expanded(&self) -> Vec<String> {
        match self {
            AxisValues::List(vs) => vs.clone(),
            AxisValues::Range {
                start,
                end,
                step,
                mult,
            } => {
                let mut out = Vec::new();
                let mut v = *start;
                while v <= *end && out.len() <= MAX_CELLS {
                    out.push(format!("{v}"));
                    let next = if *mult {
                        v.checked_mul(*step)
                    } else {
                        v.checked_add(*step)
                    };
                    match next {
                        Some(n) => v = n,
                        None => break,
                    }
                }
                out
            }
        }
    }

    /// Structural checks (value shape, range direction/step). The
    /// key-aware checks live in [`SweepSpec::new`].
    fn validate(&self) -> Result<(), String> {
        match self {
            AxisValues::List(vs) => {
                if vs.is_empty() {
                    return Err("axis needs at least one value".to_string());
                }
                for (i, v) in vs.iter().enumerate() {
                    // Each value must survive the `a, b, c` render trip
                    // and must not be mistaken for a range on re-parse.
                    if v.is_empty()
                        || v.trim() != v
                        || v.contains(',')
                        || v.contains('\n')
                        || v.contains("..")
                    {
                        return Err(format!(
                            "axis value {v:?} must be a single trimmed token (no commas or `..`)"
                        ));
                    }
                    if vs[..i].contains(v) {
                        return Err(format!("axis value {v:?} listed twice"));
                    }
                }
                Ok(())
            }
            AxisValues::Range {
                start,
                end,
                step,
                mult,
            } => {
                if end < start {
                    return Err(format!("range end ({end}) must be ≥ start ({start})"));
                }
                if *mult {
                    if *start < 1 {
                        return Err("multiplicative range must start ≥ 1".to_string());
                    }
                    if *step < 2 {
                        return Err(format!("multiplicative step must be ≥ 2 (got {step}x)"));
                    }
                } else if *step < 1 {
                    return Err("range step must be ≥ 1".to_string());
                }
                Ok(())
            }
        }
    }
}

/// One sweep axis: a sweepable key and its values.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepAxis {
    /// The spec key being swept (must be in [`SWEEPABLE`]).
    pub key: String,
    /// The values it takes, one grid dimension.
    pub values: AxisValues,
}

/// A scenario plus its sweep axes and `expect.*` gates — what
/// [`SweepSpec::parse`] reads from a spec file. With no axes it
/// behaves exactly like the plain [`Scenario`] it wraps.
///
/// Invariant (maintained by [`SweepSpec::new`] / [`SweepSpec::parse`]):
/// `base` already carries each axis's first value, axes and gates are
/// in canonical order, and every cell validates.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// The cell-0 scenario every cell is cloned from.
    pub base: Scenario,
    /// Grid axes in canonical ([`SWEEPABLE`]) order.
    pub axes: Vec<SweepAxis>,
    /// Behavioral gates, in [`expect::ExpectKind::ALL`] order.
    pub expect: Vec<Expectation>,
}

/// One expanded grid cell: its full name and the single-backend
/// scenario that runs it.
pub struct SweepCell {
    /// `base-name/backend=k/axis=value/...` (just the base name when
    /// the spec has no axes).
    pub name: String,
    /// The concrete scenario (named after the cell).
    pub scenario: Scenario,
}

/// Applies one axis value to a scenario: the virtual `hosts` key maps
/// to cluster size or fleet `max_hosts`; everything else is the plain
/// scalar key.
fn apply_axis(s: &mut Scenario, key: &str, value: &str) -> Result<(), String> {
    if key != "hosts" {
        return Scenario::apply_key(s, key, value);
    }
    let n: usize = format::parse_int(value)?;
    match s.topology {
        Topology::Cluster(_) => s.topology = Topology::Cluster(n),
        Topology::Fleet => s.max_hosts = n,
        Topology::SingleVm => {
            return Err("`hosts` needs a cluster(N) or fleet topology".to_string())
        }
    }
    Ok(())
}

/// Whether a raw spec value spells an axis (list or range) rather
/// than a scalar.
fn is_axis_value(v: &str) -> bool {
    v.contains(',') || v.contains("..")
}

/// Parses one axis value string into [`AxisValues`].
fn parse_axis_values(v: &str) -> Result<AxisValues, String> {
    if !v.contains(',') {
        if let Some((start, rest)) = v.split_once("..") {
            let (end, step) = match rest.split_once("step") {
                Some((e, s)) => (e.trim(), Some(s.trim())),
                None => (rest.trim(), None),
            };
            let start = format::parse_u64(start.trim())?;
            let end = format::parse_u64(end)?;
            let (step, mult) = match step {
                None => (1, false),
                Some(s) => match s.strip_suffix('x') {
                    Some(n) => (format::parse_u64(n.trim())?, true),
                    None => (format::parse_u64(s)?, false),
                },
            };
            return Ok(AxisValues::Range {
                start,
                end,
                step,
                mult,
            });
        }
    }
    let mut vals = Vec::new();
    for part in v.split(',') {
        let p = part.trim();
        if p.is_empty() {
            return Err(format!("empty value in list {v:?}"));
        }
        vals.push(p.to_string());
    }
    Ok(AxisValues::List(vals))
}

impl SweepSpec {
    /// Builds and canonicalizes a sweep spec: axes are ordered and
    /// checked, each axis's first value is applied to `base` (so the
    /// stored base *is* cell 0's scenario shape), gates are validated
    /// against the topology, and every expanded cell must validate.
    pub fn new(
        base: Scenario,
        axes: Vec<SweepAxis>,
        expect: Vec<Expectation>,
    ) -> Result<SweepSpec, String> {
        let mut errs: Vec<String> = Vec::new();
        for (i, a) in axes.iter().enumerate() {
            if !SWEEPABLE.contains(&a.key.as_str()) {
                errs.push(format!(
                    "`{}` is not a sweepable axis (axes: {})",
                    a.key,
                    SWEEPABLE.join(", ")
                ));
                continue;
            }
            if axes[..i].iter().any(|b| b.key == a.key) {
                errs.push(format!("axis `{}` listed twice", a.key));
            }
            if a.key != "hosts" && matches!(&a.values, AxisValues::List(vs) if vs.len() < 2) {
                errs.push(format!(
                    "axis `{}` needs ≥ 2 values (a single value is just the scalar key)",
                    a.key
                ));
            }
            if let Err(e) = a.values.validate() {
                errs.push(format!("axis `{}`: {e}", a.key));
            }
        }
        let has = |k: &str| axes.iter().any(|a| a.key == k);
        if has("hosts") && has("max_hosts") {
            errs.push("axis `hosts` conflicts with axis `max_hosts` (pick one)".to_string());
        }
        for e in expect::validate(&expect, &base) {
            errs.push(e);
        }
        if !errs.is_empty() {
            return Err(errs.join("\n"));
        }

        let mut axes = axes;
        axes.sort_by_key(|a| SWEEPABLE.iter().position(|&k| k == a.key.as_str()));
        let mut expect = expect;
        expect.sort_by_key(|e| {
            expect::ExpectKind::ALL
                .iter()
                .position(|&k| k == e.kind)
                .expect("every kind is in ALL")
        });
        let mut base = base;
        for a in &axes {
            let first = &a.values.expanded()[0];
            apply_axis(&mut base, &a.key, first)
                .map_err(|e| format!("axis `{}`: value {first:?}: {e}", a.key))?;
        }
        let spec = SweepSpec { base, axes, expect };
        for cell in spec.try_cells()? {
            cell.scenario.validate()?;
        }
        Ok(spec)
    }

    /// Parses a spec file that may carry axes and `expect.*` gates.
    /// Plain scalar specs parse to a spec with no axes — this is a
    /// strict superset of [`Scenario::parse`].
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let mut errs: Vec<String> = Vec::new();
        let pairs = format::scan_pairs(text, &mut errs);
        let mut scalars: Vec<(usize, &str, &str)> = Vec::new();
        let mut axes: Vec<SweepAxis> = Vec::new();
        let mut expect: Vec<Expectation> = Vec::new();
        for &(ln, k, v) in &pairs {
            if k.starts_with("expect.") {
                match Expectation::parse(k, v) {
                    Ok(e) => expect.push(e),
                    Err(e) => errs.push(format!("line {ln}: {k}: {e}")),
                }
            } else if k == "hosts" || (SWEEPABLE.contains(&k) && is_axis_value(v)) {
                match parse_axis_values(v) {
                    Ok(values) => axes.push(SweepAxis {
                        key: k.to_string(),
                        values,
                    }),
                    Err(e) => errs.push(format!("line {ln}: {k}: {e}")),
                }
            } else {
                scalars.push((ln, k, v));
            }
        }
        let base = format::build_scenario(&scalars, &mut errs);
        match base {
            Some(base) if errs.is_empty() => SweepSpec::new(base, axes, expect),
            _ => Err(errs.join("\n")),
        }
    }

    /// Canonical spec-file form: the base's render with axis keys in
    /// their multi-value form, `hosts` after `topology`, and `expect.*`
    /// lines before `seed`. `parse(render(s)) == s`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.base.render().lines() {
            let key = line.split(" = ").next().unwrap_or("");
            if key == "seed" {
                for e in &self.expect {
                    out.push_str(&format!("{} = {:?}\n", e.kind.key(), e.limit));
                }
            }
            match self.axes.iter().find(|a| a.key == key) {
                Some(a) => out.push_str(&format!("{key} = {}\n", a.values.render())),
                None => {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            if key == "topology" {
                if let Some(a) = self.axes.iter().find(|a| a.key == "hosts") {
                    out.push_str(&format!("hosts = {}\n", a.values.render()));
                }
            }
        }
        out
    }

    /// The CI-scale variant: the base is capped like
    /// [`Scenario::quick`]; axes and gates are kept as declared.
    pub fn quick(&self) -> SweepSpec {
        SweepSpec {
            base: self.base.quick(),
            axes: self.axes.clone(),
            expect: self.expect.clone(),
        }
    }

    /// Expands the grid into named cells, backends outermost, then
    /// axes in canonical order (last axis fastest). Every cell keeps
    /// the base seed, so the whole grid is a paired comparison.
    ///
    /// # Panics
    ///
    /// Panics if the spec was mutated into an unexpandable state after
    /// construction — [`SweepSpec::new`] and [`SweepSpec::parse`]
    /// guarantee expansion succeeds.
    pub fn cells(&self) -> Vec<SweepCell> {
        self.try_cells().expect("constructed sweep specs expand")
    }

    fn try_cells(&self) -> Result<Vec<SweepCell>, String> {
        if self.axes.is_empty() {
            return Ok(vec![SweepCell {
                name: self.base.name.clone(),
                scenario: self.base.clone(),
            }]);
        }
        let expanded: Vec<(&str, Vec<String>)> = self
            .axes
            .iter()
            .map(|a| (a.key.as_str(), a.values.expanded()))
            .collect();
        let sizes: Vec<usize> = expanded.iter().map(|(_, v)| v.len()).collect();
        let per_backend = sizes
            .iter()
            .try_fold(1usize, |acc, &s| acc.checked_mul(s))
            .unwrap_or(usize::MAX);
        let total = per_backend.saturating_mul(self.base.backends.len().max(1));
        if total > MAX_CELLS {
            return Err(format!(
                "grid expands to {total} cells (max {MAX_CELLS}) — shrink an axis"
            ));
        }
        let mut cells = Vec::with_capacity(total);
        for &backend in &self.base.backends {
            for flat in 0..per_backend {
                let mut idx = vec![0usize; sizes.len()];
                let mut rem = flat;
                for d in (0..sizes.len()).rev() {
                    idx[d] = rem % sizes[d];
                    rem /= sizes[d];
                }
                let mut sc = self.base.clone();
                sc.backends = vec![backend];
                let mut name = format!("{}/backend={}", self.base.name, backend.key());
                for (d, (key, values)) in expanded.iter().enumerate() {
                    let v = &values[idx[d]];
                    apply_axis(&mut sc, key, v)
                        .map_err(|e| format!("axis `{key}`: value {v:?}: {e}"))?;
                    name.push_str(&format!("/{key}={v}"));
                }
                sc.name = name.clone();
                cells.push(SweepCell { name, scenario: sc });
            }
        }
        Ok(cells)
    }

    /// Runs the whole grid — every cell × backend × trial — through
    /// *one* experiment-engine call, so output is byte-identical for
    /// any `opts.jobs`, then evaluates the `expect.*` gates per cell.
    ///
    /// `opts.trials > 1` overrides every cell's own trial count.
    pub fn run(&self, opts: &ExpOpts) -> Result<GridOutcome, String> {
        let cells = self.try_cells()?;
        for c in &cells {
            c.scenario.validate()?;
        }
        let gate_errs = expect::validate(&self.expect, &self.base);
        if !gate_errs.is_empty() {
            return Err(gate_errs.join("\n"));
        }
        if let WorkloadSpec::Trace(path) = &self.base.workload {
            // Preflight the whole file (every row parsed, time order
            // checked) so a malformed trace fails here with a line
            // number instead of mid-simulation.
            workloads::validate_trace(path).map_err(|e| format!("trace {path}: {e}"))?;
        }
        let trials_of = |c: &SweepCell| {
            if opts.trials > 1 {
                opts.trials
            } else {
                c.scenario.trials
            }
        };
        // One flat unit per (cell, backend, trial): a single
        // experiment over the whole grid keeps the parallel/serial
        // byte-identity guarantee the engine already provides.
        let mut units: Vec<(usize, BackendKind, u64)> = Vec::new();
        for (ci, c) in cells.iter().enumerate() {
            for &b in &c.scenario.backends {
                for t in 0..u64::from(trials_of(c)) {
                    units.push((ci, b, t));
                }
            }
        }
        struct Exp<'a> {
            cells: &'a [SweepCell],
            units: &'a [(usize, BackendKind, u64)],
            seed: u64,
        }
        impl Experiment for Exp<'_> {
            type Point = (usize, BackendKind, u64);
            type Output = ScenarioOutcome;

            fn points(&self) -> Vec<Self::Point> {
                self.units.to_vec()
            }

            fn trials(&self) -> u32 {
                // The grid's trial dimension is flattened into the
                // point, so per-cell trial counts can differ.
                1
            }

            fn seed(&self) -> u64 {
                self.seed
            }

            fn run_trial(
                &self,
                &(ci, backend, trial): &Self::Point,
                _ctx: &mut TrialCtx,
            ) -> ScenarioOutcome {
                self.cells[ci].scenario.run_trial(backend, trial)
            }
        }
        let grouped = run_experiment(
            &Exp {
                cells: &cells,
                units: &units,
                seed: self.base.seed,
            },
            opts.effective_jobs(),
        );
        let mut flat = grouped
            .into_iter()
            .map(|mut per_point| per_point.pop().expect("one trial per unit"));
        let mut results: Vec<(String, ScenarioResult)> = Vec::with_capacity(cells.len());
        for c in &cells {
            let trials_n = trials_of(c) as usize;
            let sr_cells: Vec<(BackendKind, Vec<ScenarioOutcome>)> = c
                .scenario
                .backends
                .iter()
                .map(|&b| {
                    (
                        b,
                        (0..trials_n)
                            .map(|_| flat.next().expect("unit count matches"))
                            .collect(),
                    )
                })
                .collect();
            results.push((
                c.name.clone(),
                ScenarioResult {
                    spec: c.scenario.clone(),
                    cells: sr_cells,
                },
            ));
        }
        let verdicts = expect::evaluate(&self.expect, &results);
        Ok(GridOutcome {
            spec: self.clone(),
            cells: results,
            verdicts,
        })
    }
}

/// Everything one grid run produced: per-cell results and gate
/// verdicts.
pub struct GridOutcome {
    /// The spec that ran.
    pub spec: SweepSpec,
    /// `(cell name, result)` in expansion order.
    pub cells: Vec<(String, ScenarioResult)>,
    /// One verdict per declared gate per cell column.
    pub verdicts: Vec<ExpectVerdict>,
}

impl GridOutcome {
    /// Whether any gate failed — `repro run` exits nonzero on this.
    pub fn failed(&self) -> bool {
        self.verdicts.iter().any(|v| !v.pass)
    }

    /// FNV-1a digest over every cell result, in expansion order.
    pub fn digest(&self) -> u64 {
        let mut h = sim_core::Fnv1a::new();
        for (name, result) in &self.cells {
            h.write(name.as_bytes());
            h.write_u64(result.digest());
        }
        h.finish()
    }

    /// Renders the grid summary (or, with no axes, the plain scenario
    /// table), the baseline-delta view, and the gate verdicts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.spec.axes.is_empty() {
            out.push_str(&self.cells[0].1.render());
        } else {
            let base = &self.spec.base;
            let axes: Vec<String> = self
                .spec
                .axes
                .iter()
                .map(|a| format!("{}={}", a.key, a.values.render()))
                .collect();
            let backends: Vec<&str> = base.backends.iter().map(|b| b.key()).collect();
            out.push_str(&format!(
                "Grid {:?}: {} cells — backend={} × {} ({} workload, seed {})\n",
                base.name,
                self.cells.len(),
                backends.join(","),
                axes.join(" × "),
                base.workload.key(),
                base.seed,
            ));
            let fleet = base.topology == Topology::Fleet;
            let mut header = vec!["Cell", "Served", "p50(ms)", "p99(ms)", "Cold(%)", "GiB*s"];
            if fleet {
                header.extend(["SLOv(%)", "Lost"]);
            }
            let prefix = format!("{}/", base.name);
            let mut table = sim_core::TextTable::new(&header);
            for (name, result) in &self.cells {
                let Some((_, trials)) = result.cells.first() else {
                    continue;
                };
                use sim_core::experiment::mean_over;
                let quantile_mean = |q: f64| {
                    let qs: Vec<f64> = trials
                        .iter()
                        .map(|t| t.merged_latency().quantile(q))
                        .collect();
                    sim_core::metrics::mean(&qs)
                };
                let mut row = vec![
                    name.strip_prefix(&prefix).unwrap_or(name).to_string(),
                    format!(
                        "{:.0}/{:.0}",
                        mean_over(trials, |t| t.completed as f64),
                        mean_over(trials, |t| t.offered as f64)
                    ),
                    format!("{:.0}", quantile_mean(0.5)),
                    format!("{:.0}", quantile_mean(0.99)),
                    format!("{:.1}", 100.0 * mean_over(trials, |t| t.cold_ratio())),
                    format!("{:.1}", mean_over(trials, |t| t.gib_seconds)),
                ];
                if fleet {
                    row.push(format!(
                        "{:.1}",
                        100.0
                            * mean_over(trials, |t| t
                                .fleet
                                .as_ref()
                                .map(|f| f.slo_violation_rate())
                                .unwrap_or(0.0))
                    ));
                    row.push(format!(
                        "{:.0}",
                        mean_over(trials, |t| t
                            .fleet
                            .as_ref()
                            .map(|f| f.lost as f64)
                            .unwrap_or(0.0))
                    ));
                }
                table.row(row);
            }
            out.push_str(&table.render());
            if self.cells.len() > 1 {
                out.push_str(&compare::render_grid_baseline(&self.cells, &prefix));
            }
        }
        if !self.spec.expect.is_empty() {
            out.push_str(&expect::render_verdicts(&self.verdicts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::RouterKind;
    use crate::fleet::PolicyKind;
    use workloads::WorkloadKind;

    fn fleet_grid_text() -> String {
        "name = grid\ntopology = fleet\nworkload = diurnal\nbackend = squeezy\n\
         policy = fixed, slam-slo\nhosts = 2..8 step 2x\nmin_hosts = 1\n\
         expect.p99_ms_max = 900\nexpect.completion_min = 50\n"
            .to_string()
    }

    #[test]
    fn ranges_expand_inclusively() {
        let mult = AxisValues::Range {
            start: 2,
            end: 8,
            step: 2,
            mult: true,
        };
        assert_eq!(mult.expanded(), ["2", "4", "8"]);
        let add = AxisValues::Range {
            start: 10,
            end: 31,
            step: 10,
            mult: false,
        };
        assert_eq!(
            add.expanded(),
            ["10", "20", "30"],
            "end is a bound, not a member"
        );
        assert_eq!(
            parse_axis_values("4..64 step 2x").unwrap(),
            AxisValues::Range {
                start: 4,
                end: 64,
                step: 2,
                mult: true
            }
        );
        assert_eq!(
            parse_axis_values("10..60 step 25").unwrap(),
            AxisValues::Range {
                start: 10,
                end: 60,
                step: 25,
                mult: false
            }
        );
        assert_eq!(
            parse_axis_values("10, 30, 60").unwrap(),
            AxisValues::List(vec!["10".into(), "30".into(), "60".into()])
        );
    }

    #[test]
    fn grid_expansion_pins_count_names_and_seeds() {
        let spec = SweepSpec::parse(&fleet_grid_text()).expect("parses");
        let cells = spec.cells();
        assert_eq!(cells.len(), 6, "2 policies × 3 host counts");
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        // hosts is canonically the first axis, last axis fastest.
        assert_eq!(
            names,
            [
                "grid/backend=squeezy/hosts=2/policy=fixed",
                "grid/backend=squeezy/hosts=2/policy=slam-slo",
                "grid/backend=squeezy/hosts=4/policy=fixed",
                "grid/backend=squeezy/hosts=4/policy=slam-slo",
                "grid/backend=squeezy/hosts=8/policy=fixed",
                "grid/backend=squeezy/hosts=8/policy=slam-slo",
            ]
        );
        for c in &cells {
            assert_eq!(c.scenario.seed, spec.base.seed, "paired comparison");
            assert_eq!(c.scenario.backends, [BackendKind::Squeezy]);
            assert_eq!(c.scenario.name, c.name);
        }
        assert_eq!(
            cells[4].scenario.max_hosts, 8,
            "hosts maps to fleet max_hosts"
        );
        assert_eq!(cells[1].scenario.policy, PolicyKind::SlamSlo);
        // The stored base is cell 0's shape.
        assert_eq!(spec.base.max_hosts, 2);
        assert_eq!(spec.base.policy, PolicyKind::Fixed);
    }

    #[test]
    fn hosts_axis_resizes_clusters() {
        let text = "name = c\ntopology = cluster(2)\nworkload = zipf-cluster\n\
                    hosts = 2, 4\nrouter = least-loaded\n";
        let spec = SweepSpec::parse(text).expect("parses");
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].scenario.topology, Topology::Cluster(4));
        let err =
            SweepSpec::parse("name = s\ntopology = single-vm\nworkload = memhog\nhosts = 2, 4\n")
                .unwrap_err();
        assert!(err.contains("cluster(N) or fleet"), "{err}");
    }

    #[test]
    fn sweep_render_parse_round_trips() {
        let spec = SweepSpec::parse(&fleet_grid_text()).expect("parses");
        let text = spec.render();
        let back = SweepSpec::parse(&text).expect("round-trip parses");
        assert_eq!(back, spec);
        // A plain scalar spec is the degenerate grid.
        let scalar = Scenario::new("plain", Topology::Fleet, WorkloadKind::Diurnal);
        let spec = SweepSpec::parse(&scalar.render()).expect("parses");
        assert!(spec.axes.is_empty() && spec.expect.is_empty());
        assert_eq!(spec.base, scalar);
        assert_eq!(spec.render(), scalar.render());
    }

    #[test]
    fn axis_lists_sweep_routers_and_floats() {
        let text = "name = r\ntopology = cluster(2)\nworkload = zipf-cluster\n\
                    router = least-loaded, power-of-two\nkeepalive_s = 10, 30\n";
        let spec = SweepSpec::parse(text).expect("parses");
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.router, RouterKind::LeastLoaded);
        assert_eq!(cells[3].scenario.router, RouterKind::PowerOfTwo);
        assert_eq!(
            cells[1].scenario.keepalive_s, 10.0,
            "router is the fast axis"
        );
        assert_eq!(cells[2].scenario.keepalive_s, 30.0);
        assert_eq!(
            cells[3].name, "r/backend=squeezy/keepalive_s=30/router=power-of-two",
            "axes order canonically by key, not by line order"
        );
    }

    #[test]
    fn sweep_errors_are_specific() {
        let base = "name = x\ntopology = fleet\nworkload = diurnal\n";
        let err = SweepSpec::parse(&format!("{base}rps = 4, 4\n")).unwrap_err();
        assert!(err.contains("listed twice"), "{err}");
        let err = SweepSpec::parse(&format!("{base}hosts = 8..2\n")).unwrap_err();
        assert!(err.contains("must be ≥ start"), "{err}");
        let err = SweepSpec::parse(&format!("{base}hosts = 2..8 step 1x\n")).unwrap_err();
        assert!(err.contains("≥ 2"), "{err}");
        let err = SweepSpec::parse(&format!("{base}router = ring, mesh\n")).unwrap_err();
        assert!(err.contains("unknown router"), "{err}");
        let err = SweepSpec::parse(&format!("{base}expect.p99_max = 5\n")).unwrap_err();
        assert!(err.contains("did you mean \"expect.p99_ms_max\""), "{err}");
        let err = SweepSpec::parse(&format!("{base}expect.p99_ms_max = -1\n")).unwrap_err();
        assert!(err.contains("≥ 0"), "{err}");
        let err = SweepSpec::parse(
            "name = x\ntopology = cluster(2)\nworkload = zipf-cluster\nexpect.slo_viol_max = 5\n",
        )
        .unwrap_err();
        assert!(err.contains("needs the fleet topology"), "{err}");
        let err = SweepSpec::parse(&format!("{base}seed = 1..100000\n")).unwrap_err();
        assert!(err.contains("shrink an axis"), "{err}");
        let err = SweepSpec::parse(&format!("{base}hosts = 2, 4\nmax_hosts = 2, 4\n")).unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
    }

    #[test]
    fn invalid_cells_fail_at_parse_time() {
        // hosts above the stream-tag cap is rejected per cell, up front.
        let err = SweepSpec::parse(
            "name = x\ntopology = fleet\nworkload = diurnal\nhosts = 16..64 step 2x\n",
        )
        .unwrap_err();
        assert!(err.contains("max_hosts must be ≤ 32"), "{err}");
    }

    #[test]
    fn quick_caps_the_base_and_keeps_the_grid() {
        let spec = SweepSpec::parse(&fleet_grid_text()).expect("parses");
        let quick = spec.quick();
        assert_eq!(quick.base.trials, 1);
        assert!(quick.base.params.duration_s <= 120.0);
        assert_eq!(quick.axes, spec.axes);
        assert_eq!(quick.expect, spec.expect);
    }
}
