//! Behavioral `expect.*` gates: per-cell assertions a spec file makes
//! about its own results.
//!
//! A spec line like `expect.p99_ms_max = 250` turns a scenario (or
//! every cell of a sweep grid) into a pass/fail check: the limit is
//! validated up front with the rest of the spec, the actual value is
//! the mean over the cell's trials, and `repro run` exits nonzero when
//! any cell fails — so CI gates on *behavior*, not just byte-identity.
//! Each gate is a registry entry ([`ExpectKind::ALL`]), so
//! `repro scenarios` help and the parser can never drift apart.

use sim_core::experiment::mean_over;
use sim_core::{registry, TextTable};

use super::{Scenario, ScenarioOutcome, ScenarioResult, Topology};

/// Every behavioral gate a spec may declare. All are ceilings
/// (`actual ≤ limit`) except [`ExpectKind::CompletionMin`], a floor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectKind {
    /// Mean-over-trials p50 latency, milliseconds.
    P50Max,
    /// Mean-over-trials p99 latency, milliseconds.
    P99Max,
    /// Cold-start share of all starts, percent.
    ColdRateMax,
    /// Completed/offered, percent — a floor, not a ceiling.
    CompletionMin,
    /// Integrated memory footprint, GiB·s.
    GibSecondsMax,
    /// SLO-violation share of tracked completions, percent (fleet only).
    SloViolMax,
    /// Requests lost to crashes and unservable drops (fleet only).
    LostMax,
}

impl ExpectKind {
    /// Every gate, in canonical render order.
    pub const ALL: [ExpectKind; 7] = [
        ExpectKind::P50Max,
        ExpectKind::P99Max,
        ExpectKind::ColdRateMax,
        ExpectKind::CompletionMin,
        ExpectKind::GibSecondsMax,
        ExpectKind::SloViolMax,
        ExpectKind::LostMax,
    ];

    /// Spec key, `expect.` prefix included.
    pub fn key(self) -> &'static str {
        match self {
            ExpectKind::P50Max => "expect.p50_ms_max",
            ExpectKind::P99Max => "expect.p99_ms_max",
            ExpectKind::ColdRateMax => "expect.cold_rate_max",
            ExpectKind::CompletionMin => "expect.completion_min",
            ExpectKind::GibSecondsMax => "expect.gib_s_max",
            ExpectKind::SloViolMax => "expect.slo_viol_max",
            ExpectKind::LostMax => "expect.lost_max",
        }
    }

    /// Parses a gate key; `Err` lists every valid gate (with a
    /// did-you-mean hint on near misses).
    pub fn from_key(key: &str) -> Result<ExpectKind, String> {
        registry::lookup("expectation", &Self::ALL, Self::key, key)
    }

    /// One-line help text for `repro scenarios`.
    pub fn describe(self) -> &'static str {
        match self {
            ExpectKind::P50Max => "mean-over-trials p50 latency ≤ limit (ms)",
            ExpectKind::P99Max => "mean-over-trials p99 latency ≤ limit (ms)",
            ExpectKind::ColdRateMax => "cold-start share ≤ limit (%)",
            ExpectKind::CompletionMin => "completed/offered ≥ limit (%)",
            ExpectKind::GibSecondsMax => "integrated memory footprint ≤ limit (GiB·s)",
            ExpectKind::SloViolMax => "SLO-violation share ≤ limit (%; fleet only)",
            ExpectKind::LostMax => "requests lost to crashes ≤ limit (fleet only)",
        }
    }

    /// Gates over control-plane metrics only a fleet run produces.
    pub fn fleet_only(self) -> bool {
        matches!(self, ExpectKind::SloViolMax | ExpectKind::LostMax)
    }

    /// True when the gate is a floor (`actual ≥ limit`).
    pub fn is_min(self) -> bool {
        matches!(self, ExpectKind::CompletionMin)
    }

    /// The actual value of this gate's metric over one cell's trials
    /// (latencies from per-trial merged histograms, shares in percent).
    fn actual(self, trials: &[ScenarioOutcome]) -> f64 {
        let quantile_mean = |q: f64| {
            let qs: Vec<f64> = trials
                .iter()
                .map(|t| t.merged_latency().quantile(q))
                .collect();
            sim_core::metrics::mean(&qs)
        };
        match self {
            ExpectKind::P50Max => quantile_mean(0.5),
            ExpectKind::P99Max => quantile_mean(0.99),
            ExpectKind::ColdRateMax => 100.0 * mean_over(trials, |t| t.cold_ratio()),
            ExpectKind::CompletionMin => {
                100.0 * mean_over(trials, |t| t.completed as f64 / t.offered.max(1) as f64)
            }
            ExpectKind::GibSecondsMax => mean_over(trials, |t| t.gib_seconds),
            ExpectKind::SloViolMax => {
                100.0
                    * mean_over(trials, |t| {
                        t.fleet
                            .as_ref()
                            .map(|f| f.slo_violation_rate())
                            .unwrap_or(0.0)
                    })
            }
            ExpectKind::LostMax => mean_over(trials, |t| {
                t.fleet.as_ref().map(|f| f.lost as f64).unwrap_or(0.0)
            }),
        }
    }
}

/// One declared gate: a kind and its limit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Expectation {
    /// Which metric is gated.
    pub kind: ExpectKind,
    /// The threshold (ceiling, or floor for `*_min` gates).
    pub limit: f64,
}

impl Expectation {
    /// Parses one `expect.* = limit` spec pair.
    pub(crate) fn parse(key: &str, value: &str) -> Result<Expectation, String> {
        let kind = ExpectKind::from_key(key)?;
        let limit: f64 = value
            .parse()
            .map_err(|_| format!("expected a number, got {value:?}"))?;
        Ok(Expectation { kind, limit })
    }
}

/// Validates a gate list against its base scenario; one error string
/// per problem.
pub(crate) fn validate(expect: &[Expectation], base: &Scenario) -> Vec<String> {
    let mut errs = Vec::new();
    for (i, e) in expect.iter().enumerate() {
        if !(e.limit.is_finite() && e.limit >= 0.0) {
            errs.push(format!(
                "{} must be a finite number ≥ 0 (got {})",
                e.kind.key(),
                e.limit
            ));
        }
        if expect[..i].iter().any(|p| p.kind == e.kind) {
            errs.push(format!("{} listed twice", e.kind.key()));
        }
        if e.kind.fleet_only() && base.topology != Topology::Fleet {
            errs.push(format!(
                "{} needs the fleet topology (control-plane metric)",
                e.kind.key()
            ));
        }
    }
    errs
}

/// One evaluated gate on one cell.
#[derive(Clone, Debug)]
pub struct ExpectVerdict {
    /// Cell label (backend-qualified when the cell swept backends).
    pub cell: String,
    /// Which gate was checked.
    pub kind: ExpectKind,
    /// The declared threshold.
    pub limit: f64,
    /// The measured trial-mean value.
    pub actual: f64,
    /// Whether the gate held.
    pub pass: bool,
}

/// Evaluates every gate against every `(cell, backend)` column.
pub(crate) fn evaluate(
    expect: &[Expectation],
    cells: &[(String, ScenarioResult)],
) -> Vec<ExpectVerdict> {
    let mut out = Vec::new();
    for (name, result) in cells {
        for (backend, trials) in &result.cells {
            let label = if result.cells.len() > 1 {
                format!("{name}/backend={}", backend.key())
            } else {
                name.clone()
            };
            for e in expect {
                let actual = e.kind.actual(trials);
                let pass = if e.kind.is_min() {
                    actual >= e.limit
                } else {
                    actual <= e.limit
                };
                out.push(ExpectVerdict {
                    cell: label.clone(),
                    kind: e.kind,
                    limit: e.limit,
                    actual,
                    pass,
                });
            }
        }
    }
    out
}

/// Renders the per-cell verdict table plus a one-line summary.
pub fn render_verdicts(verdicts: &[ExpectVerdict]) -> String {
    if verdicts.is_empty() {
        return String::new();
    }
    let mut table = TextTable::new(&["Cell", "Expectation", "Limit", "Actual", "Verdict"]);
    for v in verdicts {
        table.row(vec![
            v.cell.clone(),
            v.kind.key().to_string(),
            format!("{} {:.2}", if v.kind.is_min() { "≥" } else { "≤" }, v.limit),
            format!("{:.2}", v.actual),
            if v.pass { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    let failed = verdicts.iter().filter(|v| !v.pass).count();
    let mut out = String::from("Expectations:\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "expectations: {} passed, {} failed\n",
        verdicts.len() - failed,
        failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    #[test]
    fn keys_round_trip_and_hint_on_typos() {
        for k in ExpectKind::ALL {
            assert_eq!(ExpectKind::from_key(k.key()), Ok(k));
        }
        let err = ExpectKind::from_key("expect.p99_max").unwrap_err();
        assert!(err.contains("did you mean \"expect.p99_ms_max\""), "{err}");
    }

    #[test]
    fn validate_rejects_bad_limits_dups_and_misplaced_fleet_gates() {
        let fleet = Scenario::new("f", Topology::Fleet, WorkloadKind::Diurnal);
        let single = Scenario::new("s", Topology::SingleVm, WorkloadKind::Memhog);
        let gate = |kind, limit| Expectation { kind, limit };
        assert!(validate(&[gate(ExpectKind::SloViolMax, 5.0)], &fleet).is_empty());
        let errs = validate(&[gate(ExpectKind::SloViolMax, 5.0)], &single);
        assert!(errs[0].contains("needs the fleet topology"), "{errs:?}");
        let errs = validate(&[gate(ExpectKind::P99Max, f64::NAN)], &fleet);
        assert!(errs[0].contains("finite"), "{errs:?}");
        let errs = validate(
            &[gate(ExpectKind::P99Max, 1.0), gate(ExpectKind::P99Max, 2.0)],
            &fleet,
        );
        assert!(errs[0].contains("listed twice"), "{errs:?}");
    }

    #[test]
    fn completion_is_a_floor_the_rest_are_ceilings() {
        assert!(ExpectKind::CompletionMin.is_min());
        for k in ExpectKind::ALL {
            if k != ExpectKind::CompletionMin {
                assert!(!k.is_min(), "{:?}", k.key());
            }
        }
    }
}
