//! Significance-aware comparison between scenario results.
//!
//! `repro run --compare a.scn b.scn` (and the within-grid baseline
//! table) answers "did B actually regress over A, or is that noise?"
//! with inference over per-trial samples instead of eyeballed means:
//! Welch's unequal-variance t-test per metric, a Student-t confidence
//! interval on the difference, and a seeded percentile bootstrap as
//! the distribution-free second opinion. Everything is deterministic
//! — the bootstrap resamples through a [`DetRng`] stream derived from
//! the baseline's seed — so compare tables are byte-identical across
//! runs and job counts. With single-trial runs there is no variance to
//! test against; the table still shows the deltas and says so.

use sim_core::stats::{bootstrap_diff_ci, mean, welch, welch_ci, Welch};
use sim_core::{DetRng, TextTable};

use super::{ScenarioOutcome, ScenarioResult};
use crate::config::BackendKind;

/// Two-sided significance level of the `Verdict` column.
pub const ALPHA: f64 = 0.05;

/// Confidence of the reported intervals.
const CONF: f64 = 0.95;

/// Bootstrap resamples per metric.
const BOOT_ITERS: usize = 1000;

/// Derivation tag of the bootstrap resampling stream — outside every
/// simulation stream tag, so comparison never perturbs results.
const BOOT_STREAM: u64 = 0xB007;

/// Metrics compared per backend: name, higher-is-worse, per-trial
/// samples. Fleet metrics appear only when every trial carries them.
fn metric_samples(trials: &[ScenarioOutcome]) -> Vec<(&'static str, bool, Vec<f64>)> {
    let quantiles = |q: f64| -> Vec<f64> {
        trials
            .iter()
            .map(|t| t.merged_latency().quantile(q))
            .collect()
    };
    let mut out = vec![
        (
            "served",
            false,
            trials
                .iter()
                .map(|t| t.completed as f64)
                .collect::<Vec<f64>>(),
        ),
        ("p50_ms", true, quantiles(0.5)),
        ("p99_ms", true, quantiles(0.99)),
        (
            "cold_pct",
            true,
            trials.iter().map(|t| 100.0 * t.cold_ratio()).collect(),
        ),
        (
            "gib_s",
            true,
            trials.iter().map(|t| t.gib_seconds).collect(),
        ),
    ];
    if trials.iter().all(|t| t.fleet.is_some()) {
        let f = |get: fn(&super::FleetStats) -> f64| -> Vec<f64> {
            trials
                .iter()
                .map(|t| get(t.fleet.as_ref().expect("checked above")))
                .collect()
        };
        out.push(("slo_viol_pct", true, f(|s| 100.0 * s.slo_violation_rate())));
        out.push(("host_hours", true, f(|s| s.host_hours)));
        out.push(("lost", true, f(|s| s.lost as f64)));
    }
    out
}

/// One metric's A-vs-B difference with its inference.
pub struct MetricDiff {
    /// Metric name (`p99_ms`, `cold_pct`, ...).
    pub metric: &'static str,
    /// Whether an increase is a regression (false for `served`).
    pub higher_is_worse: bool,
    /// Trial mean on side A (the baseline).
    pub mean_a: f64,
    /// Trial mean on side B (the candidate).
    pub mean_b: f64,
    /// Welch's test over the per-trial samples; `None` below 2 trials
    /// a side.
    pub welch: Option<Welch>,
    /// 95% Student-t confidence interval of `mean_b - mean_a`.
    pub ci: Option<(f64, f64)>,
    /// 95% seeded percentile-bootstrap interval of the same difference.
    pub boot_ci: Option<(f64, f64)>,
}

impl MetricDiff {
    /// `mean_b - mean_a`.
    pub fn diff(&self) -> f64 {
        self.mean_b - self.mean_a
    }

    /// Relative difference in percent of the baseline mean (infinite
    /// when the baseline is zero and B is not).
    pub fn pct(&self) -> f64 {
        if self.mean_a == 0.0 && self.diff() == 0.0 {
            0.0
        } else {
            100.0 * self.diff() / self.mean_a.abs()
        }
    }

    /// Whether Welch's test rejects "no difference" at [`ALPHA`].
    pub fn significant(&self) -> bool {
        self.welch.map(|w| w.p < ALPHA).unwrap_or(false)
    }

    /// Table verdict: `regressed*` / `improved*` when significant,
    /// `~` when not, `n/a` when trials are too few to test.
    pub fn verdict(&self) -> &'static str {
        if !self.significant() {
            return if self.welch.is_none() { "n/a" } else { "~" };
        }
        if (self.diff() > 0.0) == self.higher_is_worse {
            "regressed*"
        } else {
            "improved*"
        }
    }
}

/// The full A-vs-B diff: one [`MetricDiff`] list per backend present
/// on both sides.
pub struct CompareReport {
    /// Baseline label (spec name or file).
    pub label_a: String,
    /// Candidate label.
    pub label_b: String,
    /// Trials per cell on side A.
    pub trials_a: usize,
    /// Trials per cell on side B.
    pub trials_b: usize,
    /// Per-backend metric diffs, in side A's backend order.
    pub rows: Vec<(BackendKind, Vec<MetricDiff>)>,
}

/// Diffs two metric-sample sets (positionally matched by name).
fn diff_samples(
    sa: &[(&'static str, bool, Vec<f64>)],
    sb: &[(&'static str, bool, Vec<f64>)],
    rng: &DetRng,
) -> Vec<MetricDiff> {
    let mut diffs = Vec::new();
    for (mi, &(name, higher_is_worse, ref xs)) in sa.iter().enumerate() {
        let Some((_, _, ys)) = sb.iter().find(|&&(n, _, _)| n == name) else {
            continue;
        };
        let w = welch(xs, ys);
        let ci = w.as_ref().map(|w| welch_ci(w, CONF));
        let boot_ci = if xs.len() >= 2 && ys.len() >= 2 {
            bootstrap_diff_ci(xs, ys, BOOT_ITERS, CONF, &mut rng.derive(mi as u64))
        } else {
            None
        };
        diffs.push(MetricDiff {
            metric: name,
            higher_is_worse,
            mean_a: mean(xs),
            mean_b: mean(ys),
            welch: w,
            ci,
            boot_ci,
        });
    }
    diffs
}

/// Compares two scenario results metric-by-metric, matching backends
/// by key (backends on only one side are skipped).
pub fn compare_results(
    label_a: &str,
    a: &ScenarioResult,
    label_b: &str,
    b: &ScenarioResult,
) -> CompareReport {
    let mut rows = Vec::new();
    for (bi, (backend, trials_a)) in a.cells.iter().enumerate() {
        let Some((_, trials_b)) = b.cells.iter().find(|(bk, _)| bk == backend) else {
            continue;
        };
        let rng = DetRng::new(a.spec.seed)
            .derive(BOOT_STREAM)
            .derive(bi as u64);
        let diffs = diff_samples(&metric_samples(trials_a), &metric_samples(trials_b), &rng);
        rows.push((*backend, diffs));
    }
    CompareReport {
        label_a: label_a.to_string(),
        label_b: label_b.to_string(),
        trials_a: a.cells.first().map(|(_, t)| t.len()).unwrap_or(0),
        trials_b: b.cells.first().map(|(_, t)| t.len()).unwrap_or(0),
        rows,
    }
}

fn fmt(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn fmt_pct(v: f64) -> String {
    if v.is_finite() {
        format!("{v:+.1}%")
    } else {
        "—".to_string()
    }
}

impl CompareReport {
    /// Renders the diff table with the significance column.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Compare: A = {} ({} trial(s)) vs B = {} ({} trial(s)), α = {ALPHA}\n",
            self.label_a, self.trials_a, self.label_b, self.trials_b,
        );
        if self.rows.is_empty() {
            out.push_str("no backend appears on both sides — nothing to compare\n");
            return out;
        }
        let mut table = TextTable::new(&[
            "Backend", "Metric", "A", "B", "Δ", "Δ%", "CI95(Δ)", "p", "Verdict",
        ]);
        for (backend, diffs) in &self.rows {
            for d in diffs {
                table.row(vec![
                    backend.key().to_string(),
                    d.metric.to_string(),
                    fmt(d.mean_a),
                    fmt(d.mean_b),
                    fmt(d.diff()),
                    fmt_pct(d.pct()),
                    d.ci.map(|(lo, hi)| format!("[{}, {}]", fmt(lo), fmt(hi)))
                        .unwrap_or_else(|| "—".to_string()),
                    d.welch
                        .map(|w| format!("{:.3}", w.p))
                        .unwrap_or_else(|| "—".to_string()),
                    d.verdict().to_string(),
                ]);
            }
        }
        out.push_str(&table.render());
        if self.trials_a < 2 || self.trials_b < 2 {
            out.push_str("significance needs ≥ 2 trials per side (rerun with --trials N)\n");
        }
        out
    }
}

/// Compact within-grid view: every cell's key metrics as percent
/// deltas against the first cell, `*`-marked when Welch says the
/// difference is significant at [`ALPHA`]. `prefix` is stripped from
/// cell labels for readability.
pub(crate) fn render_grid_baseline(cells: &[(String, ScenarioResult)], prefix: &str) -> String {
    let Some(((base_name, base), rest)) = cells.split_first() else {
        return String::new();
    };
    if rest.is_empty() || base.cells.is_empty() {
        return String::new();
    }
    let short = |name: &str| name.strip_prefix(prefix).unwrap_or(name).to_string();
    let base_samples = metric_samples(&base.cells[0].1);
    const SHOW: [&str; 4] = ["p99_ms", "cold_pct", "gib_s", "slo_viol_pct"];
    let shown: Vec<&str> = base_samples
        .iter()
        .map(|&(n, _, _)| n)
        .filter(|n| SHOW.contains(n))
        .collect();
    let mut header = vec!["Cell"];
    header.extend(&shown);
    let mut table = TextTable::new(&header);
    let rng = DetRng::new(base.spec.seed).derive(BOOT_STREAM);
    for (ci, (name, result)) in rest.iter().enumerate() {
        let Some((_, trials)) = result.cells.first() else {
            continue;
        };
        let diffs = diff_samples(
            &base_samples,
            &metric_samples(trials),
            &rng.derive(ci as u64),
        );
        let mut row = vec![short(name)];
        for n in &shown {
            row.push(match diffs.iter().find(|d| d.metric == *n) {
                Some(d) => format!(
                    "{}{}",
                    fmt_pct(d.pct()),
                    if d.significant() { "*" } else { "" }
                ),
                None => "—".to_string(),
            });
        }
        table.row(row);
    }
    format!(
        "Deltas vs baseline cell {:?} (Welch-significant at α = {ALPHA} marked *):\n{}",
        short(base_name),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff(mean_a: f64, mean_b: f64, welch: Option<Welch>, higher_is_worse: bool) -> MetricDiff {
        MetricDiff {
            metric: "m",
            higher_is_worse,
            mean_a,
            mean_b,
            welch,
            ci: None,
            boot_ci: None,
        }
    }

    #[test]
    fn verdicts_follow_direction_and_significance() {
        let sig = welch(&[1.0, 1.1, 0.9], &[5.0, 5.1, 4.9]);
        assert!(sig.unwrap().p < ALPHA, "fixture is significant");
        assert_eq!(diff(1.0, 5.0, sig, true).verdict(), "regressed*");
        assert_eq!(diff(1.0, 5.0, sig, false).verdict(), "improved*");
        let flat = welch(&[1.0, 2.0, 3.0], &[1.1, 2.1, 2.9]);
        assert_eq!(diff(2.0, 2.03, flat, true).verdict(), "~");
        assert_eq!(diff(1.0, 5.0, None, true).verdict(), "n/a");
    }

    #[test]
    fn pct_handles_zero_baselines() {
        assert_eq!(diff(0.0, 0.0, None, true).pct(), 0.0);
        assert!(diff(0.0, 3.0, None, true).pct().is_infinite());
        assert_eq!(diff(4.0, 5.0, None, true).pct(), 25.0);
    }
}
