//! Hybrid horizontal + vertical scaling (§7 "Maximum concurrency", \[56\]).
//!
//! The concurrency factor N caps how many instances one N:1 VM can
//! host. When a burst needs more, the runtime has three options:
//!
//! * **Vertical only** — scale within the VM (plug Squeezy partitions);
//!   starts beyond N are simply not served by this VM.
//! * **Horizontal (1:1)** — boot a dedicated microVM per instance:
//!   unlimited capacity, but every start pays the boot delay and
//!   replicates guest OS + dependencies.
//! * **Hybrid** — fill the running VM vertically; when it reaches N,
//!   *clone* it (Snowflock-style CoW fork, \[56\]) and keep scaling
//!   vertically in the clone. The clone inherits the parent's page
//!   cache, so instances in it still find dependencies warm.
//!
//! [`absorb_burst`] runs one burst of instance starts through the real
//! memory stack under each strategy and reports latency, served count,
//! host footprint and VM count — who wins, and where the crossovers
//! fall, as burst size sweeps past N.

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{align_up_to_block, MIB};
use sim_core::{CostModel, SimDuration};
use squeezy::{SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig, VmmError};
use workloads::FunctionKind;

use crate::microvm::MICROVM_OS_BYTES;

/// Scale-up strategy under comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleStrategy {
    /// Vertical only: one N:1 VM, starts beyond N are unserved.
    Vertical,
    /// Horizontal only: one microVM per instance (the 1:1 model).
    Horizontal,
    /// Vertical until N, then clone the VM and continue (hybrid, \[56\]).
    Hybrid,
}

impl ScaleStrategy {
    /// All strategies in presentation order.
    pub const ALL: [ScaleStrategy; 3] = [
        ScaleStrategy::Vertical,
        ScaleStrategy::Horizontal,
        ScaleStrategy::Hybrid,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleStrategy::Vertical => "vertical",
            ScaleStrategy::Horizontal => "horizontal",
            ScaleStrategy::Hybrid => "hybrid",
        }
    }
}

/// Outcome of absorbing one burst.
#[derive(Clone, Copy, Debug)]
pub struct BurstOutcome {
    /// Strategy used.
    pub strategy: ScaleStrategy,
    /// Burst size requested.
    pub burst: u32,
    /// Instances actually started.
    pub served: u32,
    /// Mean start latency across served instances (ms).
    pub mean_start_ms: f64,
    /// Worst single-instance start latency (ms).
    pub max_start_ms: f64,
    /// Total host memory in use after absorption (MiB).
    pub host_mib: f64,
    /// Number of VMs running after absorption.
    pub vms: u32,
}

/// One running N:1 VM in the hybrid cluster.
struct NVm {
    vm: Vm,
    sq: SqueezyManager,
    instances: u32,
}

/// Absorbs a burst of `burst` instance starts of `kind` with per-VM
/// concurrency factor `n_per_vm`, under `strategy`.
///
/// The first N:1 VM starts warm (caches populated by prior activity),
/// mirroring the steady state an autoscaler sees at burst arrival.
pub fn absorb_burst(
    kind: FunctionKind,
    strategy: ScaleStrategy,
    n_per_vm: u32,
    burst: u32,
    cost: &CostModel,
) -> Result<BurstOutcome, VmmError> {
    let mut host = HostMemory::new(u64::MAX / 2);
    let mut latencies: Vec<SimDuration> = Vec::new();
    let mut served = 0u32;
    let mut vms = 0u32;

    match strategy {
        ScaleStrategy::Horizontal => {
            // Each instance boots its own microVM with a cold cache.
            for _ in 0..burst {
                let (lat, _) = one_to_one_start(kind, &mut host, cost)?;
                latencies.push(lat);
                served += 1;
                vms += 1;
            }
        }
        ScaleStrategy::Vertical | ScaleStrategy::Hybrid => {
            let mut cluster: Vec<NVm> = vec![boot_n_vm(kind, n_per_vm, true, &mut host, cost)?];
            vms = 1;
            for _ in 0..burst {
                // Find (or make) a VM with a free partition slot.
                let slot = cluster.iter().position(|v| v.instances < n_per_vm);
                let (idx, clone_delay) = match slot {
                    Some(i) => (i, SimDuration::ZERO),
                    None if strategy == ScaleStrategy::Hybrid => {
                        // Clone the newest VM: CoW fork, caches inherited.
                        let nvm = boot_n_vm(kind, n_per_vm, true, &mut host, cost)?;
                        cluster.push(nvm);
                        vms += 1;
                        (
                            cluster.len() - 1,
                            SimDuration::nanos(cost.vm_clone_fixed_ns),
                        )
                    }
                    None => break, // Vertical: out of capacity.
                };
                let lat = vertical_start(kind, &mut cluster[idx], &mut host, cost)?;
                latencies.push(lat + clone_delay);
                served += 1;
            }
        }
    }

    let total_ms: f64 = latencies.iter().map(|l| l.as_millis_f64()).sum();
    let max_ms = latencies
        .iter()
        .map(|l| l.as_millis_f64())
        .fold(0.0, f64::max);
    Ok(BurstOutcome {
        strategy,
        burst,
        served,
        mean_start_ms: if served > 0 {
            total_ms / served as f64
        } else {
            0.0
        },
        max_start_ms: max_ms,
        host_mib: host.used_bytes() as f64 / MIB as f64,
        vms,
    })
}

/// Boots one N:1 VM sized for `n` partitions. With `warm`, a throwaway
/// instance populates the shared caches first (clone inheritance /
/// steady-state warmth).
fn boot_n_vm(
    kind: FunctionKind,
    n: u32,
    warm: bool,
    host: &mut HostMemory,
    cost: &CostModel,
) -> Result<NVm, VmmError> {
    let profile = kind.profile();
    let part_bytes = align_up_to_block(profile.memory_limit.bytes());
    let shared_bytes = align_up_to_block(profile.deps_bytes + profile.rootfs_bytes + 64 * MIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 1 << 30,
                hotplug_bytes: shared_bytes + part_bytes * n as u64,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: n as f64,
        },
        host,
    )?;
    let sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: part_bytes,
            shared_bytes,
            concurrency: n,
        },
        cost,
    )
    .expect("region sized for the layout");
    if warm {
        vm.touch_file(host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
        vm.touch_file(host, kind.deps_file(), profile.deps_pages(), cost)?;
    }
    Ok(NVm {
        vm,
        sq,
        instances: 0,
    })
}

/// Starts one instance vertically in `nvm`: plug partition, attach,
/// container + function init against (possibly) warm caches.
fn vertical_start(
    kind: FunctionKind,
    nvm: &mut NVm,
    host: &mut HostMemory,
    cost: &CostModel,
) -> Result<SimDuration, VmmError> {
    let profile = kind.profile();
    let (_, plug) = nvm
        .sq
        .plug_partition(&mut nvm.vm, cost)
        .expect("capacity checked by caller");
    let pid = nvm.vm.guest.spawn_process(AllocPolicy::MovableDefault);
    nvm.sq.attach(&mut nvm.vm, pid).expect("fresh partition");
    let rootfs = nvm
        .vm
        .touch_file(host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
    let deps = nvm
        .vm
        .touch_file(host, kind.deps_file(), profile.deps_pages(), cost)?;
    let anon = nvm.vm.touch_anon(host, pid, profile.anon_pages(), cost)?;
    nvm.instances += 1;
    Ok(plug.latency()
        + rootfs.latency
        + deps.latency
        + anon.latency
        + SimDuration::from_secs_f64(profile.container_init_cpu_s + profile.function_init_cpu_s))
}

/// Starts one instance on a fresh 1:1 microVM (cold caches).
fn one_to_one_start(
    kind: FunctionKind,
    host: &mut HostMemory,
    cost: &CostModel,
) -> Result<(SimDuration, u64), VmmError> {
    let profile = kind.profile();
    let boot = align_up_to_block(profile.memory_limit.bytes() + MICROVM_OS_BYTES);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: boot,
                hotplug_bytes: 0,
                kernel_bytes: MICROVM_OS_BYTES,
                init_on_alloc: true,
            },
            vcpus: 1.0,
        },
        host,
    )?;
    let mut lat = SimDuration::nanos(cost.microvm_boot_fixed_ns)
        + cost.ept_faults(MICROVM_OS_BYTES / mem_types::PAGE_SIZE);
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let rootfs = vm.touch_file(host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
    let deps = vm.touch_file(host, kind.deps_file(), profile.deps_pages(), cost)?;
    let anon = vm.touch_anon(host, pid, profile.anon_pages(), cost)?;
    lat += rootfs.latency
        + deps.latency
        + anon.latency
        + SimDuration::from_secs_f64(profile.container_init_cpu_s + profile.function_init_cpu_s);
    let rss = vm.host_rss();
    // The microVM keeps running (leaks into `host` accounting), exactly
    // what we want: the footprint after absorption includes it.
    std::mem::forget(vm);
    Ok((lat, rss))
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u32 = 4;

    fn outcome(strategy: ScaleStrategy, burst: u32) -> BurstOutcome {
        let cost = CostModel::default();
        absorb_burst(FunctionKind::Cnn, strategy, N, burst, &cost).unwrap()
    }

    #[test]
    fn vertical_caps_at_concurrency_factor() {
        let o = outcome(ScaleStrategy::Vertical, 2 * N);
        assert_eq!(o.served, N, "beyond N not served");
        assert_eq!(o.vms, 1);
    }

    #[test]
    fn hybrid_serves_everything_with_clones() {
        let o = outcome(ScaleStrategy::Hybrid, 2 * N + 1);
        assert_eq!(o.served, 2 * N + 1);
        assert_eq!(o.vms, 3, "two clones on top of the first VM");
    }

    #[test]
    fn horizontal_serves_everything_with_microvms() {
        let o = outcome(ScaleStrategy::Horizontal, N + 2);
        assert_eq!(o.served, N + 2);
        assert_eq!(o.vms, N + 2);
    }

    #[test]
    fn hybrid_starts_faster_than_horizontal() {
        let hybrid = outcome(ScaleStrategy::Hybrid, 2 * N);
        let horizontal = outcome(ScaleStrategy::Horizontal, 2 * N);
        assert!(
            hybrid.mean_start_ms < horizontal.mean_start_ms,
            "hybrid {} vs horizontal {}",
            hybrid.mean_start_ms,
            horizontal.mean_start_ms
        );
        // And uses less host memory (no per-instance OS replication).
        assert!(hybrid.host_mib < horizontal.host_mib);
    }

    #[test]
    fn hybrid_matches_vertical_below_capacity() {
        let hybrid = outcome(ScaleStrategy::Hybrid, N - 1);
        let vertical = outcome(ScaleStrategy::Vertical, N - 1);
        assert_eq!(hybrid.served, vertical.served);
        assert_eq!(hybrid.vms, 1, "no clone needed below N");
        let ratio = hybrid.mean_start_ms / vertical.mean_start_ms;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn clone_delay_shows_up_at_the_boundary() {
        let o = outcome(ScaleStrategy::Hybrid, N + 1);
        // The N+1-th start pays the clone: max > mean.
        assert!(o.max_start_ms > o.mean_start_ms);
        assert_eq!(o.vms, 2);
    }
}
