//! Pull-based arrival feeds: the simulators draw arrivals lazily
//! instead of pre-pushing the whole trace into the event queue.
//!
//! Pre-pushing costs O(total invocations) queue memory up front — fine
//! for synthetic minute-scale traces, fatal for multi-day replays with
//! millions of invocations. A feed holds either the materialized
//! per-slot arrival lists (legacy generators) or a streaming
//! [`TraceSource`] (file-backed replays), and the run loops merge it
//! with the event queue one arrival at a time, so queue memory stays
//! O(pending events).
//!
//! # Byte-identity with the pre-push era
//!
//! The old constructors pushed arrivals slot-major *before* any other
//! event, so at any tick the arrivals held the lowest sequence numbers
//! and popped first, in slot order then FIFO. The merge reproduces that
//! exactly: a fed arrival is processed whenever its time is `<=` the
//! queue's next tick (the arrival wins ties), and the feed itself
//! yields in `(converted SimTime, slot, position)` order — the same
//! total order the queue's `(time, seq)` tie-break produced. The
//! `golden`, `cluster_equivalence` and `fleet_equivalence` suites pin
//! this.

use sim_core::{SimDuration, SimTime};
use workloads::TraceSource;

/// A source of `(time, slot)` arrivals in non-decreasing time order.
///
/// `slot` is the feed-local arrival address: the flattened `(vm, dep)`
/// deployment index for the single-host simulator, the tenant index for
/// the cluster and fleet simulators.
pub(crate) enum ArrivalFeed {
    Merged(MergedFeed),
    Stream(StreamFeed),
}

impl ArrivalFeed {
    /// A feed over materialized per-slot arrival lists (each sorted,
    /// in seconds). Arrivals at or past `duration_s` are dropped,
    /// mirroring the pre-push filter.
    pub fn merged(slots: Vec<Vec<f64>>, duration_s: f64) -> ArrivalFeed {
        ArrivalFeed::Merged(MergedFeed {
            cursors: vec![0; slots.len()],
            slots,
            duration_s,
            injected: 0,
        })
    }

    /// A feed over a streaming trace source. `origin` names the trace
    /// (its path) in mid-run parse panics; traces are expected to be
    /// validated up front, so an error here means the file changed
    /// underneath the run.
    pub fn stream(
        source: Box<dyn TraceSource>,
        duration_s: f64,
        origin: impl Into<String>,
    ) -> ArrivalFeed {
        ArrivalFeed::Stream(StreamFeed {
            source,
            origin: origin.into(),
            duration_ns: SimDuration::from_secs_f64(duration_s).0,
            next: None,
            primed: false,
            injected: 0,
        })
    }

    /// The next arrival's `(time, slot)` without consuming it.
    pub fn peek(&mut self) -> Option<(SimTime, usize)> {
        match self {
            ArrivalFeed::Merged(f) => f.peek(),
            ArrivalFeed::Stream(f) => f.peek(),
        }
    }

    /// Consumes and returns the next arrival.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let next = self.peek();
        if next.is_some() {
            match self {
                ArrivalFeed::Merged(f) => f.advance(),
                ArrivalFeed::Stream(f) => f.advance(),
            }
        }
        next
    }

    /// Arrivals handed to the simulator so far — the offered-load count
    /// and the feed's share of `events_processed`.
    pub fn injected(&self) -> u64 {
        match self {
            ArrivalFeed::Merged(f) => f.injected,
            ArrivalFeed::Stream(f) => f.injected,
        }
    }
}

/// Merge over materialized per-slot arrival lists.
pub(crate) struct MergedFeed {
    slots: Vec<Vec<f64>>,
    cursors: Vec<usize>,
    duration_s: f64,
    injected: u64,
}

impl MergedFeed {
    fn peek(&mut self) -> Option<(SimTime, usize)> {
        // Skip filtered-out arrivals first so they never shadow a live
        // one behind them (lists are sorted, so this only trims tails).
        for (slot, arr) in self.slots.iter().enumerate() {
            let c = &mut self.cursors[slot];
            while *c < arr.len() && arr[*c] >= self.duration_s {
                *c += 1;
            }
        }
        let mut best: Option<(SimTime, usize)> = None;
        for (slot, arr) in self.slots.iter().enumerate() {
            let c = self.cursors[slot];
            if c >= arr.len() {
                continue;
            }
            let at = SimTime::ZERO + SimDuration::from_secs_f64(arr[c]);
            // Strict `<`: on converted-time ties the lowest slot wins,
            // matching the old slot-major push order.
            if best.is_none_or(|(bt, _)| at < bt) {
                best = Some((at, slot));
            }
        }
        best
    }

    fn advance(&mut self) {
        if let Some((_, slot)) = self.peek() {
            self.cursors[slot] += 1;
            self.injected += 1;
        }
    }
}

/// Streaming trace feed with a one-arrival lookahead.
pub(crate) struct StreamFeed {
    source: Box<dyn TraceSource>,
    origin: String,
    duration_ns: u64,
    next: Option<(SimTime, usize)>,
    primed: bool,
    injected: u64,
}

impl StreamFeed {
    fn peek(&mut self) -> Option<(SimTime, usize)> {
        if !self.primed {
            self.primed = true;
            self.refill();
        }
        self.next
    }

    fn advance(&mut self) {
        if self.next.take().is_some() {
            self.injected += 1;
            self.refill();
        }
    }

    fn refill(&mut self) {
        match self.source.next_arrival() {
            Ok(Some(a)) => {
                // Trace times are non-decreasing, so the first arrival
                // past the horizon ends the feed.
                if a.t_ns < self.duration_ns {
                    self.next = Some((SimTime(a.t_ns), a.tenant));
                } else {
                    self.next = None;
                }
            }
            Ok(None) => self.next = None,
            Err(e) => panic!(
                "trace {}: {e} (mid-run parse failure — the trace was \
                 validated before the run, so the file changed underneath it)",
                self.origin
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Arrival, FunctionKind, TraceError};

    fn drain(mut f: ArrivalFeed) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        while let Some((at, slot)) = f.pop() {
            out.push((at.0, slot));
        }
        assert_eq!(f.injected(), out.len() as u64);
        out
    }

    #[test]
    fn merged_feed_orders_by_time_then_slot() {
        let feed = ArrivalFeed::merged(vec![vec![1.0, 2.0, 2.0], vec![0.5, 2.0], vec![]], 10.0);
        let got = drain(feed);
        let ns = |s: f64| SimDuration::from_secs_f64(s).0;
        assert_eq!(
            got,
            vec![
                (ns(0.5), 1),
                (ns(1.0), 0),
                (ns(2.0), 0),
                (ns(2.0), 0),
                (ns(2.0), 1),
            ],
            "ties break by slot, then FIFO within a slot"
        );
    }

    #[test]
    fn merged_feed_filters_past_the_horizon() {
        let feed = ArrivalFeed::merged(vec![vec![1.0, 5.0, 9.0]], 5.0);
        assert_eq!(drain(feed).len(), 1, "t >= duration_s dropped");
    }

    struct FakeSource {
        kinds: Vec<FunctionKind>,
        arrivals: std::vec::IntoIter<Arrival>,
    }

    impl TraceSource for FakeSource {
        fn kinds(&self) -> &[FunctionKind] {
            &self.kinds
        }

        fn next_arrival(&mut self) -> Result<Option<Arrival>, TraceError> {
            Ok(self.arrivals.next())
        }
    }

    #[test]
    fn stream_feed_cuts_off_at_the_horizon() {
        let mk = |t_ns: u64, tenant: usize| Arrival {
            t_ns,
            function: FunctionKind::Html,
            tenant,
            duration_s: None,
            memory_bytes: None,
        };
        let source = FakeSource {
            kinds: vec![FunctionKind::Html],
            arrivals: vec![mk(5, 0), mk(7, 1), mk(2_000_000_000, 0)].into_iter(),
        };
        let feed = ArrivalFeed::stream(Box::new(source), 2.0, "test");
        assert_eq!(drain(feed), vec![(5, 0), (7, 1)]);
    }
}
