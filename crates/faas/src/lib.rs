//! An OpenWhisk-style FaaS runtime model over dynamically resized VMs.
//!
//! Reproduces the paper's deployment (§4.2, §5): a controller routes
//! invocations to per-VM agents that reuse warm instances, scale up with
//! memory plugs, keep idle instances alive for 2 minutes and scale down
//! with memory reclamation through one of four elasticity backends
//! (Static, vanilla virtio-mem, HarvestVM-opts, Squeezy). Also provides
//! the 1:1 microVM cold-start model for the Figure-11 comparison.

pub mod config;
pub mod hybrid;
pub mod metrics;
pub mod microvm;
pub mod sim;

pub use config::{BackendKind, Deployment, HarvestConfig, SimConfig, VmSpec};
pub use hybrid::{absorb_burst, BurstOutcome, ScaleStrategy};
pub use metrics::{FuncMetrics, ReclaimTotals, SimResult};
pub use microvm::{microvm_cold_start, n_to_one_cold_start, ColdStartBreakdown};
pub use sim::FaasSim;
