//! An OpenWhisk-style FaaS runtime model over dynamically resized VMs.
//!
//! Reproduces the paper's deployment (§4.2, §5) in four explicit
//! layers:
//!
//! * **Backend layer** ([`backend`], internal): the pluggable
//!   [`BackendKind`] elasticity backends — Static, vanilla virtio-mem,
//!   HarvestVM-opts, Squeezy, Squeezy+soft — each in its own module
//!   behind one `ElasticityBackend` trait (plug/scale-up cost,
//!   reclaim-on-evict, pressure/revocation hooks).
//! * **Host layer** ([`sim`]): one host's backend-agnostic event loop —
//!   a controller routes invocations to per-VM agents that reuse warm
//!   instances, scale up with memory plugs, keep idle instances alive
//!   and scale down with memory reclamation. [`FaasSim`] drives a
//!   single host, the paper's deployment.
//! * **Cluster layer** ([`cluster`]): [`ClusterSim`] runs N hosts under
//!   one event engine with a pluggable [`Router`] (round-robin,
//!   least-loaded, warm-affinity, power-of-two-choices); with one host
//!   and the [`cluster::SingleHost`] router it reproduces [`FaasSim`]
//!   byte-for-byte.
//! * **Fleet layer** ([`fleet`]): [`FleetSim`] puts a control plane
//!   over the cluster data plane — host lifecycle
//!   (Booting → Active → Draining → Retired, plus injected Failed),
//!   pluggable [`AutoscalePolicy`]s (target-utilization, queue-depth,
//!   SLAM-style SLO-aware), graceful drains and seeded failure
//!   injection. With a fixed fleet it reproduces [`ClusterSim`]
//!   byte-for-byte.
//!
//! The **scenario front door** ([`scenario`]) sits above all four:
//! a declarative, serializable [`Scenario`] spec names a workload, a
//! topology, backends, a router, a policy and SLOs, and
//! [`Scenario::run`] dispatches to the right simulator — every layer
//! gains a `from_scenario` constructor and every experiment becomes a
//! data change.
//!
//! Also provides the 1:1 microVM cold-start model for the Figure-11
//! comparison.

pub(crate) mod backend;
pub mod cluster;
pub mod config;
pub(crate) mod feed;
pub mod fleet;
pub mod hybrid;
pub mod metrics;
pub mod microvm;
pub mod scenario;
pub mod sim;

pub use cluster::{
    ClusterConfig, ClusterResult, ClusterSim, HostLoad, LeastLoaded, PowerOfTwoChoices, RoundRobin,
    Router, RouterKind, SingleHost, TenantTrace, WarmAffinity, LATENCY_RESERVOIR_CAP,
};
pub use config::{BackendKind, Deployment, HarvestConfig, SimConfig, VmSpec};
pub use fleet::{
    default_slos, AutoscaleOpts, AutoscalePolicy, FailureConfig, FixedFleet, FleetConfig,
    FleetResult, FleetSim, FleetView, HostOutcome, HostState, LatencyObs, PolicyKind, QueueDepth,
    ScaleDecision, SlamSlo, TargetUtilization,
};
pub use hybrid::{absorb_burst, BurstOutcome, ScaleStrategy};
pub use metrics::{FuncMetrics, ReclaimTotals, SimResult};
pub use microvm::{microvm_cold_start, n_to_one_cold_start, ColdStartBreakdown};
pub use scenario::{
    compare_results, render_verdicts, AxisValues, CompareReport, ExpectKind, ExpectVerdict,
    Expectation, FleetStats, GridOutcome, MetricDiff, Scenario, ScenarioOutcome, ScenarioResult,
    SweepAxis, SweepCell, SweepSpec, Topology, WorkloadSpec,
};
pub use sim::FaasSim;
