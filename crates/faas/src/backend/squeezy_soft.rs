//! Squeezy plus §7 soft memory: idle instances' partitions are
//! revocable under host pressure without evicting the instances;
//! revoked ("hollow") instances re-plug and rebuild on their next
//! request — the soft-cold start that stays cheaper than a full cold
//! start.

use ::squeezy::SoftWake;
use guest_mm::Pid;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::VmSpec;
use crate::sim::host::VmRt;
use crate::sim::instance::InstState;

use super::squeezy::SqueezyCore;
use super::{ElasticityBackend, PlugResolution, PlugStart, RebuildStart, ReclaimStart};

#[derive(Default)]
pub(crate) struct SqueezySoftBackend {
    core: SqueezyCore,
}

impl ElasticityBackend for SqueezySoftBackend {
    fn hotplug_bytes(
        &self,
        spec: &VmSpec,
        _total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64 {
        self.core.hotplug_bytes(spec, shared_bytes, max_limit)
    }

    fn install_vm(
        &mut self,
        vm: &mut Vm,
        spec: &VmSpec,
        shared_bytes: u64,
        _hotplug_bytes: u64,
        cost: &CostModel,
    ) {
        self.core.install_vm(vm, spec, shared_bytes, cost);
    }

    fn begin_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        pid: Pid,
        _bytes: u64,
        cost: &CostModel,
    ) -> PlugStart {
        self.core.begin_plug(vm_idx, v, pid, cost)
    }

    fn finish_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        cost: &CostModel,
    ) -> PlugResolution {
        self.core.finish_plug(vm_idx, v, inst, cost)
    }

    fn on_dispatch(&mut self, vm_idx: usize, pid: Pid) {
        // Firm the partition up while the instance works.
        let _ = self.core.managers[vm_idx].mark_firm(pid);
    }

    fn on_idle(&mut self, vm_idx: usize, pid: Pid) {
        // Newly idle instances offer their partition back.
        let _ = self.core.managers[vm_idx].mark_soft(pid);
    }

    fn on_exit(&mut self, vm_idx: usize, pid: Pid) {
        self.core.on_exit(vm_idx, pid);
    }

    fn reclaim_on_evict(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        _bytes: u64,
        now: SimTime,
        _deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        self.core.reclaim_on_evict(vm_idx, v, host, now, cost)
    }

    /// Pressure valve: revoke soft partitions of idle instances
    /// (without evicting them) until `deficit` host bytes are covered
    /// or nothing soft is left. Revoked instances go hollow.
    fn revoke_for_pressure(
        &mut self,
        vms: &mut [VmRt],
        host: &mut HostMemory,
        deficit: u64,
        cost: &CostModel,
    ) {
        let mut released = 0u64;
        for (vi, v) in vms.iter_mut().enumerate() {
            while released < deficit {
                let used_before = host.used_bytes();
                let sq = &mut self.core.managers[vi];
                let revoked = sq.revoke_soft(&mut v.vm, host, 1, cost).unwrap_or_default();
                let Some((part, report)) = revoked.into_iter().next() else {
                    break;
                };
                released += used_before - host.used_bytes();
                // The partition's instance goes hollow.
                if let Some((&id, _)) = v
                    .instances
                    .iter()
                    .find(|(_, i)| i.partition == Some(part) && i.state == InstState::Warm)
                {
                    v.instances.get_mut(&id).expect("exists").state = InstState::Hollow;
                }
                let r = &mut v.reclaim;
                r.bytes += report.bytes();
                r.wall += report.latency();
                r.ops += 1;
            }
            if released >= deficit {
                break;
            }
        }
    }

    /// Re-plugs a hollow (soft-revoked) instance: the container and
    /// runtime survived, so only the partition plug and the
    /// working-set rebuild are paid (the §7 soft-cold start).
    fn rebuild(&mut self, vm_idx: usize, v: &mut VmRt, pid: Pid, cost: &CostModel) -> RebuildStart {
        let sq = &mut self.core.managers[vm_idx];
        match sq.mark_firm(pid).expect("hollow instance is attached") {
            SoftWake::NeedsReplug => {
                let report = sq.replug(&mut v.vm, pid, cost).expect("revoked");
                RebuildStart::Replug {
                    latency: report.latency(),
                }
            }
            SoftWake::Warm => {
                // The partition was never unplugged after all.
                RebuildStart::Warm
            }
        }
    }
}
