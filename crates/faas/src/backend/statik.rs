//! The statically over-provisioned baseline (Figure 1's motivation).
//!
//! All memory is plugged at boot and never reclaimed: instant
//! scale-ups, maximal host footprint.

use guest_mm::Pid;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::VmSpec;
use crate::sim::host::VmRt;

use super::{default_hotplug_bytes, ElasticityBackend, PlugResolution, PlugStart, ReclaimStart};

pub(crate) struct StaticBackend;

impl ElasticityBackend for StaticBackend {
    fn hotplug_bytes(
        &self,
        _spec: &VmSpec,
        total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64 {
        default_hotplug_bytes(total_limit, shared_bytes, max_limit)
    }

    fn install_vm(
        &mut self,
        vm: &mut Vm,
        _spec: &VmSpec,
        _shared_bytes: u64,
        hotplug_bytes: u64,
        cost: &CostModel,
    ) {
        // Over-provisioned VM: everything plugged at boot.
        vm.plug(hotplug_bytes, cost)
            .expect("static plug fits region");
    }

    fn begin_plug(
        &mut self,
        _vm_idx: usize,
        _v: &mut VmRt,
        _pid: Pid,
        _bytes: u64,
        _cost: &CostModel,
    ) -> PlugStart {
        // Memory is already there.
        PlugStart::Ready { partition: None }
    }

    fn finish_plug(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        _cost: &CostModel,
    ) -> PlugResolution {
        // Unreachable in practice (static never schedules a PlugDone),
        // but harmless: mark the instance and let init proceed.
        if let Some(i) = v.instances.get_mut(&inst) {
            i.plug_done = true;
        }
        PlugResolution {
            ready: vec![inst],
            replug: None,
        }
    }

    fn reclaim_on_evict(
        &mut self,
        _vm_idx: usize,
        _v: &mut VmRt,
        _host: &mut HostMemory,
        _bytes: u64,
        _now: SimTime,
        _deadline: SimDuration,
        _cost: &CostModel,
    ) -> ReclaimStart {
        // Never reclaims (the flat host line of Figure 1).
        ReclaimStart::None
    }
}
