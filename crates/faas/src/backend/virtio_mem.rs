//! Vanilla virtio-mem hot-unplug with page migrations.
//!
//! Scale-ups plug limit-sized chunks asynchronously; scale-downs unplug
//! under a deadline, migrating interleaved pages on the guest's vCPUs
//! (the Figure-9 interference) and retrying shortfalls in the
//! background like the real driver's ongoing requests.

use guest_mm::Pid;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::VmSpec;
use crate::sim::host::VmRt;
use crate::sim::instance::PendingReclaim;

use super::{default_hotplug_bytes, ElasticityBackend, PlugResolution, PlugStart, ReclaimStart};

pub(crate) struct VirtioMemBackend;

/// One deadline-bounded virtio-mem unplug of `bytes`, with `retries`
/// more background attempts for whatever the deadline leaves behind.
/// Shared by the vanilla and HarvestVM-opts backends.
pub(crate) fn virtio_reclaim(
    v: &mut VmRt,
    host: &mut HostMemory,
    bytes: u64,
    deadline: SimDuration,
    retries: u8,
    now: SimTime,
    cost: &CostModel,
) -> ReclaimStart {
    let used_before = host.used_bytes();
    let report = match v.vm.unplug(host, bytes, Some(deadline), cost) {
        Ok(r) => r,
        Err(_) => return ReclaimStart::None,
    };
    if report.bytes() == 0 && report.outcome.migrated == 0 {
        // Nothing reclaimable (no candidates): drop silently.
        return ReclaimStart::None;
    }
    let released = used_before - host.used_bytes();
    host.reserve(released).expect("just freed");
    ReclaimStart::Kthread {
        pending: PendingReclaim {
            host_bytes: released,
            guest_bytes: report.bytes(),
            started: now,
            shortfall: report.shortfall_bytes > 0,
            pages_migrated: report.outcome.migrated,
            shortfall_bytes: report.shortfall_bytes,
            retries_left: retries,
        },
        cpu_s: report.guest_cpu.as_secs_f64(),
    }
}

/// The async limit-sized plug shared by the virtio-family backends.
pub(crate) fn virtio_plug(v: &mut VmRt, bytes: u64, cost: &CostModel) -> PlugStart {
    match v.vm.plug(bytes, cost) {
        Ok(report) => PlugStart::Scheduled {
            latency: report.latency(),
        },
        // Region exhausted (reclaim shortfalls): the request stays
        // queued for a warm instance.
        Err(_) => PlugStart::Failed,
    }
}

/// The trivial plug completion shared by every non-partitioned backend.
pub(crate) fn mark_plug_done(v: &mut VmRt, inst: u64) -> PlugResolution {
    if let Some(i) = v.instances.get_mut(&inst) {
        i.plug_done = true;
    }
    PlugResolution {
        ready: vec![inst],
        replug: None,
    }
}

impl ElasticityBackend for VirtioMemBackend {
    fn hotplug_bytes(
        &self,
        _spec: &VmSpec,
        total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64 {
        default_hotplug_bytes(total_limit, shared_bytes, max_limit)
    }

    fn install_vm(
        &mut self,
        _vm: &mut Vm,
        _spec: &VmSpec,
        _shared_bytes: u64,
        _hotplug_bytes: u64,
        _cost: &CostModel,
    ) {
    }

    fn begin_plug(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        _pid: Pid,
        bytes: u64,
        cost: &CostModel,
    ) -> PlugStart {
        virtio_plug(v, bytes, cost)
    }

    fn finish_plug(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        _cost: &CostModel,
    ) -> PlugResolution {
        mark_plug_done(v, inst)
    }

    fn reclaim_on_evict(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        bytes: u64,
        now: SimTime,
        deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        virtio_reclaim(v, host, bytes, deadline, 1, now, cost)
    }

    fn retry_reclaim(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        bytes: u64,
        retries: u8,
        now: SimTime,
        deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        virtio_reclaim(v, host, bytes, deadline, retries, now, cost)
    }
}
