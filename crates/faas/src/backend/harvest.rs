//! virtio-mem plus the HarvestVM optimizations (§6.2.2): a reserved
//! slack buffer for instant scale-ups, refilled by proactive eviction
//! of idle instances — the memory-for-latency trade the paper compares
//! against.

use guest_mm::Pid;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::{HarvestConfig, VmSpec};
use crate::sim::host::VmRt;

use super::virtio_mem::{mark_plug_done, virtio_plug, virtio_reclaim};
use super::{default_hotplug_bytes, ElasticityBackend, PlugResolution, PlugStart, ReclaimStart};

pub(crate) struct HarvestBackend {
    cfg: HarvestConfig,
    /// Slack buffer currently held (host bytes reserved).
    buffer: u64,
}

impl HarvestBackend {
    pub(crate) fn new(cfg: HarvestConfig) -> Self {
        HarvestBackend { cfg, buffer: 0 }
    }
}

impl ElasticityBackend for HarvestBackend {
    fn hotplug_bytes(
        &self,
        _spec: &VmSpec,
        total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64 {
        default_hotplug_bytes(total_limit, shared_bytes, max_limit)
    }

    fn install_vm(
        &mut self,
        _vm: &mut Vm,
        _spec: &VmSpec,
        _shared_bytes: u64,
        _hotplug_bytes: u64,
        _cost: &CostModel,
    ) {
    }

    fn after_boot(&mut self, host: &mut HostMemory) {
        // The slack buffer is reserved up front — idle memory traded
        // for instant scale-ups (§6.2.2).
        let want = self.cfg.buffer_bytes.min(host.free_bytes());
        host.reserve(want).expect("checked free");
        self.buffer = want;
    }

    fn admit_from_reserve(&mut self, host: &mut HostMemory, estimate: u64) -> bool {
        if self.buffer >= estimate {
            // Draw from the slack buffer: memory is already reserved;
            // hand it to the VM by releasing it for its faults.
            self.buffer -= estimate;
            host.release(estimate);
            return true;
        }
        if self.buffer + host.free_bytes() >= estimate {
            // Drain what the buffer has and cover the rest from the
            // free pool.
            host.release(self.buffer);
            self.buffer = 0;
            return true;
        }
        false
    }

    fn proactive_eviction_quota(&self) -> u32 {
        // Refill the slack buffer by evicting extra idle instances —
        // the "aggressive reclamation" that penalizes their functions
        // later.
        if self.buffer < self.cfg.buffer_bytes {
            self.cfg.proactive_evictions
        } else {
            0
        }
    }

    fn on_reclaim_complete(&mut self, host: &mut HostMemory) {
        // Siphon freed memory into the slack buffer.
        let want = self
            .cfg
            .buffer_bytes
            .saturating_sub(self.buffer)
            .min(host.free_bytes());
        if want > 0 {
            host.reserve(want).expect("checked free");
            self.buffer += want;
        }
    }

    fn begin_plug(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        _pid: Pid,
        bytes: u64,
        cost: &CostModel,
    ) -> PlugStart {
        virtio_plug(v, bytes, cost)
    }

    fn finish_plug(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        _cost: &CostModel,
    ) -> PlugResolution {
        mark_plug_done(v, inst)
    }

    fn reclaim_on_evict(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        bytes: u64,
        now: SimTime,
        deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        virtio_reclaim(v, host, bytes, deadline, 1, now, cost)
    }

    fn retry_reclaim(
        &mut self,
        _vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        bytes: u64,
        retries: u8,
        now: SimTime,
        deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        virtio_reclaim(v, host, bytes, deadline, retries, now, cost)
    }
}
