//! The pluggable memory-elasticity backend layer.
//!
//! Each backend of §5.2 lives in its own module and implements
//! [`ElasticityBackend`]: how guest memory is sized, plugged on
//! scale-up, reclaimed on evict, and (for §7 soft memory) revoked under
//! host pressure. The host event loop (`crate::sim::host`) is backend
//! agnostic — it drives these hooks and never dispatches on
//! [`BackendKind`]; the only `BackendKind` match in the runtime is the
//! [`make`] factory below.

pub(crate) mod harvest;
pub(crate) mod squeezy;
pub(crate) mod squeezy_soft;
pub(crate) mod statik;
pub(crate) mod virtio_mem;

use ::squeezy::PartitionId;
use guest_mm::Pid;
use mem_types::align_up_to_block;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::{BackendKind, SimConfig, VmSpec};
use crate::sim::host::VmRt;
use crate::sim::instance::PendingReclaim;

/// How a fresh instance's memory plug started.
pub(crate) enum PlugStart {
    /// Memory is available immediately (static plug, reused partition).
    Ready { partition: Option<PartitionId> },
    /// An asynchronous plug was issued; a `PlugDone` event fires after
    /// `latency`.
    Scheduled { latency: SimDuration },
    /// The plug failed (device region exhausted): cancel the scale-up.
    Failed,
}

/// What a `PlugDone` event resolved to.
pub(crate) struct PlugResolution {
    /// Instances whose plug completed with this event (init may
    /// proceed).
    pub ready: Vec<u64>,
    /// A replacement plug for the event's instance (its partition was
    /// taken by a concurrent scale-up): `PlugDone` fires again after
    /// this latency.
    pub replug: Option<SimDuration>,
}

/// How a reclaim operation started.
pub(crate) enum ReclaimStart {
    /// Nothing to reclaim.
    None,
    /// The reclaim completes after a fixed wall latency (Squeezy's
    /// synchronous partition unplug).
    Timed {
        pending: PendingReclaim,
        latency: SimDuration,
    },
    /// The reclaim completes when the in-guest driver kthread finishes
    /// `cpu_s` seconds of page-migration work on the VM's vCPUs (the
    /// Figure-9 interference).
    Kthread { pending: PendingReclaim, cpu_s: f64 },
}

/// How a hollow (soft-revoked) instance wakes back up.
pub(crate) enum RebuildStart {
    /// The partition was revoked: a re-plug is in flight and `PlugDone`
    /// fires after `latency`.
    Replug { latency: SimDuration },
    /// The partition survived; the instance is warm again.
    Warm,
}

/// One memory-elasticity backend driving a host's VMs.
///
/// Hooks with defaults are optional behaviors (reserve buffers,
/// soft-memory revocation); the required hooks are the plug/reclaim
/// paths every backend must define. Implementations own all their
/// backend-specific state (Squeezy managers, slack buffers) — the host
/// loop holds none.
pub(crate) trait ElasticityBackend {
    /// Hotplug-region size for a VM hosting `spec`'s deployments.
    fn hotplug_bytes(
        &self,
        spec: &VmSpec,
        total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64;

    /// Called once per VM right after boot: install managers, perform
    /// boot-time plugs.
    fn install_vm(
        &mut self,
        vm: &mut Vm,
        spec: &VmSpec,
        shared_bytes: u64,
        hotplug_bytes: u64,
        cost: &CostModel,
    );

    /// Called once after every VM has booted (e.g. reserve the
    /// HarvestVM slack buffer).
    fn after_boot(&mut self, _host: &mut HostMemory) {}

    /// Admit one instance of `estimate` bytes from backend-held
    /// reserves (HarvestVM's slack buffer). Returns `true` when the
    /// admission is covered.
    fn admit_from_reserve(&mut self, _host: &mut HostMemory, _estimate: u64) -> bool {
        false
    }

    /// Release revocable memory under host pressure without evicting
    /// instances (§7 soft memory). Best effort: the host loop
    /// re-checks free memory afterwards.
    fn revoke_for_pressure(
        &mut self,
        _vms: &mut [VmRt],
        _host: &mut HostMemory,
        _deficit: u64,
        _cost: &CostModel,
    ) {
    }

    /// Extra idle instances to proactively evict after a keep-alive
    /// eviction (HarvestVM's aggressive reclamation).
    fn proactive_eviction_quota(&self) -> u32 {
        0
    }

    /// A reclaim completed and its memory returned to the host.
    fn on_reclaim_complete(&mut self, _host: &mut HostMemory) {}

    /// Start the memory plug for a fresh instance (`bytes` = the
    /// user-defined limit, block aligned).
    fn begin_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        pid: Pid,
        bytes: u64,
        cost: &CostModel,
    ) -> PlugStart;

    /// A `PlugDone` event fired for instance `inst`: mark completed
    /// plugs (and bind partitions to waiters).
    fn finish_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        cost: &CostModel,
    ) -> PlugResolution;

    /// A request was dispatched to `pid` (soft memory firms the
    /// partition up).
    fn on_dispatch(&mut self, _vm_idx: usize, _pid: Pid) {}

    /// `pid` went idle (soft memory offers the partition back).
    fn on_idle(&mut self, _vm_idx: usize, _pid: Pid) {}

    /// `pid` is exiting (evicted or killed): drop backend bookkeeping.
    fn on_exit(&mut self, _vm_idx: usize, _pid: Pid) {}

    /// Reclaim after an eviction of a limit-sized (`bytes`) instance.
    #[allow(clippy::too_many_arguments)]
    fn reclaim_on_evict(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        bytes: u64,
        now: SimTime,
        deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart;

    /// Background retry of a shortfall the unplug deadline left behind
    /// (the virtio driver's ongoing requests).
    #[allow(clippy::too_many_arguments)]
    fn retry_reclaim(
        &mut self,
        _vm_idx: usize,
        _v: &mut VmRt,
        _host: &mut HostMemory,
        _bytes: u64,
        _retries: u8,
        _now: SimTime,
        _deadline: SimDuration,
        _cost: &CostModel,
    ) -> ReclaimStart {
        ReclaimStart::None
    }

    /// Rebuild a hollow (soft-revoked) instance on its next request.
    fn rebuild(
        &mut self,
        _vm_idx: usize,
        _v: &mut VmRt,
        _pid: Pid,
        _cost: &CostModel,
    ) -> RebuildStart {
        unreachable!("only soft-memory backends produce hollow instances")
    }
}

/// The hotplug sizing shared by all non-partitioned backends: extra
/// device headroom because reclaim shortfalls leave blocks plugged and
/// the VM must keep growing past them (the paper's virtio-mem "uses the
/// maximum memory available").
pub(crate) fn default_hotplug_bytes(total_limit: u64, shared_bytes: u64, max_limit: u64) -> u64 {
    align_up_to_block(total_limit + shared_bytes + 256 * (1 << 20) + 2 * max_limit)
}

/// Instantiates the configured backend — the one `BackendKind` dispatch
/// in the runtime.
pub(crate) fn make(config: &SimConfig) -> Box<dyn ElasticityBackend> {
    match config.backend {
        BackendKind::Static => Box::new(statik::StaticBackend),
        BackendKind::VirtioMem => Box::new(virtio_mem::VirtioMemBackend),
        BackendKind::HarvestOpts => Box::new(harvest::HarvestBackend::new(config.harvest)),
        BackendKind::Squeezy => Box::new(squeezy::SqueezyBackend::default()),
        BackendKind::SqueezySoft => Box::new(squeezy_soft::SqueezySoftBackend::default()),
    }
}
