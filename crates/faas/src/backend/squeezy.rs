//! Squeezy: partitioned guest memory with instant, migration-free
//! partition unplug (§4-§5).
//!
//! [`SqueezyCore`] holds the per-VM [`SqueezyManager`]s and implements
//! the partition-aware plug/reclaim paths; [`SqueezyBackend`] is the
//! plain backend and `squeezy_soft` layers the §7 soft-memory hooks on
//! the same core.

use ::squeezy::{AttachOutcome, SqueezyConfig, SqueezyManager};
use guest_mm::Pid;
use mem_types::align_up_to_block;
use sim_core::{CostModel, SimDuration, SimTime};
use vmm::{HostMemory, Vm};

use crate::config::VmSpec;
use crate::sim::host::VmRt;
use crate::sim::instance::{InstState, PendingReclaim};

use super::{ElasticityBackend, PlugResolution, PlugStart, ReclaimStart};

/// Shared state and behavior of the Squeezy-family backends: one
/// [`SqueezyManager`] per VM, installed at boot.
#[derive(Default)]
pub(crate) struct SqueezyCore {
    pub managers: Vec<SqueezyManager>,
}

impl SqueezyCore {
    /// Partitioned region: the shared slab plus one partition per
    /// admitted instance — no headroom needed, unplug never falls
    /// short. Partitions are uniformly sized at the VM's largest
    /// hosted limit, so a heterogeneous tenant mix needs
    /// `max_limit × Σ concurrency` (for homogeneous limits this equals
    /// the plain per-deployment sum).
    pub fn hotplug_bytes(&self, spec: &VmSpec, shared_bytes: u64, max_limit: u64) -> u64 {
        let n: u64 = spec.deployments.iter().map(|d| d.concurrency as u64).sum();
        shared_bytes + max_limit * n
    }

    pub fn install_vm(&mut self, vm: &mut Vm, spec: &VmSpec, shared_bytes: u64, cost: &CostModel) {
        // One partition size per VM: the largest hosted limit
        // (co-located functions share limits in the paper's
        // co-location experiment).
        let part = spec
            .deployments
            .iter()
            .map(|d| align_up_to_block(d.kind.profile().memory_limit.bytes()))
            .max()
            .expect("VM hosts at least one deployment");
        let n: u32 = spec.deployments.iter().map(|d| d.concurrency).sum();
        self.managers.push(
            SqueezyManager::install(
                vm,
                SqueezyConfig {
                    partition_bytes: part,
                    shared_bytes,
                    concurrency: n,
                },
                cost,
            )
            .expect("squeezy layout fits the sized region"),
        );
    }

    pub fn begin_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        pid: Pid,
        cost: &CostModel,
    ) -> PlugStart {
        let sq = &mut self.managers[vm_idx];
        match sq.attach(&mut v.vm, pid).expect("fresh pid attaches") {
            AttachOutcome::Attached(part) => {
                // Reused an already-populated partition.
                PlugStart::Ready {
                    partition: Some(part),
                }
            }
            AttachOutcome::Queued => {
                let (_, report) = sq
                    .plug_partition(&mut v.vm, cost)
                    .expect("concurrency bound leaves a partition");
                PlugStart::Scheduled {
                    latency: report.latency(),
                }
            }
        }
    }

    /// Binds queued waiters to freshly populated partition(s). A
    /// concurrent scale-up may have reused the partition this plug
    /// populated; binding goes FIFO and an instance left unbound
    /// re-plugs.
    pub fn finish_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        cost: &CostModel,
    ) -> PlugResolution {
        let sq = &mut self.managers[vm_idx];
        let woken = sq.wake_waiters(&mut v.vm);
        let mut ready = Vec::new();
        for (pid, part) in woken {
            if let Some((&id, _)) = v.instances.iter().find(|(_, i)| i.pid == pid) {
                let i = v.instances.get_mut(&id).expect("exists");
                i.partition = Some(part);
                i.plug_done = true;
                ready.push(id);
            }
        }
        // A rebuild re-plug (§7 soft memory) completes directly: the
        // instance kept its partition across the revocation.
        let rebuilt = v
            .instances
            .get(&inst)
            .map(|i| i.state == InstState::Starting && !i.plug_done && i.partition.is_some())
            .unwrap_or(false);
        if rebuilt {
            v.instances.get_mut(&inst).expect("checked above").plug_done = true;
            ready.push(inst);
        }
        // If this event's instance is still unbound (its partition was
        // taken), plug a replacement partition for it.
        let unbound = v
            .instances
            .get(&inst)
            .map(|i| i.state == InstState::Starting && i.partition.is_none())
            .unwrap_or(false);
        let replug = if unbound {
            let (_, report) = sq
                .plug_partition(&mut v.vm, cost)
                .expect("a starving instance implies an unpopulated partition");
            Some(report.latency())
        } else {
            None
        };
        PlugResolution { ready, replug }
    }

    pub fn reclaim_on_evict(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        now: SimTime,
        cost: &CostModel,
    ) -> ReclaimStart {
        let sq = &mut self.managers[vm_idx];
        match sq.unplug_partition(&mut v.vm, host, cost) {
            Ok((_, report)) => {
                // Squeezy reclaims synchronously (§6.2.2): the freed
                // memory is available immediately — "the drops
                // preceding spikes". The ReclaimDone event only closes
                // the latency accounting.
                ReclaimStart::Timed {
                    pending: PendingReclaim {
                        host_bytes: 0,
                        guest_bytes: report.bytes(),
                        started: now,
                        shortfall: false,
                        pages_migrated: 0,
                        shortfall_bytes: 0,
                        retries_left: 0,
                    },
                    latency: report.latency(),
                }
            }
            Err(_) => {
                // Partition reused concurrently: nothing to reclaim.
                ReclaimStart::None
            }
        }
    }

    pub fn on_exit(&mut self, vm_idx: usize, pid: Pid) {
        let _ = self.managers[vm_idx].detach(pid);
    }
}

/// The plain Squeezy backend (no soft memory).
#[derive(Default)]
pub(crate) struct SqueezyBackend {
    core: SqueezyCore,
}

impl ElasticityBackend for SqueezyBackend {
    fn hotplug_bytes(
        &self,
        spec: &VmSpec,
        _total_limit: u64,
        shared_bytes: u64,
        max_limit: u64,
    ) -> u64 {
        self.core.hotplug_bytes(spec, shared_bytes, max_limit)
    }

    fn install_vm(
        &mut self,
        vm: &mut Vm,
        spec: &VmSpec,
        shared_bytes: u64,
        _hotplug_bytes: u64,
        cost: &CostModel,
    ) {
        self.core.install_vm(vm, spec, shared_bytes, cost);
    }

    fn begin_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        pid: Pid,
        _bytes: u64,
        cost: &CostModel,
    ) -> PlugStart {
        self.core.begin_plug(vm_idx, v, pid, cost)
    }

    fn finish_plug(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        inst: u64,
        cost: &CostModel,
    ) -> PlugResolution {
        self.core.finish_plug(vm_idx, v, inst, cost)
    }

    fn on_exit(&mut self, vm_idx: usize, pid: Pid) {
        self.core.on_exit(vm_idx, pid);
    }

    fn reclaim_on_evict(
        &mut self,
        vm_idx: usize,
        v: &mut VmRt,
        host: &mut HostMemory,
        _bytes: u64,
        now: SimTime,
        _deadline: SimDuration,
        cost: &CostModel,
    ) -> ReclaimStart {
        self.core.reclaim_on_evict(vm_idx, v, host, now, cost)
    }
}
