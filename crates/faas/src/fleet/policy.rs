//! Autoscaling policies: the fleet's control plane.
//!
//! An [`AutoscalePolicy`] looks at a [`FleetView`] — per-host load
//! snapshots plus the latency observations since the last tick — and
//! decides whether the fleet should grow, shrink, or hold. The fleet
//! simulator clamps every decision to `[min_hosts, max_hosts]`,
//! enforces a cooldown between actions, and turns "shrink" into a
//! graceful drain, so policies only express intent.
//!
//! Three production-shaped policies ship here:
//!
//! * [`TargetUtilization`] — classic proportional control toward a
//!   target busy-slot fraction (what most FaaS fleet managers run);
//! * [`QueueDepth`] — reactive: grow when requests queue, shrink when
//!   the fleet idles (fast to react, blind to latency);
//! * [`SlamSlo`] — SLAM-style (IEEE CLOUD'22) SLO-aware sizing: grow
//!   when any function's observed tail latency breaches its target,
//!   shrink only when every function is comfortably inside it. This is
//!   the policy that exposes the paper's fleet-level claim: a backend
//!   with cheaper cold starts meets the same SLO with fewer hosts.
//!
//! [`FixedFleet`] disables the loop entirely ([`AutoscalePolicy::period_s`]
//! returns `None`), which is the mode the `FleetSim ≡ ClusterSim`
//! equivalence property runs in.

use workloads::FunctionKind;

use crate::cluster::HostLoad;

/// What the control loop decides at one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Leave the fleet as it is.
    Hold,
    /// Boot this many additional hosts.
    Up(u32),
    /// Gracefully drain this many hosts.
    Down(u32),
}

/// One `(kind, latency_ms)` completion observed since the last tick.
pub type LatencyObs = (FunctionKind, f64);

/// The deterministic snapshot a policy decides from.
pub struct FleetView<'a> {
    /// Simulation time of the tick, in seconds.
    pub now_s: f64,
    /// Load snapshots of the routable (Active) hosts, via the same
    /// [`HostLoad`] helper the routers read.
    pub active: &'a [HostLoad],
    /// Hosts currently provisioning (booted but not yet routable).
    pub booting: usize,
    /// Hosts draining toward retirement.
    pub draining: usize,
    /// Instance slots per host (Σ deployment concurrency): the
    /// capacity unit utilization is measured against.
    pub slots_per_host: usize,
    /// Completions observed since the previous tick.
    pub recent: &'a [LatencyObs],
    /// Per-function latency targets in milliseconds.
    pub slo: &'a [(FunctionKind, f64)],
}

impl FleetView<'_> {
    /// Hosts that are (or will shortly be) serving: active + booting.
    pub fn provisioned(&self) -> usize {
        self.active.len() + self.booting
    }

    /// Requests queued across the active hosts.
    pub fn queued(&self) -> usize {
        self.active.iter().map(|h| h.queued).sum()
    }

    /// Busy/starting instances across the active hosts.
    pub fn busy(&self) -> usize {
        self.active.iter().map(|h| h.active).sum()
    }

    /// Fraction of provisioned instance slots doing work (queued
    /// requests count: they represent demand the slots owe). Can
    /// exceed 1.0 under overload; 0 when nothing is provisioned.
    pub fn utilization(&self) -> f64 {
        let slots = (self.provisioned() * self.slots_per_host).max(1);
        (self.busy() + self.queued()) as f64 / slots as f64
    }

    /// Observed p99 (nearest-rank over the tick window) per function
    /// kind, for the kinds with at least one observation.
    pub fn recent_p99_by_kind(&self) -> Vec<(FunctionKind, f64)> {
        let mut out: Vec<(FunctionKind, f64)> = Vec::new();
        for &(kind, _) in self.slo {
            let mut lats: Vec<f64> = self
                .recent
                .iter()
                .filter(|(k, _)| *k == kind)
                .map(|&(_, l)| l)
                .collect();
            if lats.is_empty() {
                continue;
            }
            lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            let rank = ((lats.len() as f64) * 0.99).ceil() as usize;
            out.push((kind, lats[rank.saturating_sub(1).min(lats.len() - 1)]));
        }
        out
    }
}

/// Decides, every `period_s`, how the host fleet should change.
///
/// Implementations must be deterministic functions of the view and
/// their own state: fleet reproducibility (and `--jobs` byte-identity
/// of the bench tables) depends on it.
pub trait AutoscalePolicy {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Control-loop period in seconds. `None` disables the loop — no
    /// tick events are ever scheduled, which keeps a fixed fleet's
    /// event stream byte-identical to [`crate::ClusterSim`]'s.
    fn period_s(&self) -> Option<f64>;

    /// One control tick.
    fn decide(&mut self, view: &FleetView) -> ScaleDecision;
}

/// The autoscale-policy registry: construction recipes addressable by
/// the string key scenario specs and result tables use.
///
/// Policies are stateful, so grids and scenarios carry a `PolicyKind`
/// and build a fresh instance per run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Frozen fleet — the static peak-capacity baseline every elastic
    /// policy is judged against (and the `FleetSim ≡ ClusterSim`
    /// equivalence mode).
    Fixed,
    TargetUtil,
    QueueDepth,
    SlamSlo,
}

impl PolicyKind {
    /// All policies, in table order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fixed,
        PolicyKind::TargetUtil,
        PolicyKind::QueueDepth,
        PolicyKind::SlamSlo,
    ];

    /// Registry key — the policy's own display name, so spec files and
    /// result tables cannot drift from the implementations.
    pub fn key(self) -> &'static str {
        self.build().name()
    }

    /// Looks a policy up by key; `Err` carries the full list of valid
    /// keys.
    pub fn from_key(key: &str) -> Result<PolicyKind, String> {
        sim_core::registry::lookup("policy", &PolicyKind::ALL, PolicyKind::key, key)
    }

    /// Builds a fresh policy instance (bench defaults).
    pub fn build(self) -> Box<dyn AutoscalePolicy> {
        match self {
            PolicyKind::Fixed => Box::new(FixedFleet),
            PolicyKind::TargetUtil => Box::new(TargetUtilization::default_policy()),
            PolicyKind::QueueDepth => Box::new(QueueDepth::default_policy()),
            PolicyKind::SlamSlo => Box::new(SlamSlo::default_policy()),
        }
    }
}

/// No autoscaling: the host set never changes (except for injected
/// failures). The equivalence-property mode and the bench baseline.
pub struct FixedFleet;

impl AutoscalePolicy for FixedFleet {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn period_s(&self) -> Option<f64> {
        None
    }

    fn decide(&mut self, _view: &FleetView) -> ScaleDecision {
        ScaleDecision::Hold
    }
}

/// Proportional control toward a target slot utilization.
///
/// Sizes the fleet to `ceil(demand / (target × slots_per_host))` hosts,
/// where demand = busy instances + queued requests, with a ±1-host
/// deadband so measurement noise doesn't flap the fleet.
pub struct TargetUtilization {
    /// Desired busy fraction of provisioned slots (0 < target ≤ 1).
    pub target: f64,
    /// Control period in seconds.
    pub period: f64,
}

impl TargetUtilization {
    /// The bench default: 60% target, 5 s ticks.
    pub fn default_policy() -> Self {
        TargetUtilization {
            target: 0.6,
            period: 5.0,
        }
    }
}

impl AutoscalePolicy for TargetUtilization {
    fn name(&self) -> &'static str {
        "target-util"
    }

    fn period_s(&self) -> Option<f64> {
        Some(self.period)
    }

    fn decide(&mut self, view: &FleetView) -> ScaleDecision {
        let demand = (view.busy() + view.queued()) as f64;
        let per_host = self.target * view.slots_per_host as f64;
        let desired = (demand / per_host).ceil().max(1.0) as usize;
        let have = view.provisioned();
        if desired > have {
            ScaleDecision::Up((desired - have) as u32)
        } else if desired + 1 < have {
            // Deadband: only shrink past a one-host slack margin.
            ScaleDecision::Down((have - desired - 1).max(1) as u32)
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Reactive queue-depth control: grow while requests wait, shrink one
/// host at a time when the fleet idles.
pub struct QueueDepth {
    /// Queued requests per active host that trigger a scale-up.
    pub high: f64,
    /// Utilization below which an empty-queue fleet sheds one host.
    pub idle_util: f64,
    /// Control period in seconds.
    pub period: f64,
}

impl QueueDepth {
    /// The bench default: grow at 2 queued/host, shrink under 30%
    /// utilization, 5 s ticks.
    pub fn default_policy() -> Self {
        QueueDepth {
            high: 2.0,
            idle_util: 0.3,
            period: 5.0,
        }
    }
}

impl AutoscalePolicy for QueueDepth {
    fn name(&self) -> &'static str {
        "queue-depth"
    }

    fn period_s(&self) -> Option<f64> {
        Some(self.period)
    }

    fn decide(&mut self, view: &FleetView) -> ScaleDecision {
        let queued = view.queued() as f64;
        let hosts = view.active.len().max(1) as f64;
        if queued > self.high * hosts {
            // One new host per `high` excess queued requests.
            let excess = queued - self.high * hosts;
            return ScaleDecision::Up((excess / self.high).ceil().max(1.0) as u32);
        }
        if view.queued() == 0 && view.utilization() < self.idle_util && view.booting == 0 {
            return ScaleDecision::Down(1);
        }
        ScaleDecision::Hold
    }
}

/// SLAM-style SLO-aware sizing, after "SLAM: SLO-Aware Memory
/// Allocation" (IEEE CLOUD'22): per-function latency targets drive the
/// fleet size directly.
///
/// Grow when any function's observed tail latency breaches its target;
/// shrink only when *every* function sits inside `shrink_margin` of
/// its target and utilization is low — conservative down, aggressive
/// up, the shape SLO-bound operators actually run.
pub struct SlamSlo {
    /// Fraction of the SLO below which a function counts as
    /// comfortable (e.g. 0.5 = p99 under half its target).
    pub shrink_margin: f64,
    /// Utilization gate for shrinking.
    pub idle_util: f64,
    /// Minimum completions in the window before latency is trusted.
    pub min_window: usize,
    /// Control period in seconds.
    pub period: f64,
}

impl SlamSlo {
    /// The bench default: shrink under 50% of target and 40%
    /// utilization, trust windows of ≥ 5 completions, 5 s ticks.
    pub fn default_policy() -> Self {
        SlamSlo {
            shrink_margin: 0.5,
            idle_util: 0.4,
            min_window: 5,
            period: 5.0,
        }
    }

    fn target_of(slo: &[(FunctionKind, f64)], kind: FunctionKind) -> Option<f64> {
        slo.iter().find(|(k, _)| *k == kind).map(|&(_, t)| t)
    }
}

impl AutoscalePolicy for SlamSlo {
    fn name(&self) -> &'static str {
        "slam-slo"
    }

    fn period_s(&self) -> Option<f64> {
        Some(self.period)
    }

    fn decide(&mut self, view: &FleetView) -> ScaleDecision {
        let p99s = view.recent_p99_by_kind();
        let violated = p99s
            .iter()
            .filter(|&&(kind, p99)| Self::target_of(view.slo, kind).is_some_and(|t| p99 > t))
            .count();
        // Growing needs a trustworthy window: a single unlucky request
        // in a sparse tick must not boot a host.
        if violated > 0 && view.recent.len() >= self.min_window {
            // Scale with the breadth of the violation: one host per
            // two violating functions, at least one.
            return ScaleDecision::Up(violated.div_ceil(2) as u32);
        }
        // Shrinking needs the opposite: sparse windows are exactly what
        // the post-peak trough looks like (a few comfortable
        // completions per tick), so any breach-free window — including
        // an empty one, where no latency can breach anything — may shed
        // a host once the fleet idles. Requiring a full window here
        // would pin the fleet at peak size all night.
        let all_comfortable = p99s.iter().all(|&(kind, p99)| {
            Self::target_of(view.slo, kind).is_some_and(|t| p99 < t * self.shrink_margin)
        });
        if violated == 0
            && all_comfortable
            && view.utilization() < self.idle_util
            && view.booting == 0
        {
            return ScaleDecision::Down(1);
        }
        ScaleDecision::Hold
    }
}

/// Default per-function latency SLOs in milliseconds: four times the
/// uncontended warm-path latency (`exec_cpu_s / vcpu_shares`) plus a
/// flat 300 ms budget — tight enough that queueing or a slow cold
/// start breaches it, loose enough that a warm fleet never does.
pub fn default_slos(kinds: impl IntoIterator<Item = FunctionKind>) -> Vec<(FunctionKind, f64)> {
    let mut out: Vec<(FunctionKind, f64)> = Vec::new();
    for kind in kinds {
        if out.iter().any(|(k, _)| *k == kind) {
            continue;
        }
        let p = kind.profile();
        let warm_ms = p.exec_cpu_s / p.vcpu_shares * 1000.0;
        out.push((kind, 4.0 * warm_ms + 300.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, active: usize) -> HostLoad {
        HostLoad {
            warm_idle: 0,
            alive: active,
            queued,
            active,
            free_bytes: 0,
        }
    }

    fn view<'a>(
        active: &'a [HostLoad],
        recent: &'a [LatencyObs],
        slo: &'a [(FunctionKind, f64)],
    ) -> FleetView<'a> {
        FleetView {
            now_s: 100.0,
            active,
            booting: 0,
            draining: 0,
            slots_per_host: 4,
            recent,
            slo,
        }
    }

    #[test]
    fn fixed_fleet_never_scales() {
        let hosts = [load(50, 4)];
        let mut p = FixedFleet;
        assert_eq!(p.period_s(), None);
        assert_eq!(p.decide(&view(&hosts, &[], &[])), ScaleDecision::Hold);
    }

    #[test]
    fn target_utilization_tracks_demand() {
        let mut p = TargetUtilization::default_policy();
        // demand 12 over 1 host of 4 slots at 60% → desired ceil(12/2.4)=5.
        let hot = [load(8, 4)];
        assert_eq!(p.decide(&view(&hot, &[], &[])), ScaleDecision::Up(4));
        // Demand 1 over 4 hosts → desired 1, deadband leaves 2.
        let cold = [load(0, 1), load(0, 0), load(0, 0), load(0, 0)];
        assert_eq!(p.decide(&view(&cold, &[], &[])), ScaleDecision::Down(2));
        // In-band (demand 4 → desired ceil(4/2.4) = 2 = have): hold.
        let ok = [load(0, 2), load(0, 2)];
        assert_eq!(p.decide(&view(&ok, &[], &[])), ScaleDecision::Hold);
    }

    #[test]
    fn queue_depth_reacts_to_backlog_and_idleness() {
        let mut p = QueueDepth::default_policy();
        let backed_up = [load(7, 4)];
        assert_eq!(p.decide(&view(&backed_up, &[], &[])), ScaleDecision::Up(3));
        let idle = [load(0, 0), load(0, 1)];
        assert_eq!(p.decide(&view(&idle, &[], &[])), ScaleDecision::Down(1));
        let busy = [load(0, 4)];
        assert_eq!(p.decide(&view(&busy, &[], &[])), ScaleDecision::Hold);
    }

    #[test]
    fn slam_scales_up_on_slo_breach_only() {
        let slo = default_slos([FunctionKind::Html]);
        let target = slo[0].1;
        let mut p = SlamSlo::default_policy();
        let hosts = [load(1, 2)];
        let bad: Vec<LatencyObs> = (0..10)
            .map(|_| (FunctionKind::Html, target * 2.0))
            .collect();
        assert_eq!(p.decide(&view(&hosts, &bad, &slo)), ScaleDecision::Up(1));
        // Comfortable latencies + low utilization → shrink.
        let idle_hosts = [load(0, 0), load(0, 1)];
        let good: Vec<LatencyObs> = (0..10)
            .map(|_| (FunctionKind::Html, target * 0.2))
            .collect();
        assert_eq!(
            p.decide(&view(&idle_hosts, &good, &slo)),
            ScaleDecision::Down(1)
        );
        // Comfortable latencies but hot fleet → hold.
        let hot = [load(3, 4)];
        assert_eq!(p.decide(&view(&hot, &good, &slo)), ScaleDecision::Hold);
    }

    #[test]
    fn slam_sheds_an_idle_silent_fleet() {
        let slo = default_slos([FunctionKind::Html]);
        let mut p = SlamSlo::default_policy();
        let idle = [load(0, 0), load(0, 0)];
        assert_eq!(p.decide(&view(&idle, &[], &slo)), ScaleDecision::Down(1));
    }

    #[test]
    fn default_slos_scale_with_the_warm_path() {
        let slos = default_slos(FunctionKind::ALL);
        assert_eq!(slos.len(), 4);
        let get = |k: FunctionKind| slos.iter().find(|(kk, _)| *kk == k).unwrap().1;
        // HTML warm ≈ 220 ms → 1180 ms; Bert warm ≈ 800 ms → 3500 ms.
        assert!((get(FunctionKind::Html) - 1180.0).abs() < 1.0);
        assert!((get(FunctionKind::Bert) - 3500.0).abs() < 1.0);
        assert!(get(FunctionKind::Bert) > get(FunctionKind::Html));
        // Duplicate kinds collapse.
        assert_eq!(
            default_slos([FunctionKind::Html, FunctionKind::Html]).len(),
            1
        );
    }

    #[test]
    fn policy_registry_round_trips() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_key(p.key()), Ok(p));
        }
        let err = PolicyKind::from_key("slam").unwrap_err();
        assert!(err.contains("slam-slo"), "error lists keys: {err}");
        assert_eq!(PolicyKind::Fixed.key(), "fixed");
        assert_eq!(PolicyKind::TargetUtil.key(), "target-util");
    }

    #[test]
    fn view_statistics() {
        let hosts = [load(2, 3), load(0, 1)];
        let v = FleetView {
            booting: 1,
            ..view(&hosts, &[], &[])
        };
        assert_eq!(v.provisioned(), 3);
        assert_eq!(v.queued(), 2);
        assert_eq!(v.busy(), 4);
        // (4 busy + 2 queued) / (3 hosts × 4 slots).
        assert!((v.utilization() - 0.5).abs() < 1e-9);
    }
}
