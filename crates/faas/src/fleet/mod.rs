//! The fleet simulator: an elastic host set over the shared event
//! engine.
//!
//! [`crate::ClusterSim`] (PR 3) runs N hosts, but N is frozen for the
//! whole run — it is a *data plane*. [`FleetSim`] adds the control
//! plane a real serverless fleet runs on top:
//!
//! * **Host lifecycle** — every host moves through
//!   [`HostState::Booting`] → [`HostState::Active`] →
//!   [`HostState::Draining`] → [`HostState::Retired`], or is forced to
//!   [`HostState::Failed`] by injected crashes. Routers only ever see
//!   Active hosts.
//! * **Autoscaling** — an [`AutoscalePolicy`] ticks on a fixed control
//!   period and decides to grow (boot new hosts from a template config,
//!   ready after a provisioning delay) or shrink (gracefully drain).
//!   The fleet clamps decisions to `[min_hosts, max_hosts]` and
//!   enforces a cooldown, so policies only express intent.
//! * **Graceful drains** — a draining host stops receiving requests but
//!   keeps serving its queue and in-flight executions; its warm
//!   instances expire through the ordinary keep-alive path, their
//!   memory is reclaimed through the backend, and only when the host is
//!   fully quiescent does it retire. Nothing is lost on a drain.
//! * **Failure injection** — seeded crash times (see
//!   [`FailureConfig`]) kill a host outright: its queued requests are
//!   requeued to the surviving fleet (fresh arrival clocks, as a
//!   client retry would), its in-flight executions are counted lost.
//!
//! Determinism is inherited from the cluster layer: one shared
//! [`EventQueue`] with FIFO tie-breaks, pop-time routing, and every
//! random choice (crash times, victims, power-of-two probes, reservoir
//! replacement) on its own derived [`DetRng`] stream. With a fixed
//! fleet ([`FixedFleet`]) and failures off, the event stream is
//! *byte-identical* to [`crate::ClusterSim`]'s — the
//! `fleet_equivalence` property test pins it over random traces.

mod failure;
mod policy;

pub use failure::FailureConfig;
pub use policy::{
    default_slos, AutoscalePolicy, FixedFleet, FleetView, LatencyObs, PolicyKind, QueueDepth,
    ScaleDecision, SlamSlo, TargetUtilization,
};

use std::collections::BTreeMap;

use sim_core::{DetRng, EventQueue, Histogram, Reservoir, SimDuration, SimTime, TimeSeries};
use vmm::VmmError;
use workloads::{FunctionKind, TraceSource};

use crate::cluster::{
    ClusterConfig, HostLoad, Router, TenantTrace, LATENCY_RESERVOIR_CAP, RESERVOIR_STREAM,
};
use crate::config::SimConfig;
use crate::feed::ArrivalFeed;
use crate::metrics::SimResult;
use crate::sim::events::{Event, EventSink};
use crate::sim::host::HostSim;
use failure::FailureInjector;

/// Derivation tag of the failure injector's stream (from the fleet
/// seed).
const FAILURE_STREAM: u64 = 0xFA11;

/// Derivation tag of booted-host config seeds (from the template
/// seed).
const BOOT_STREAM: u64 = 0xB007;

/// How long an unroutable arrival waits before retrying while capacity
/// is provisioning.
const DEFER_RETRY_S: f64 = 1.0;

/// Where a host is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostState {
    /// Provisioning: booted by the autoscaler, not yet routable.
    Booting,
    /// Serving traffic.
    Active,
    /// No longer routable; finishing queued/in-flight work and letting
    /// warm instances expire before retiring.
    Draining,
    /// Drained to quiescence and removed from the fleet.
    Retired,
    /// Crashed by failure injection.
    Failed,
}

/// Fleet-wide autoscaling limits, applied to every policy decision.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleOpts {
    /// The fleet never drains below this many provisioned hosts.
    pub min_hosts: usize,
    /// The fleet never grows above this many provisioned hosts.
    pub max_hosts: usize,
    /// Provisioning delay between the boot decision and the host
    /// becoming routable, in seconds.
    pub boot_delay_s: f64,
    /// Minimum spacing between scale actions, in seconds.
    pub cooldown_s: f64,
}

impl Default for AutoscaleOpts {
    fn default() -> Self {
        AutoscaleOpts {
            min_hosts: 1,
            max_hosts: 16,
            boot_delay_s: 30.0,
            cooldown_s: 20.0,
        }
    }
}

/// A fleet: the hosts present at time zero, a template for hosts the
/// autoscaler boots later, the tenant traces, and the control-plane
/// knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Hosts active at the start of the run.
    pub initial_hosts: Vec<SimConfig>,
    /// Config cloned for every autoscaler-booted host; its jitter seed
    /// is re-derived per host so no two hosts share a stream.
    pub template: SimConfig,
    /// The tenant traces routed across the fleet. Every host (initial
    /// and template) must expose each tenant's `(vm, dep)` slot.
    pub tenants: Vec<TenantTrace>,
    /// Autoscaling limits.
    pub autoscale: AutoscaleOpts,
    /// Failure injection.
    pub failures: FailureConfig,
    /// Per-function latency targets in milliseconds (SLO accounting
    /// and the SLAM-style policy).
    pub slo: Vec<(FunctionKind, f64)>,
    /// Root seed of the fleet's own streams (failures, reservoir).
    pub seed: u64,
}

impl FleetConfig {
    /// Wraps a [`ClusterConfig`] into a frozen fleet: same hosts, same
    /// tenants, autoscaling and failures off. With the same router and
    /// the [`FixedFleet`] policy this reproduces
    /// [`crate::ClusterSim`] byte-for-byte.
    pub fn fixed(cluster: ClusterConfig, seed: u64) -> FleetConfig {
        let template = cluster.hosts[0].clone();
        let n = cluster.hosts.len();
        let slo = default_slos(
            template
                .vms
                .iter()
                .flat_map(|v| v.deployments.iter().map(|d| d.kind)),
        );
        FleetConfig {
            initial_hosts: cluster.hosts,
            template,
            tenants: cluster.tenants,
            autoscale: AutoscaleOpts {
                min_hosts: n,
                max_hosts: n,
                ..AutoscaleOpts::default()
            },
            failures: FailureConfig::off(),
            slo,
            seed,
        }
    }

    /// Builds the fleet a
    /// [`Topology::Fleet`](crate::scenario::Topology::Fleet) scenario
    /// runs: the `fixed` policy provisions `max_hosts` up front (the
    /// static peak-capacity baseline), every other policy starts at
    /// `min_hosts` and earns its capacity; the boot template sits on
    /// its own seed tag so autoscaler-booted hosts never share an
    /// initial host's jitter stream.
    ///
    /// Part of the scenario front door — the `scenario_equivalence`
    /// test pins `Scenario::run_trial` byte-identical to
    /// `FleetSim::new(FleetConfig::from_scenario(..), ..).run()`.
    pub fn from_scenario(
        spec: &crate::scenario::Scenario,
        backend: crate::config::BackendKind,
        trial: u64,
    ) -> FleetConfig {
        use crate::fleet::policy::PolicyKind;
        use crate::scenario::TEMPLATE_TAG;
        let tenants = spec.tenant_loads(trial);
        let initial = if spec.policy == PolicyKind::Fixed {
            spec.max_hosts
        } else {
            spec.min_hosts
        };
        FleetConfig {
            initial_hosts: (0..initial)
                .map(|h| spec.host_config(&tenants, backend, spec.host_seed(h as u64), trial))
                .collect(),
            template: spec.host_config(&tenants, backend, spec.host_seed(TEMPLATE_TAG), trial),
            slo: spec.effective_slos(tenants.iter().map(|t| t.kind)),
            tenants: tenants
                .into_iter()
                .enumerate()
                .map(|(ti, t)| TenantTrace {
                    vm: 0,
                    dep: ti,
                    arrivals: t.arrivals,
                })
                .collect(),
            autoscale: AutoscaleOpts {
                min_hosts: if spec.policy == PolicyKind::Fixed {
                    spec.max_hosts
                } else {
                    spec.min_hosts
                },
                max_hosts: spec.max_hosts,
                boot_delay_s: spec.boot_delay_s,
                cooldown_s: spec.cooldown_s,
            },
            failures: FailureConfig {
                mtbf_s: spec.mtbf_s,
            },
            seed: spec.fleet_seed(trial),
        }
    }

    /// Instance slots per host (Σ deployment concurrency of the
    /// template) — the autoscaler's capacity unit.
    pub fn slots_per_host(&self) -> usize {
        self.template
            .vms
            .iter()
            .flat_map(|v| &v.deployments)
            .map(|d| d.concurrency as usize)
            .sum()
    }
}

/// Events of the shared fleet engine.
enum FleetEvent {
    /// A tenant request arrives and must be routed.
    Incoming { tenant: usize },
    /// A host-internal event.
    Host { host: usize, ev: Event },
    /// Autoscaler control tick.
    Control,
    /// A booting host finishes provisioning.
    HostReady { host: usize },
    /// The next injected crash fires.
    Crash,
}

/// Adapter tagging one host's scheduled events into the shared queue.
struct HostSink<'a> {
    q: &'a mut EventQueue<FleetEvent>,
    host: usize,
}

impl EventSink for HostSink<'_> {
    fn push(&mut self, at: SimTime, ev: Event) {
        self.q.push(
            at,
            FleetEvent::Host {
                host: self.host,
                ev,
            },
        );
    }
}

/// One host's slot in the fleet.
struct Slot {
    sim: HostSim,
    state: HostState,
    boot_at: SimTime,
    stop_at: Option<SimTime>,
}

impl Slot {
    /// Still processes its own events (Booting hosts have none yet).
    fn is_live(&self) -> bool {
        matches!(
            self.state,
            HostState::Booting | HostState::Active | HostState::Draining
        )
    }
}

/// One host's contribution to the fleet outcome.
pub struct HostOutcome {
    /// The host's simulation results.
    pub result: SimResult,
    /// Lifecycle state at the end of the run.
    pub final_state: HostState,
    /// When the host started provisioning, in seconds.
    pub boot_s: f64,
    /// When it retired/failed — or the end of the run if it never did.
    pub stop_s: f64,
}

/// Everything a fleet run produces.
pub struct FleetResult {
    /// Every host that ever existed, in boot order.
    pub hosts: Vec<HostOutcome>,
    /// Requests routed to `[host][tenant]`.
    pub routed: Vec<Vec<u64>>,
    /// Total requests completed across the fleet.
    pub completed: u64,
    /// Hosts booted by the autoscaler.
    pub scale_ups: u64,
    /// Hosts gracefully drained by the autoscaler.
    pub scale_downs: u64,
    /// Hosts killed by failure injection.
    pub crashes: u64,
    /// Queued requests re-routed off crashed hosts.
    pub requeued: u64,
    /// In-flight executions lost to crashes (plus arrivals dropped
    /// when no host could ever serve them).
    pub lost: u64,
    /// Deferral retries: how many times an arrival found no routable
    /// host and parked for a retry interval while capacity was
    /// provisioning (one request can defer repeatedly).
    pub deferred: u64,
    /// Completions that breached their function's SLO target.
    pub slo_violations: u64,
    /// Completions with an SLO target (the violation denominator).
    pub slo_total: u64,
    /// Bounded uniform sample of `(arrival_s, latency_ms)` across the
    /// fleet (see [`LATENCY_RESERVOIR_CAP`]).
    pub latency_over_time: Reservoir,
    /// Active (routable) host count over time.
    pub active_hosts_over_time: TimeSeries,
    /// Total events handled: queue pops plus fed arrivals.
    pub events_processed: u64,
    /// High-water mark of the pending event queue — with arrivals fed
    /// lazily this tracks O(in-flight work), not O(trace length).
    pub peak_queue_depth: usize,
    /// Arrivals injected from the feed (trace or materialized).
    pub injected: u64,
    /// Simulated end time.
    pub end: SimTime,
}

impl FleetResult {
    /// Integrated provisioned-host time in host-hours — the fleet cost
    /// metric ("Squeezy needs fewer hosts for the same SLO").
    pub fn host_hours(&self) -> f64 {
        self.hosts
            .iter()
            .map(|h| (h.stop_s - h.boot_s).max(0.0))
            .sum::<f64>()
            / 3600.0
    }

    /// Largest number of simultaneously active hosts.
    pub fn peak_active(&self) -> usize {
        self.active_hosts_over_time.max_value() as usize
    }

    /// Smallest number of simultaneously active hosts.
    pub fn min_active(&self) -> usize {
        self.active_hosts_over_time
            .points()
            .iter()
            .map(|&(_, v)| v as usize)
            .min()
            .unwrap_or(0)
    }

    /// Fraction of SLO-tracked completions that breached their target.
    pub fn slo_violation_rate(&self) -> f64 {
        self.slo_violations as f64 / self.slo_total.max(1) as f64
    }

    /// Fleet-wide request-latency histograms, merged per function.
    pub fn merged_latency(&self) -> BTreeMap<FunctionKind, Histogram> {
        let mut merged: BTreeMap<FunctionKind, Histogram> = BTreeMap::new();
        for host in &self.hosts {
            for (&kind, m) in &host.result.per_func {
                merged.entry(kind).or_default().merge(&m.latency);
            }
        }
        merged
    }

    /// Fleet-wide cold and warm start counts.
    pub fn cold_warm_starts(&self) -> (u64, u64) {
        self.hosts
            .iter()
            .flat_map(|h| h.result.per_func.values())
            .fold((0, 0), |(c, w), m| (c + m.cold_starts, w + m.warm_starts))
    }

    /// Integrated host memory footprint across the fleet (GiB·s).
    pub fn total_gib_seconds(&self) -> f64 {
        self.hosts.iter().map(|h| h.result.gib_seconds()).sum()
    }
}

/// The elastic multi-host fleet simulator.
pub struct FleetSim {
    duration_s: f64,
    template: SimConfig,
    tenants: Vec<TenantTrace>,
    /// `(vm, dep)` deployment slot → tenant index (crash requeueing),
    /// flattened to direct indexing; `usize::MAX` marks unmapped slots.
    tenant_of_slot: Vec<Vec<usize>>,
    router: Box<dyn Router>,
    /// Cached [`Router::needs_loads`]: load-blind routers skip the
    /// per-arrival snapshot sweep entirely.
    router_needs_loads: bool,
    /// Per-arrival routing scratch (reused, never reallocated in
    /// steady state).
    route_eligible: Vec<usize>,
    route_loads: Vec<HostLoad>,
    policy: Box<dyn AutoscalePolicy>,
    opts: AutoscaleOpts,
    slo: Vec<(FunctionKind, f64)>,
    slots_per_host: usize,
    hosts: Vec<Slot>,
    events: EventQueue<FleetEvent>,
    feed: ArrivalFeed,
    /// Streamed-trace runs bound their metric memory; booted hosts
    /// must inherit the discipline.
    bounded_metrics: bool,
    routed: Vec<Vec<u64>>,
    injector: FailureInjector,
    /// Completions since the last control tick (policy window);
    /// only fed when the control loop is on.
    recent_window: Vec<LatencyObs>,
    last_action_at: Option<SimTime>,
    latency_over_time: Reservoir,
    active_hosts_over_time: TimeSeries,
    scale_ups: u64,
    scale_downs: u64,
    crashes: u64,
    requeued: u64,
    lost: u64,
    deferred: u64,
    slo_violations: u64,
    slo_total: u64,
}

impl FleetSim {
    /// Boots the initial hosts and schedules the tenant traces, the
    /// control loop (if the policy has one) and the crash plan.
    ///
    /// Construction order matches [`crate::ClusterSim`] exactly —
    /// arrivals in tenant order, then one sample chain per host — so a
    /// fixed fleet's event queue is byte-identical to the cluster's.
    pub fn new(
        mut config: FleetConfig,
        router: Box<dyn Router>,
        policy: Box<dyn AutoscalePolicy>,
    ) -> Result<FleetSim, VmmError> {
        let duration_s = Self::check(&config);
        let slots: Vec<Vec<f64>> = config
            .tenants
            .iter_mut()
            .map(|t| std::mem::take(&mut t.arrivals))
            .collect();
        let feed = ArrivalFeed::merged(slots, duration_s);
        Self::build(config, router, policy, feed, false)
    }

    /// Builds a fleet whose arrivals stream from a [`TraceSource`]:
    /// tenant index = the source's tenant column, mapped through
    /// [`FleetConfig::tenants`] for `(vm, dep)` slots. The source is
    /// pulled lazily during [`Self::run`], so queue depth — and with it
    /// memory — stays proportional to in-flight work, never to trace
    /// length. Per-host metrics run in bounded mode (reservoir
    /// histograms, streamed usage integral), booted hosts included.
    ///
    /// `origin` labels mid-run parse failures (the path, usually).
    pub fn with_source(
        mut config: FleetConfig,
        router: Box<dyn Router>,
        policy: Box<dyn AutoscalePolicy>,
        source: Box<dyn TraceSource>,
        origin: &str,
    ) -> Result<FleetSim, VmmError> {
        let duration_s = Self::check(&config);
        for t in config.tenants.iter_mut() {
            t.arrivals.clear();
        }
        let feed = ArrivalFeed::stream(source, duration_s, origin);
        Self::build(config, router, policy, feed, true)
    }

    fn check(config: &FleetConfig) -> f64 {
        assert!(
            !config.initial_hosts.is_empty(),
            "a fleet needs at least one initial host"
        );
        assert!(config.autoscale.min_hosts >= 1, "min_hosts must be ≥ 1");
        assert!(
            config.autoscale.max_hosts >= config.autoscale.min_hosts,
            "max_hosts must be ≥ min_hosts"
        );
        config.initial_hosts[0].duration_s
    }

    fn build(
        config: FleetConfig,
        router: Box<dyn Router>,
        policy: Box<dyn AutoscalePolicy>,
        feed: ArrivalFeed,
        bounded_metrics: bool,
    ) -> Result<FleetSim, VmmError> {
        let duration_s = config.initial_hosts[0].duration_s;
        let slots_per_host = config.slots_per_host().max(1);
        let reservoir_rng = DetRng::new(config.seed).derive(RESERVOIR_STREAM);
        let mut injector = FailureInjector::new(DetRng::new(config.seed).derive(FAILURE_STREAM));

        let mut hosts = Vec::new();
        for cfg in config.initial_hosts {
            let mut sim = HostSim::new(cfg)?;
            sim.enable_latency_tap();
            if bounded_metrics {
                sim.enable_bounded_metrics();
            }
            hosts.push(Slot {
                sim,
                state: HostState::Active,
                boot_at: SimTime::ZERO,
                stop_at: None,
            });
        }

        let mut events = EventQueue::new();
        for host in 0..hosts.len() {
            events.push(
                SimTime::ZERO,
                FleetEvent::Host {
                    host,
                    ev: Event::Sample,
                },
            );
        }
        if let Some(period) = policy.period_s() {
            assert!(period > 0.0, "control period must be positive");
            if period <= duration_s {
                events.push(
                    SimTime::ZERO + SimDuration::from_secs_f64(period),
                    FleetEvent::Control,
                );
            }
        }
        for t in injector.sample_times(&config.failures, duration_s) {
            events.push(
                SimTime::ZERO + SimDuration::from_secs_f64(t),
                FleetEvent::Crash,
            );
        }

        let mut tenant_of_slot: Vec<Vec<usize>> = Vec::new();
        for (ti, t) in config.tenants.iter().enumerate() {
            if tenant_of_slot.len() <= t.vm {
                tenant_of_slot.resize(t.vm + 1, Vec::new());
            }
            if tenant_of_slot[t.vm].len() <= t.dep {
                tenant_of_slot[t.vm].resize(t.dep + 1, usize::MAX);
            }
            tenant_of_slot[t.vm][t.dep] = ti;
        }
        let routed = vec![vec![0; config.tenants.len()]; hosts.len()];
        let mut active_hosts_over_time = TimeSeries::new();
        active_hosts_over_time.push(SimTime::ZERO, hosts.len() as f64);
        Ok(FleetSim {
            duration_s,
            template: config.template,
            tenants: config.tenants,
            tenant_of_slot,
            router_needs_loads: router.needs_loads(),
            router,
            route_eligible: Vec::new(),
            route_loads: Vec::new(),
            policy,
            opts: config.autoscale,
            slo: config.slo,
            slots_per_host,
            hosts,
            events,
            feed,
            bounded_metrics,
            routed,
            injector,
            recent_window: Vec::new(),
            last_action_at: None,
            latency_over_time: Reservoir::new(LATENCY_RESERVOIR_CAP, reservoir_rng),
            active_hosts_over_time,
            scale_ups: 0,
            scale_downs: 0,
            crashes: 0,
            requeued: 0,
            lost: 0,
            deferred: 0,
            slo_violations: 0,
            slo_total: 0,
        })
    }

    /// Runs the fleet to completion.
    pub fn run(mut self) -> FleetResult {
        // Two-stream merge: arrivals are pulled from the feed the
        // moment they are due (ties go to the arrival — fed arrivals
        // always sorted before same-tick queue events in the pre-push
        // era, whose total order this loop reproduces byte-for-byte),
        // everything else pops from the queue in batched (time, seq)
        // order. Deferral retries and crash requeues still travel as
        // queued [`FleetEvent::Incoming`] events.
        let mut batch = Vec::new();
        loop {
            let arrival_next = match (self.feed.peek(), self.events.peek_time()) {
                (Some((at, _)), Some(qt)) => at <= qt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_next {
                let (at, tenant) = self.feed.pop().expect("peeked");
                self.on_incoming(at, tenant);
            } else if let Some(now) = self.events.pop_batch(&mut batch) {
                for ev in batch.drain(..) {
                    match ev {
                        FleetEvent::Incoming { tenant } => self.on_incoming(now, tenant),
                        FleetEvent::Host { host, ev } => {
                            // Retired and failed hosts are gone: their residual
                            // events (keep-alives, sample chains) evaporate.
                            if !self.hosts[host].is_live() {
                                continue;
                            }
                            let mut sink = HostSink {
                                q: &mut self.events,
                                host,
                            };
                            self.hosts[host].sim.handle(now, ev, &mut sink);
                            self.drain_tap(host);
                            self.maybe_retire(now, host);
                        }
                        FleetEvent::Control => self.on_control(now),
                        FleetEvent::HostReady { host } => self.on_host_ready(now, host),
                        FleetEvent::Crash => self.on_crash(now),
                    }
                }
            }
        }
        let injected = self.feed.injected();
        let events_processed = self.events.processed() + injected;
        let peak_queue_depth = self.events.peak_len();
        let end = SimTime::ZERO + SimDuration::from_secs_f64(self.duration_s);
        let hosts: Vec<HostOutcome> = self
            .hosts
            .into_iter()
            .map(|slot| HostOutcome {
                final_state: slot.state,
                boot_s: slot.boot_at.as_secs_f64(),
                stop_s: slot
                    .stop_at
                    .map(|t| t.as_secs_f64())
                    .unwrap_or(self.duration_s),
                result: slot.sim.finish(),
            })
            .collect();
        let completed = hosts.iter().map(|h| h.result.completed).sum();
        FleetResult {
            hosts,
            routed: self.routed,
            completed,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            crashes: self.crashes,
            requeued: self.requeued,
            lost: self.lost,
            deferred: self.deferred,
            slo_violations: self.slo_violations,
            slo_total: self.slo_total,
            latency_over_time: self.latency_over_time,
            active_hosts_over_time: self.active_hosts_over_time,
            events_processed,
            peak_queue_depth,
            injected,
            end,
        }
    }

    // --- Data plane --------------------------------------------------------

    fn on_incoming(&mut self, now: SimTime, tenant: usize) {
        let t = &self.tenants[tenant];
        self.route_eligible.clear();
        self.route_eligible.extend(
            self.hosts
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state == HostState::Active)
                .map(|(i, _)| i),
        );
        if self.route_eligible.is_empty() {
            // No routable host. If capacity is provisioning — or the
            // control loop is still alive to provision some — park the
            // request briefly; otherwise it is genuinely unservable.
            let provisioning = self.hosts.iter().any(|s| s.state == HostState::Booting);
            let loop_alive =
                self.policy.period_s().is_some() && now.as_secs_f64() < self.duration_s;
            if provisioning || loop_alive {
                self.deferred += 1;
                self.events.push(
                    now + SimDuration::from_secs_f64(DEFER_RETRY_S),
                    FleetEvent::Incoming { tenant },
                );
            } else {
                self.lost += 1;
            }
            return;
        }
        // Load-aware routers get fresh snapshots; load-blind ones only
        // see the slice's length, which the placeholder entries keep.
        self.route_loads.clear();
        if self.router_needs_loads {
            self.route_loads.extend(
                self.route_eligible
                    .iter()
                    .map(|&i| self.hosts[i].sim.load_snapshot(t.vm, t.dep)),
            );
        } else {
            self.route_loads.resize(
                self.route_eligible.len(),
                HostLoad {
                    warm_idle: 0,
                    alive: 0,
                    queued: 0,
                    active: 0,
                    free_bytes: 0,
                },
            );
        }
        let r = self.router.route(tenant, &self.route_loads);
        assert!(
            r < self.route_eligible.len(),
            "router returned host {r} of {}",
            self.route_eligible.len()
        );
        let h = self.route_eligible[r];
        self.routed[h][tenant] += 1;
        let (vm, dep) = (t.vm, t.dep);
        let mut sink = HostSink {
            q: &mut self.events,
            host: h,
        };
        self.hosts[h]
            .sim
            .handle(now, Event::Arrival { vm, dep }, &mut sink);
        self.drain_tap(h);
    }

    /// Moves the host's freshly recorded completions into the fleet's
    /// reservoir, SLO counters and (when the control loop is on) the
    /// policy's latency window.
    fn drain_tap(&mut self, host: usize) {
        let window_on = self.policy.period_s().is_some();
        for &(kind, arrival_s, latency_ms) in self.hosts[host].sim.recent_latencies() {
            self.latency_over_time.offer(arrival_s, latency_ms);
            if let Some(&(_, target)) = self.slo.iter().find(|(k, _)| *k == kind) {
                self.slo_total += 1;
                if latency_ms > target {
                    self.slo_violations += 1;
                }
            }
            if window_on {
                self.recent_window.push((kind, latency_ms));
            }
        }
        self.hosts[host].sim.clear_recent_latencies();
    }

    // --- Control plane -----------------------------------------------------

    fn on_control(&mut self, now: SimTime) {
        // Self-healing comes before policy: crashes can sink the fleet
        // below its floor (even to zero hosts, where no load-driven
        // policy gets a signal to act on), so the control loop boots
        // replacements up to `min_hosts` outside the policy and its
        // cooldown. A fixed fleet has no control loop and therefore no
        // healing — its crash losses are permanent by design.
        let provisioned = self.count(HostState::Active) + self.count(HostState::Booting);
        if provisioned < self.opts.min_hosts {
            self.boot_hosts(now, self.opts.min_hosts - provisioned);
        }
        let active_loads: Vec<HostLoad> = self
            .hosts
            .iter()
            .filter(|s| s.state == HostState::Active)
            .map(|s| s.sim.total_load())
            .collect();
        let booting = self.count(HostState::Booting);
        let draining = self.count(HostState::Draining);
        let view = FleetView {
            now_s: now.as_secs_f64(),
            active: &active_loads,
            booting,
            draining,
            slots_per_host: self.slots_per_host,
            recent: &self.recent_window,
            slo: &self.slo,
        };
        let decision = self.policy.decide(&view);
        self.recent_window.clear();

        let in_cooldown = self
            .last_action_at
            .is_some_and(|t| now.since(t).as_secs_f64() < self.opts.cooldown_s);
        if !in_cooldown {
            match decision {
                ScaleDecision::Hold => {}
                ScaleDecision::Up(n) => self.scale_up(now, n),
                ScaleDecision::Down(n) => self.scale_down(now, n),
            }
        }

        if let Some(period) = self.policy.period_s() {
            let next = now + SimDuration::from_secs_f64(period);
            if next.as_secs_f64() <= self.duration_s {
                self.events.push(next, FleetEvent::Control);
            }
        }
    }

    fn count(&self, state: HostState) -> usize {
        self.hosts.iter().filter(|s| s.state == state).count()
    }

    fn scale_up(&mut self, now: SimTime, n: u32) {
        let provisioned = self.count(HostState::Active) + self.count(HostState::Booting);
        let room = self.opts.max_hosts.saturating_sub(provisioned);
        let n = (n as usize).min(room);
        if n > 0 {
            self.boot_hosts(now, n);
            self.last_action_at = Some(now);
        }
    }

    /// Boots `n` hosts from the template (provisioning delay applies).
    /// Used by both policy scale-ups and min-floor self-healing;
    /// cooldown bookkeeping stays with the caller.
    fn boot_hosts(&mut self, now: SimTime, n: usize) {
        for _ in 0..n {
            // Each booted host re-derives its jitter seed from the
            // template by global host ordinal: deterministic, and no
            // two hosts ever share a stream.
            let ordinal = self.hosts.len() as u64;
            let mut cfg = self.template.clone();
            cfg.seed = DetRng::new(self.template.seed)
                .derive(BOOT_STREAM)
                .derive(ordinal)
                .seed();
            let mut sim = HostSim::new(cfg).expect("fleet template host boots");
            sim.enable_latency_tap();
            if self.bounded_metrics {
                sim.enable_bounded_metrics();
            }
            self.hosts.push(Slot {
                sim,
                state: HostState::Booting,
                boot_at: now,
                stop_at: None,
            });
            self.routed.push(vec![0; self.tenants.len()]);
            let host = self.hosts.len() - 1;
            self.events.push(
                now + SimDuration::from_secs_f64(self.opts.boot_delay_s),
                FleetEvent::HostReady { host },
            );
            self.scale_ups += 1;
        }
    }

    fn scale_down(&mut self, now: SimTime, n: u32) {
        let provisioned = self.count(HostState::Active) + self.count(HostState::Booting);
        let allowed = provisioned.saturating_sub(self.opts.min_hosts);
        let n = (n as usize).min(allowed).min(self.count(HostState::Active));
        if n == 0 {
            return;
        }
        // Drain the least-pressured hosts: they quiesce fastest and
        // carry the least warm state worth keeping.
        let mut candidates: Vec<(usize, usize)> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == HostState::Active)
            .map(|(i, s)| (s.sim.total_load().pressure(), i))
            .collect();
        candidates.sort_unstable();
        for &(_, host) in candidates.iter().take(n) {
            self.hosts[host].state = HostState::Draining;
            self.scale_downs += 1;
            self.maybe_retire(now, host);
        }
        self.last_action_at = Some(now);
        self.push_active_count(now);
    }

    fn on_host_ready(&mut self, now: SimTime, host: usize) {
        if self.hosts[host].state != HostState::Booting {
            return;
        }
        self.hosts[host].state = HostState::Active;
        // Start the host's metrics sample chain.
        let mut sink = HostSink {
            q: &mut self.events,
            host,
        };
        sink.push(now, Event::Sample);
        self.push_active_count(now);
    }

    /// Retires a draining host once it has nothing left to do.
    fn maybe_retire(&mut self, now: SimTime, host: usize) {
        let slot = &mut self.hosts[host];
        if slot.state == HostState::Draining && slot.sim.is_quiescent() {
            slot.state = HostState::Retired;
            slot.stop_at = Some(now);
        }
    }

    // --- Failure plane -----------------------------------------------------

    fn on_crash(&mut self, now: SimTime) {
        // Any serving host can die — draining ones included.
        let candidates: Vec<usize> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, HostState::Active | HostState::Draining))
            .map(|(i, _)| i)
            .collect();
        let Some(victim) = self.injector.pick_victim(&candidates) else {
            return;
        };
        // Flush completions that happened before the crash.
        self.drain_tap(victim);
        let slot = &mut self.hosts[victim];
        slot.state = HostState::Failed;
        slot.stop_at = Some(now);
        self.crashes += 1;
        // In-flight executions die with the host.
        self.lost += slot.sim.busy_instances() as u64;
        // Queued requests are re-routed to the survivors, as a client
        // retry would: their latency clocks restart at the crash.
        for (vm, dep) in slot.sim.drain_queued_requests() {
            let tenant = self.tenant_of_slot[vm][dep];
            assert_ne!(tenant, usize::MAX, "queued request belongs to a tenant");
            self.requeued += 1;
            self.events.push(now, FleetEvent::Incoming { tenant });
        }
        self.push_active_count(now);
    }

    // --- Accounting --------------------------------------------------------

    fn push_active_count(&mut self, now: SimTime) {
        let active = self.count(HostState::Active);
        self.active_hosts_over_time.push(now, active as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{LeastLoaded, RoundRobin};
    use crate::config::{BackendKind, Deployment, HarvestConfig, VmSpec};

    fn host_cfg(tenants: usize, seed: u64, duration_s: f64) -> SimConfig {
        SimConfig {
            backend: BackendKind::Squeezy,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: (0..tenants)
                    .map(|_| Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: Vec::new(),
                    })
                    .collect(),
                vcpus: Some(2.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 15.0,
            duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial: 0,
        }
    }

    fn fleet_cfg(
        initial: usize,
        tenants: Vec<TenantTrace>,
        duration_s: f64,
        opts: AutoscaleOpts,
    ) -> FleetConfig {
        let template = host_cfg(tenants.len(), 0xF0, duration_s);
        FleetConfig {
            initial_hosts: (0..initial)
                .map(|h| host_cfg(tenants.len(), 1 + h as u64, duration_s))
                .collect(),
            template,
            tenants,
            autoscale: opts,
            failures: FailureConfig::off(),
            slo: default_slos([FunctionKind::Html]),
            seed: 0xF1EE7,
        }
    }

    fn burst_tenants(n_arrivals: usize, start: f64, gap: f64) -> Vec<TenantTrace> {
        vec![TenantTrace {
            vm: 0,
            dep: 0,
            arrivals: (0..n_arrivals).map(|i| start + i as f64 * gap).collect(),
        }]
    }

    /// Scale-down test policy: drains one host at a fixed tick.
    struct DrainOnce {
        ticks: u32,
        at: u32,
    }

    impl AutoscalePolicy for DrainOnce {
        fn name(&self) -> &'static str {
            "drain-once"
        }

        fn period_s(&self) -> Option<f64> {
            Some(5.0)
        }

        fn decide(&mut self, _view: &FleetView) -> ScaleDecision {
            self.ticks += 1;
            if self.ticks == self.at {
                ScaleDecision::Down(1)
            } else {
                ScaleDecision::Hold
            }
        }
    }

    #[test]
    fn fixed_fleet_serves_everything_and_never_scales() {
        let tenants = burst_tenants(8, 1.0, 0.2);
        let cfg = fleet_cfg(
            2,
            tenants,
            80.0,
            AutoscaleOpts {
                min_hosts: 2,
                max_hosts: 2,
                ..AutoscaleOpts::default()
            },
        );
        let r = FleetSim::new(cfg, Box::new(RoundRobin::default()), Box::new(FixedFleet))
            .expect("boot")
            .run();
        assert_eq!(r.completed, 8);
        assert_eq!(r.scale_ups + r.scale_downs + r.crashes, 0);
        assert_eq!(r.lost + r.deferred, 0);
        assert_eq!(r.peak_active(), 2);
        assert_eq!(r.min_active(), 2);
        assert!(r.hosts.iter().all(|h| h.final_state == HostState::Active));
        assert_eq!(
            r.latency_over_time.seen(),
            8,
            "reservoir sees every completion"
        );
        assert!(r.slo_total == 8, "every completion is SLO-tracked");
    }

    #[test]
    fn autoscaler_grows_under_backlog_and_boot_delay_gates_readiness() {
        // One host, 30 near-simultaneous arrivals at concurrency 2: the
        // queue-depth policy must boot more hosts; they become routable
        // only after the provisioning delay.
        let tenants = burst_tenants(30, 1.0, 0.05);
        let cfg = fleet_cfg(
            1,
            tenants,
            240.0,
            AutoscaleOpts {
                min_hosts: 1,
                max_hosts: 4,
                boot_delay_s: 10.0,
                cooldown_s: 6.0,
            },
        );
        let r = FleetSim::new(
            cfg,
            Box::new(LeastLoaded),
            Box::new(QueueDepth::default_policy()),
        )
        .expect("boot")
        .run();
        assert!(
            r.scale_ups >= 1,
            "backlog triggered growth: {}",
            r.scale_ups
        );
        assert!(r.peak_active() >= 2, "peak {}", r.peak_active());
        assert_eq!(r.completed, 30, "every request eventually served");
        assert_eq!(r.lost, 0);
        // Booted hosts were not routable before the delay: the first
        // activation can be no earlier than boot_delay after t=0.
        let first_boot = r
            .hosts
            .iter()
            .skip(1)
            .map(|h| h.boot_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            first_boot >= 5.0,
            "first boot decision at a tick: {first_boot}"
        );
    }

    #[test]
    fn autoscaler_shrinks_an_idle_fleet_to_the_floor() {
        // Load only in the first seconds of a long run: queue-depth
        // sheds idle hosts down to min_hosts, gracefully.
        let tenants = burst_tenants(6, 1.0, 0.1);
        let cfg = fleet_cfg(
            3,
            tenants,
            200.0,
            AutoscaleOpts {
                min_hosts: 1,
                max_hosts: 3,
                boot_delay_s: 10.0,
                cooldown_s: 5.0,
            },
        );
        let r = FleetSim::new(
            cfg,
            Box::new(RoundRobin::default()),
            Box::new(QueueDepth::default_policy()),
        )
        .expect("boot")
        .run();
        assert_eq!(r.completed, 6, "drains lose nothing");
        assert!(
            r.scale_downs >= 2,
            "idle fleet shed hosts: {}",
            r.scale_downs
        );
        assert_eq!(r.min_active(), 1, "never below the floor");
        let retired = r
            .hosts
            .iter()
            .filter(|h| h.final_state == HostState::Retired)
            .count();
        assert_eq!(retired, 2, "drained hosts reached Retired");
        assert!(
            r.host_hours() < 3.0 * 200.0 / 3600.0 - 1e-9,
            "retiring early saves host-hours: {}",
            r.host_hours()
        );
    }

    #[test]
    fn graceful_drain_finishes_inflight_work_before_retiring() {
        // Drain fires at the first tick (t=5) while the burst from t=4
        // is still queued/executing on both hosts: the draining host
        // must finish its share, then expire its warm instances
        // (keepalive 15 s) before retiring.
        let tenants = burst_tenants(8, 4.0, 0.05);
        let cfg = fleet_cfg(
            2,
            tenants,
            120.0,
            AutoscaleOpts {
                min_hosts: 1,
                max_hosts: 2,
                boot_delay_s: 10.0,
                cooldown_s: 1.0,
            },
        );
        let r = FleetSim::new(
            cfg,
            Box::new(RoundRobin::default()),
            Box::new(DrainOnce { ticks: 0, at: 1 }),
        )
        .expect("boot")
        .run();
        assert_eq!(r.completed, 8, "no request dropped by the drain");
        assert_eq!(r.scale_downs, 1);
        let drained: Vec<&HostOutcome> = r
            .hosts
            .iter()
            .filter(|h| h.final_state == HostState::Retired)
            .collect();
        assert_eq!(drained.len(), 1);
        // Retirement waits for the keepalive window (instances warm
        // until ~ last_use + 15 s), so it lands well after the drain
        // decision at t=5 — and the host completed work after t=5.
        assert!(
            drained[0].stop_s > 15.0,
            "retired at {:.1}s only after quiescence",
            drained[0].stop_s
        );
        assert!(drained[0].result.completed > 0, "served before retiring");
    }

    #[test]
    fn crashes_requeue_queued_work_to_survivors() {
        // Two hosts, a long arrival train, and a forced crash window:
        // the victim's queued requests must re-route to the survivor.
        let tenants = burst_tenants(40, 1.0, 0.5);
        let mut cfg = fleet_cfg(
            2,
            tenants,
            120.0,
            AutoscaleOpts {
                min_hosts: 2,
                max_hosts: 2,
                ..AutoscaleOpts::default()
            },
        );
        cfg.failures = FailureConfig { mtbf_s: 40.0 };
        let run = || {
            FleetSim::new(
                cfg.clone(),
                Box::new(RoundRobin::default()),
                Box::new(FixedFleet),
            )
            .expect("boot")
            .run()
        };
        let r = run();
        assert!(r.crashes >= 1, "at least one injected crash");
        let failed = r
            .hosts
            .iter()
            .filter(|h| h.final_state == HostState::Failed)
            .count();
        assert_eq!(failed as u64, r.crashes);
        // Conservation: every arrival completed, died in-flight, or
        // (if every host crashed) was dropped as unservable.
        assert!(r.completed + r.lost <= 40 + r.requeued);
        assert!(r.completed > 0, "survivors keep serving");
        for h in r
            .hosts
            .iter()
            .filter(|h| h.final_state == HostState::Failed)
        {
            assert!(h.stop_s < 120.0, "crash recorded mid-run");
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let tenants = burst_tenants(20, 1.0, 0.3);
        let mk = || {
            let mut cfg = fleet_cfg(
                2,
                tenants.clone(),
                150.0,
                AutoscaleOpts {
                    min_hosts: 1,
                    max_hosts: 4,
                    boot_delay_s: 8.0,
                    cooldown_s: 5.0,
                },
            );
            cfg.failures = FailureConfig { mtbf_s: 60.0 };
            FleetSim::new(
                cfg,
                Box::new(LeastLoaded),
                Box::new(TargetUtilization::default_policy()),
            )
            .expect("boot")
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.routed, b.routed);
        assert_eq!(
            (a.scale_ups, a.scale_downs, a.crashes, a.requeued, a.lost),
            (b.scale_ups, b.scale_downs, b.crashes, b.requeued, b.lost)
        );
        assert_eq!(a.slo_violations, b.slo_violations);
        assert_eq!(
            a.latency_over_time.sorted_points(),
            b.latency_over_time.sorted_points()
        );
        let da: Vec<u64> = a.hosts.iter().map(|h| h.result.digest()).collect();
        let db: Vec<u64> = b.hosts.iter().map(|h| h.result.digest()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn slam_policy_scales_on_slo_pressure() {
        // A sustained train at ~4 rps against one 2-slot host: queueing
        // pushes p99 over the SLO and the SLAM policy must grow the
        // fleet.
        let tenants = burst_tenants(200, 1.0, 0.25);
        let cfg = fleet_cfg(
            1,
            tenants,
            180.0,
            AutoscaleOpts {
                min_hosts: 1,
                max_hosts: 5,
                boot_delay_s: 8.0,
                cooldown_s: 5.0,
            },
        );
        let r = FleetSim::new(
            cfg,
            Box::new(LeastLoaded),
            Box::new(SlamSlo::default_policy()),
        )
        .expect("boot")
        .run();
        assert!(r.scale_ups >= 1, "SLO pressure grew the fleet");
        assert!(r.slo_total > 0);
        assert_eq!(r.completed, 200);
    }
}
