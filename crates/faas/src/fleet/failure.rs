//! Seeded deterministic host-failure injection.
//!
//! Failures are part of fleet life: a serverless control plane must
//! keep meeting SLOs while machines disappear mid-burst. The injector
//! pre-samples crash instants as a Poisson process on a [`DetRng`]
//! stream derived from the fleet seed, and picks each victim from the
//! same stream at fire time — so an identical seed always crashes the
//! same hosts at the same instants, and failure experiments stay
//! byte-identical across `--jobs` values like everything else.

use sim_core::DetRng;

/// Failure-injection parameters.
#[derive(Clone, Copy, Debug)]
pub struct FailureConfig {
    /// Mean time between host crashes in seconds; `0.0` disables
    /// injection entirely (no events are ever scheduled, preserving
    /// the fixed-fleet byte-identity with `ClusterSim`).
    pub mtbf_s: f64,
}

impl FailureConfig {
    /// No failures.
    pub fn off() -> Self {
        FailureConfig { mtbf_s: 0.0 }
    }

    /// Returns `true` when crashes will be injected.
    pub fn enabled(&self) -> bool {
        self.mtbf_s > 0.0
    }
}

/// The crash scheduler/victim picker (one per fleet run).
pub(crate) struct FailureInjector {
    rng: DetRng,
}

impl FailureInjector {
    pub(crate) fn new(rng: DetRng) -> Self {
        FailureInjector { rng }
    }

    /// Samples the crash instants in `[0, duration_s)` as a Poisson
    /// process with rate `1 / mtbf_s`. Empty when disabled.
    pub(crate) fn sample_times(&mut self, cfg: &FailureConfig, duration_s: f64) -> Vec<f64> {
        let mut times = Vec::new();
        if !cfg.enabled() {
            return times;
        }
        let mut t = self.rng.exp(1.0 / cfg.mtbf_s);
        while t < duration_s {
            times.push(t);
            t += self.rng.exp(1.0 / cfg.mtbf_s);
        }
        times
    }

    /// Picks the crash victim uniformly among `candidates` (host
    /// indices); `None` when nothing is left to kill.
    pub(crate) fn pick_victim(&mut self, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let i = self.rng.range(0, candidates.len() as u64) as usize;
        Some(candidates[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_schedules_nothing() {
        let mut inj = FailureInjector::new(DetRng::new(1));
        assert!(!FailureConfig::off().enabled());
        assert!(inj.sample_times(&FailureConfig::off(), 10_000.0).is_empty());
    }

    #[test]
    fn crash_times_are_deterministic_and_sorted() {
        let sample = |seed| {
            FailureInjector::new(DetRng::new(seed))
                .sample_times(&FailureConfig { mtbf_s: 100.0 }, 1000.0)
        };
        let a = sample(7);
        assert_eq!(a, sample(7));
        assert_ne!(a, sample(8));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted");
        assert!(a.iter().all(|&t| t > 0.0 && t < 1000.0));
        // ~10 expected; stay inside a loose Poisson band.
        assert!((3..=25).contains(&a.len()), "{} crashes", a.len());
    }

    #[test]
    fn victims_come_from_the_candidate_set() {
        let mut inj = FailureInjector::new(DetRng::new(3));
        assert_eq!(inj.pick_victim(&[]), None);
        for _ in 0..50 {
            let v = inj.pick_victim(&[2, 5, 9]).unwrap();
            assert!([2, 5, 9].contains(&v));
        }
    }
}
