//! Simulation metrics: request latencies, memory timelines, reclaim
//! accounting.

use std::collections::BTreeMap;

use sim_core::{Fnv1a, Histogram, SimDuration, SimTime, TimeSeries};
use workloads::FunctionKind;

/// Per-function request metrics.
#[derive(Default)]
pub struct FuncMetrics {
    /// End-to-end request latency (ms), arrival → completion.
    pub latency: Histogram,
    /// `(arrival_s, latency_ms)` pairs for time-resolved plots (Fig. 9).
    pub latency_points: Vec<(f64, f64)>,
    /// Requests that triggered a new instance (cold starts).
    pub cold_starts: u64,
    /// Requests served by a warm instance.
    pub warm_starts: u64,
    /// Cold-start latency (ms): scale-up trigger → instance warm.
    pub cold_start_latency: Histogram,
}

impl FuncMetrics {
    /// Mean latency of requests arriving in `[from_s, to_s)`.
    ///
    /// Needs [`SimConfig::record_latency_points`] enabled — returns
    /// `None` for empty windows (or when points were not recorded).
    ///
    /// [`SimConfig::record_latency_points`]: crate::SimConfig::record_latency_points
    pub fn mean_latency_in(&self, from_s: f64, to_s: f64) -> Option<f64> {
        let pts: Vec<f64> = self
            .latency_points
            .iter()
            .filter(|(a, _)| *a >= from_s && *a < to_s)
            .map(|&(_, l)| l)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(sim_core::metrics::mean(&pts))
        }
    }
}

/// Per-VM reclaim accounting (drives the Figure-8 throughput numbers).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReclaimTotals {
    /// Bytes successfully reclaimed to the host.
    pub bytes: u64,
    /// Wall time spent by reclaim operations.
    pub wall: SimDuration,
    /// Reclaim operations issued.
    pub ops: u64,
    /// Operations that reclaimed less than requested.
    pub shortfalls: u64,
    /// Pages migrated along the way.
    pub pages_migrated: u64,
}

impl ReclaimTotals {
    /// Reclamation throughput in MiB/s (0 when no time was spent).
    pub fn throughput_mibs(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.bytes as f64 / (1 << 20) as f64) / secs
        }
    }
}

/// Everything a simulation run produces.
pub struct SimResult {
    /// Per-function request metrics.
    pub per_func: BTreeMap<FunctionKind, FuncMetrics>,
    /// Host memory usage over time (bytes).
    pub host_usage: TimeSeries,
    /// Per-VM guest memory usage over time (bytes).
    pub guest_usage: Vec<TimeSeries>,
    /// Per-VM live instance counts over time.
    pub instance_counts: Vec<TimeSeries>,
    /// Per-VM reclaim accounting.
    pub reclaims: Vec<ReclaimTotals>,
    /// Total requests completed.
    pub completed: u64,
    /// Simulated end time.
    pub end: SimTime,
    /// Exact host-usage integral in bytes·s, accumulated in streaming
    /// fashion when the host ran in bounded-metrics mode (where
    /// `host_usage` stays empty). `None` for ordinary runs — and not
    /// part of [`Self::digest`], so legacy digests are unchanged.
    pub exact_host_usage_integral: Option<f64>,
}

impl SimResult {
    /// Integrated host memory footprint in GiB·s (Figure 10 right).
    pub fn gib_seconds(&self) -> f64 {
        let bytes_s = self
            .exact_host_usage_integral
            .unwrap_or_else(|| self.host_usage.integral_until(self.end));
        bytes_s / (1u64 << 30) as f64
    }

    /// P99 latency (ms) for one function.
    pub fn p99_ms(&mut self, kind: FunctionKind) -> f64 {
        self.per_func
            .get_mut(&kind)
            .map(|m| m.latency.p99())
            .unwrap_or(0.0)
    }

    /// A stable FNV-1a digest (via [`sim_core::Fnv1a`], the workspace's
    /// one hashing primitive) over every field of the result —
    /// latencies and time series at full f64 bit precision.
    ///
    /// Histogram samples are hashed in sorted order so the digest is
    /// independent of quantile queries ([`Histogram::quantile`] sorts
    /// its samples in place): querying `p99_ms` before or after
    /// digesting never changes the value. Equal digests mean equal
    /// sample multisets, point lists, series and counters — what the
    /// golden-regression tests pin across refactors and what the
    /// cluster/single-host equivalence property compares.
    ///
    /// Each `u64`/`f64` field enters the hasher as its little-endian
    /// bytes and each name byte as a zero-extended `u64` — the exact
    /// byte stream of the original hand-rolled implementation, so the
    /// pinned golden digests survived the switch to the shared hasher
    /// unchanged.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        let put_histogram = |h: &mut Fnv1a, hist: &Histogram| {
            h.write_u64(hist.count() as u64);
            let mut sorted = hist.samples().to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            for s in sorted {
                h.write_f64(s);
            }
        };
        let put_series = |h: &mut Fnv1a, ts: &TimeSeries| {
            h.write_u64(ts.len() as u64);
            for &(t, v) in ts.points() {
                h.write_u64(t.0);
                h.write_f64(v);
            }
        };
        h.write_u64(self.completed);
        h.write_u64(self.end.0);
        h.write_u64(self.per_func.len() as u64);
        for (kind, m) in &self.per_func {
            for b in kind.name().bytes() {
                h.write_u64(b as u64);
            }
            h.write_u64(m.cold_starts);
            h.write_u64(m.warm_starts);
            put_histogram(&mut h, &m.latency);
            put_histogram(&mut h, &m.cold_start_latency);
            h.write_u64(m.latency_points.len() as u64);
            for &(a, l) in &m.latency_points {
                h.write_f64(a);
                h.write_f64(l);
            }
        }
        put_series(&mut h, &self.host_usage);
        h.write_u64(self.guest_usage.len() as u64);
        for ts in &self.guest_usage {
            put_series(&mut h, ts);
        }
        h.write_u64(self.instance_counts.len() as u64);
        for ts in &self.instance_counts {
            put_series(&mut h, ts);
        }
        h.write_u64(self.reclaims.len() as u64);
        for r in &self.reclaims {
            h.write_u64(r.bytes);
            h.write_u64(r.wall.0);
            h.write_u64(r.ops);
            h.write_u64(r.shortfalls);
            h.write_u64(r.pages_migrated);
        }
        h.finish()
    }

    /// Aggregate reclaim totals across VMs.
    pub fn total_reclaims(&self) -> ReclaimTotals {
        let mut acc = ReclaimTotals::default();
        for r in &self.reclaims {
            acc.bytes += r.bytes;
            acc.wall += r.wall;
            acc.ops += r.ops;
            acc.shortfalls += r.shortfalls;
            acc.pages_migrated += r.pages_migrated;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_throughput() {
        let r = ReclaimTotals {
            bytes: 512 << 20,
            wall: SimDuration::millis(250),
            ops: 2,
            shortfalls: 0,
            pages_migrated: 0,
        };
        assert!((r.throughput_mibs() - 2048.0).abs() < 1e-9);
        assert_eq!(ReclaimTotals::default().throughput_mibs(), 0.0);
    }

    #[test]
    fn mean_latency_in_window() {
        let mut m = FuncMetrics::default();
        m.latency_points.push((1.0, 100.0));
        m.latency_points.push((2.0, 200.0));
        m.latency_points.push((10.0, 1000.0));
        assert_eq!(m.mean_latency_in(0.0, 5.0), Some(150.0));
        assert_eq!(m.mean_latency_in(5.0, 20.0), Some(1000.0));
        assert_eq!(m.mean_latency_in(20.0, 30.0), None);
    }

    #[test]
    fn gib_seconds_integration() {
        let mut host_usage = TimeSeries::new();
        host_usage.push(SimTime::ZERO, (2u64 << 30) as f64);
        let result = SimResult {
            per_func: BTreeMap::new(),
            host_usage,
            guest_usage: vec![],
            instance_counts: vec![],
            reclaims: vec![],
            completed: 0,
            end: SimTime::ZERO + SimDuration::secs(10),
            exact_host_usage_integral: None,
        };
        assert!((result.gib_seconds() - 20.0).abs() < 1e-9);
    }
}
