//! Simulation metrics: request latencies, memory timelines, reclaim
//! accounting.

use std::collections::BTreeMap;

use sim_core::{Histogram, SimDuration, SimTime, TimeSeries};
use workloads::FunctionKind;

/// Per-function request metrics.
#[derive(Default)]
pub struct FuncMetrics {
    /// End-to-end request latency (ms), arrival → completion.
    pub latency: Histogram,
    /// `(arrival_s, latency_ms)` pairs for time-resolved plots (Fig. 9).
    pub latency_points: Vec<(f64, f64)>,
    /// Requests that triggered a new instance (cold starts).
    pub cold_starts: u64,
    /// Requests served by a warm instance.
    pub warm_starts: u64,
    /// Cold-start latency (ms): scale-up trigger → instance warm.
    pub cold_start_latency: Histogram,
}

impl FuncMetrics {
    /// Mean latency of requests arriving in `[from_s, to_s)`.
    pub fn mean_latency_in(&self, from_s: f64, to_s: f64) -> Option<f64> {
        let pts: Vec<f64> = self
            .latency_points
            .iter()
            .filter(|(a, _)| *a >= from_s && *a < to_s)
            .map(|&(_, l)| l)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().sum::<f64>() / pts.len() as f64)
        }
    }
}

/// Per-VM reclaim accounting (drives the Figure-8 throughput numbers).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReclaimTotals {
    /// Bytes successfully reclaimed to the host.
    pub bytes: u64,
    /// Wall time spent by reclaim operations.
    pub wall: SimDuration,
    /// Reclaim operations issued.
    pub ops: u64,
    /// Operations that reclaimed less than requested.
    pub shortfalls: u64,
    /// Pages migrated along the way.
    pub pages_migrated: u64,
}

impl ReclaimTotals {
    /// Reclamation throughput in MiB/s (0 when no time was spent).
    pub fn throughput_mibs(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.bytes as f64 / (1 << 20) as f64) / secs
        }
    }
}

/// Everything a simulation run produces.
pub struct SimResult {
    /// Per-function request metrics.
    pub per_func: BTreeMap<FunctionKind, FuncMetrics>,
    /// Host memory usage over time (bytes).
    pub host_usage: TimeSeries,
    /// Per-VM guest memory usage over time (bytes).
    pub guest_usage: Vec<TimeSeries>,
    /// Per-VM live instance counts over time.
    pub instance_counts: Vec<TimeSeries>,
    /// Per-VM reclaim accounting.
    pub reclaims: Vec<ReclaimTotals>,
    /// Total requests completed.
    pub completed: u64,
    /// Simulated end time.
    pub end: SimTime,
}

impl SimResult {
    /// Integrated host memory footprint in GiB·s (Figure 10 right).
    pub fn gib_seconds(&self) -> f64 {
        self.host_usage.integral_until(self.end) / (1u64 << 30) as f64
    }

    /// P99 latency (ms) for one function.
    pub fn p99_ms(&mut self, kind: FunctionKind) -> f64 {
        self.per_func
            .get_mut(&kind)
            .map(|m| m.latency.p99())
            .unwrap_or(0.0)
    }

    /// Aggregate reclaim totals across VMs.
    pub fn total_reclaims(&self) -> ReclaimTotals {
        let mut acc = ReclaimTotals::default();
        for r in &self.reclaims {
            acc.bytes += r.bytes;
            acc.wall += r.wall;
            acc.ops += r.ops;
            acc.shortfalls += r.shortfalls;
            acc.pages_migrated += r.pages_migrated;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_throughput() {
        let r = ReclaimTotals {
            bytes: 512 << 20,
            wall: SimDuration::millis(250),
            ops: 2,
            shortfalls: 0,
            pages_migrated: 0,
        };
        assert!((r.throughput_mibs() - 2048.0).abs() < 1e-9);
        assert_eq!(ReclaimTotals::default().throughput_mibs(), 0.0);
    }

    #[test]
    fn mean_latency_in_window() {
        let mut m = FuncMetrics::default();
        m.latency_points.push((1.0, 100.0));
        m.latency_points.push((2.0, 200.0));
        m.latency_points.push((10.0, 1000.0));
        assert_eq!(m.mean_latency_in(0.0, 5.0), Some(150.0));
        assert_eq!(m.mean_latency_in(5.0, 20.0), Some(1000.0));
        assert_eq!(m.mean_latency_in(20.0, 30.0), None);
    }

    #[test]
    fn gib_seconds_integration() {
        let mut host_usage = TimeSeries::new();
        host_usage.push(SimTime::ZERO, (2u64 << 30) as f64);
        let result = SimResult {
            per_func: BTreeMap::new(),
            host_usage,
            guest_usage: vec![],
            instance_counts: vec![],
            reclaims: vec![],
            completed: 0,
            end: SimTime::ZERO + SimDuration::secs(10),
        };
        assert!((result.gib_seconds() - 20.0).abs() < 1e-9);
    }
}
