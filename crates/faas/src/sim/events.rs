//! The event vocabulary of the host runtime and the sink the handlers
//! schedule into.
//!
//! Handlers never own the queue: [`FaasSim`](crate::FaasSim) hands them
//! its private [`EventQueue`], while the cluster simulator hands them a
//! tagging adapter that wraps the same events into its shared
//! multi-host queue. Either way scheduling order — and therefore the
//! queue's FIFO tie-breaking — is identical, which is what makes the
//! one-host cluster byte-identical to the single-host simulator.

use sim_core::{EventQueue, SimTime};

/// Events driving one host's simulation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    /// A request for deployment `dep` on VM `vm` arrives.
    Arrival { vm: usize, dep: usize },
    /// A CPU-pool completion may have occurred on VM `vm`.
    CpuDone { vm: usize, gen: u64 },
    /// The memory plug for instance `inst` finished.
    PlugDone { vm: usize, inst: u64 },
    /// Keep-alive check for instance `inst`.
    KeepAlive { vm: usize, inst: u64 },
    /// A reclaim operation completed; release its host memory.
    ReclaimDone { vm: usize, token: u64 },
    /// Background retry of an unplug request the deadline cut short.
    RetryReclaim { vm: usize, bytes: u64, retries: u8 },
    /// Periodic metrics sampling.
    Sample,
}

/// What a CPU-pool task is doing.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Work {
    ContainerInit { inst: u64 },
    FunctionInit { inst: u64 },
    Exec { inst: u64, arrival: SimTime },
    ReclaimKthread { token: u64 },
}

/// Where host handlers schedule future events.
pub(crate) trait EventSink {
    /// Schedules `ev` at absolute time `at`.
    fn push(&mut self, at: SimTime, ev: Event);
}

impl EventSink for EventQueue<Event> {
    fn push(&mut self, at: SimTime, ev: Event) {
        EventQueue::push(self, at, ev);
    }
}
