//! Per-instance state: lifecycle, and in-flight reclaim accounting.

use ::squeezy::PartitionId;
use guest_mm::Pid;
use sim_core::SimTime;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum InstState {
    Starting,
    Warm,
    Busy,
    /// Alive but its soft partition was revoked (§7): serves nothing
    /// until it re-plugs and rebuilds on the next request.
    Hollow,
}

pub(crate) struct Instance {
    pub dep: usize,
    pub pid: Pid,
    pub state: InstState,
    pub last_used: SimTime,
    pub started_at: SimTime,
    pub plug_done: bool,
    pub container_done: bool,
    pub first_exec_pending: bool,
    pub partition: Option<PartitionId>,
}

pub(crate) struct PendingReclaim {
    /// Host bytes to release when the reclaim completes.
    pub host_bytes: u64,
    /// Guest bytes unplugged (Figure-8 throughput accounting).
    pub guest_bytes: u64,
    pub started: SimTime,
    pub shortfall: bool,
    pub pages_migrated: u64,
    /// Bytes the deadline left unreclaimed (virtio backends retry them
    /// in the background, like the real driver's ongoing requests).
    pub shortfall_bytes: u64,
    /// Background retries left for the shortfall.
    pub retries_left: u8,
}
