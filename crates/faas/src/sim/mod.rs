//! The FaaS runtime discrete-event simulation.
//!
//! Models the paper's OpenWhisk-based deployment (§5, §6.2): a host
//! controller routes invocations to per-VM agents; agents reuse warm
//! instances, scale up (plug + container init + function init) when none
//! is idle, keep instances alive for a fixed window, and scale down
//! (evict + reclaim) when the window expires. The elasticity backend —
//! Static, vanilla virtio-mem, HarvestVM-opts, Squeezy, or Squeezy with
//! §7 soft memory — decides how guest memory is plugged and reclaimed
//! and at what cost, through the [`crate::backend`] hook layer.
//!
//! The module is split by concern:
//!
//! * [`events`] — the event vocabulary and the sink handlers schedule
//!   into;
//! * [`instance`] — per-instance lifecycle state;
//! * [`host`] — one host's event loop (`HostSim`), backend agnostic.
//!
//! [`FaasSim`] drives a single host on a private queue — the paper's
//! deployment. [`crate::ClusterSim`] drives many hosts on one shared
//! queue.
//!
//! Time is event-driven; CPU contention inside each VM is the fluid
//! model of [`sim_core::CpuPool`], so a virtio-mem driver kthread
//! migrating pages visibly slows co-located instances (Figure 9), while
//! Squeezy's instant unplug does not.

pub(crate) mod events;
pub(crate) mod host;
pub(crate) mod instance;

use sim_core::{EventQueue, SimTime};
use vmm::VmmError;
use workloads::TraceSource;

use crate::config::SimConfig;
use crate::feed::ArrivalFeed;
use crate::metrics::SimResult;
use events::Event;
use host::HostSim;

/// The single-host FaaS runtime simulator.
pub struct FaasSim {
    host: HostSim,
    events: EventQueue<Event>,
    /// Arrivals, pulled lazily — queue memory stays O(pending events),
    /// not O(total invocations).
    feed: ArrivalFeed,
    /// Feed slot index → `(vm, dep)` deployment address.
    slot_map: Vec<(usize, usize)>,
}

impl FaasSim {
    /// Builds a simulation: boots the VMs, installs the backend, and
    /// takes the configured arrival traces into a lazy feed.
    pub fn new(mut config: SimConfig) -> Result<FaasSim, VmmError> {
        let duration_s = config.duration_s;
        let mut slots = Vec::new();
        let mut slot_map = Vec::new();
        for (vi, spec) in config.vms.iter_mut().enumerate() {
            for (di, d) in spec.deployments.iter_mut().enumerate() {
                slot_map.push((vi, di));
                slots.push(std::mem::take(&mut d.arrivals));
            }
        }
        let feed = ArrivalFeed::merged(slots, duration_s);
        FaasSim::build(config, feed, slot_map, false)
    }

    /// Builds a simulation fed by a streaming trace source instead of
    /// materialized arrival lists: tenant `i` of the trace addresses
    /// the host's `i`-th deployment slot (flattened `(vm, dep)` order).
    /// Metrics run in bounded mode — per-request accumulators are
    /// capped reservoirs and time series are replaced by streaming
    /// integrals — so memory stays constant over multi-million-
    /// invocation replays. `origin` names the trace in diagnostics.
    pub fn with_source(
        config: SimConfig,
        source: Box<dyn TraceSource>,
        origin: &str,
    ) -> Result<FaasSim, VmmError> {
        let duration_s = config.duration_s;
        let slot_map: Vec<(usize, usize)> = config
            .vms
            .iter()
            .enumerate()
            .flat_map(|(vi, spec)| (0..spec.deployments.len()).map(move |di| (vi, di)))
            .collect();
        let feed = ArrivalFeed::stream(source, duration_s, origin);
        FaasSim::build(config, feed, slot_map, true)
    }

    fn build(
        config: SimConfig,
        feed: ArrivalFeed,
        slot_map: Vec<(usize, usize)>,
        bounded: bool,
    ) -> Result<FaasSim, VmmError> {
        let mut host = HostSim::new(config)?;
        if bounded {
            host.enable_bounded_metrics();
        }
        let mut events = EventQueue::new();
        events.push(SimTime::ZERO, Event::Sample);
        Ok(FaasSim {
            host,
            events,
            feed,
            slot_map,
        })
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(self) -> SimResult {
        self.run_counted().0
    }

    /// Like [`Self::run`], also returning how many arrivals the feed
    /// injected (the offered-load count for trace-driven runs).
    pub fn run_counted(mut self) -> (SimResult, u64) {
        // Two-stream merge: a fed arrival is processed whenever its
        // time is <= the queue's next tick (it would have held the
        // lower sequence number in the pre-push era), otherwise one
        // tick's batch pops — in the exact (time, seq) order
        // sequential pops would yield.
        let mut batch = Vec::new();
        loop {
            let arrival_next = match (self.feed.peek(), self.events.peek_time()) {
                (Some((at, _)), Some(qt)) => at <= qt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_next {
                let (at, slot) = self.feed.pop().expect("peeked");
                let (vm, dep) = self.slot_map[slot];
                self.host
                    .handle(at, Event::Arrival { vm, dep }, &mut self.events);
            } else if let Some(now) = self.events.pop_batch(&mut batch) {
                for ev in batch.drain(..) {
                    self.host.handle(now, ev, &mut self.events);
                }
            }
        }
        let injected = self.feed.injected();
        (self.host.finish(), injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendKind, Deployment, HarvestConfig, VmSpec};
    use mem_types::GIB;
    use workloads::FunctionKind;

    fn simple_config(backend: BackendKind, arrivals: Vec<f64>) -> SimConfig {
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: vec![Deployment {
                    kind: FunctionKind::Html,
                    concurrency: 4,
                    arrivals,
                }],
                vcpus: Some(2.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 20.0,
            duration_s: 120.0,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: true,
            seed: 1,
            trial: 0,
        }
    }

    #[test]
    fn single_request_completes() {
        for backend in [
            BackendKind::Static,
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::HarvestOpts,
            BackendKind::SqueezySoft,
        ] {
            let sim = FaasSim::new(simple_config(backend, vec![1.0])).unwrap();
            let mut result = sim.run();
            assert_eq!(result.completed, 1, "{backend:?}");
            let p99 = result.p99_ms(FunctionKind::Html);
            assert!(p99 > 0.0, "{backend:?} latency recorded");
            // Cold start: includes container+function init (~1 s of work).
            assert!(p99 > 500.0, "{backend:?} cold start visible: {p99} ms");
        }
    }

    #[test]
    fn warm_requests_are_fast() {
        // Two requests 5 s apart: the second reuses the warm instance.
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0, 6.0])).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 2);
        let m = &result.per_func[&FunctionKind::Html];
        assert_eq!(m.warm_starts, 1);
        assert_eq!(m.cold_starts, 1);
        let warm_latency = m.latency_points[1].1;
        let cold_latency = m.latency_points[0].1;
        assert!(
            warm_latency < cold_latency / 2.0,
            "warm {warm_latency} ≪ cold {cold_latency}"
        );
        // HTML at 0.25 share: 0.055 cpu-s → ≈ 220 ms wall.
        assert!(
            warm_latency > 150.0 && warm_latency < 400.0,
            "{warm_latency}"
        );
    }

    #[test]
    fn latency_points_are_opt_in() {
        // With recording off, memory stays bounded by the histogram
        // sample count and the points vector never grows — but the
        // aggregate latency metrics are unaffected.
        let mut on = simple_config(BackendKind::Squeezy, vec![1.0, 6.0, 7.0]);
        on.record_latency_points = true;
        let mut off = on.clone();
        off.record_latency_points = false;
        let r_on = FaasSim::new(on).unwrap().run();
        let r_off = FaasSim::new(off).unwrap().run();
        let m_on = &r_on.per_func[&FunctionKind::Html];
        let m_off = &r_off.per_func[&FunctionKind::Html];
        assert_eq!(m_on.latency_points.len(), 3);
        assert!(m_off.latency_points.is_empty());
        assert_eq!(m_on.latency.count(), m_off.latency.count());
        assert_eq!(
            m_on.latency.samples(),
            m_off.latency.samples(),
            "recording points does not perturb the histogram"
        );
    }

    #[test]
    fn keepalive_evicts_and_squeezy_reclaims() {
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0])).unwrap();
        let result = sim.run();
        let r = result.total_reclaims();
        assert_eq!(r.ops, 1, "one eviction-driven reclaim");
        assert!(r.bytes >= 768 << 20, "whole partition unplugged");
        assert_eq!(r.pages_migrated, 0, "Squeezy never migrates");
    }

    #[test]
    fn virtio_reclaim_migrates_under_colocation() {
        // Two staggered instances: the second keeps running while the
        // first is evicted, so its pages interleave with the victim's
        // blocks and must be migrated.
        let sim = FaasSim::new(simple_config(
            BackendKind::VirtioMem,
            vec![1.0, 1.1, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0],
        ))
        .unwrap();
        let result = sim.run();
        assert!(result.completed >= 9);
        let r = result.total_reclaims();
        assert!(r.ops >= 1);
        assert!(
            r.pages_migrated > 0,
            "vanilla virtio-mem migrates interleaved pages"
        );
    }

    #[test]
    fn squeezy_reclaim_throughput_beats_virtio() {
        let arrivals: Vec<f64> = vec![1.0, 1.05, 1.1, 1.15]; // 4 concurrent cold starts
        let sq = FaasSim::new(simple_config(BackendKind::Squeezy, arrivals.clone()))
            .unwrap()
            .run();
        let vt = FaasSim::new(simple_config(BackendKind::VirtioMem, arrivals))
            .unwrap()
            .run();
        let sq_tp = sq.total_reclaims().throughput_mibs();
        let vt_tp = vt.total_reclaims().throughput_mibs();
        assert!(sq_tp > 0.0 && vt_tp > 0.0);
        assert!(
            sq_tp > 2.0 * vt_tp,
            "Squeezy throughput {sq_tp:.0} MiB/s ≫ virtio {vt_tp:.0} MiB/s"
        );
    }

    #[test]
    fn static_backend_never_releases_host_memory() {
        let sim = FaasSim::new(simple_config(BackendKind::Static, vec![1.0])).unwrap();
        let result = sim.run();
        assert_eq!(result.total_reclaims().ops, 0);
        // Host usage never decreases (Figure 1's flat host line).
        let pts = result.host_usage.points();
        let peak = result.host_usage.max_value();
        let last = pts.last().unwrap().1;
        assert_eq!(last, peak, "host memory stays at peak");
    }

    #[test]
    fn concurrency_limit_caps_instances() {
        // 10 simultaneous arrivals but concurrency 4.
        let arrivals: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 * 0.01).collect();
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, arrivals)).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 10, "all requests eventually served");
        let peak_instances = result.instance_counts[0].max_value();
        assert!(peak_instances <= 4.0, "peak {peak_instances} ≤ N");
    }

    #[test]
    fn restricted_host_forces_evictions() {
        // Host fits the VM boot + ~2 instances; 4 sequential bursts force
        // evict-to-scale cycles.
        let mut cfg = simple_config(BackendKind::Squeezy, vec![1.0, 1.05, 80.0, 80.05]);
        cfg.keepalive_s = 10.0;
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4, "all served despite pressure");
    }

    #[test]
    fn soft_backend_revokes_idle_memory_under_pressure() {
        // Two co-resident deployments on a tight host: when the second
        // function's burst arrives, the first function's idle instances
        // donate their partitions via soft revocation instead of dying.
        let mut cfg = SimConfig {
            backend: BackendKind::SqueezySoft,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: vec![
                    Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: vec![1.0, 1.05],
                    },
                    Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: vec![40.0, 40.05],
                    },
                ],
                vcpus: Some(2.0),
            }],
            host_capacity: 4 * GIB + 512 * (1 << 20),
            keepalive_s: 300.0, // Longer than the run: no evictions.
            duration_s: 120.0,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: true,
            seed: 1,
            trial: 0,
        };
        // Calibrate the host so the second burst cannot fit without
        // reclaiming the first burst's idle memory.
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4, "all served under pressure");
        let r = result.total_reclaims();
        assert!(r.ops >= 1, "soft revocations reclaimed idle memory");
        assert_eq!(r.pages_migrated, 0, "revocation is migration-free");
    }

    #[test]
    fn soft_backend_rebuilds_hollow_instances() {
        // Same function, two bursts; pressure between them revokes the
        // idle instances, and the second burst rebuilds them (soft-cold
        // start) rather than paying full cold starts.
        let mut cfg = simple_config(BackendKind::SqueezySoft, vec![1.0, 1.05, 60.0, 60.05]);
        cfg.keepalive_s = 300.0;
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4);
        let m = &result.per_func[&FunctionKind::Html];
        // The second burst found the instances alive (hollow or warm):
        // at most the two initial cold starts are full ones.
        assert_eq!(m.cold_starts + m.warm_starts, 4);
    }

    #[test]
    fn soft_backend_without_pressure_behaves_like_squeezy() {
        let soft = FaasSim::new(simple_config(BackendKind::SqueezySoft, vec![1.0, 6.0]))
            .unwrap()
            .run();
        let base = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0, 6.0]))
            .unwrap()
            .run();
        assert_eq!(soft.completed, base.completed);
        let ls = soft.per_func[&FunctionKind::Html].latency_points[1].1;
        let lb = base.per_func[&FunctionKind::Html].latency_points[1].1;
        let ratio = ls / lb;
        assert!(
            (0.9..1.1).contains(&ratio),
            "warm path unchanged: {ls} vs {lb}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = FaasSim::new(simple_config(BackendKind::VirtioMem, vec![1.0, 2.0, 3.0]))
            .unwrap()
            .run();
        let b = FaasSim::new(simple_config(BackendKind::VirtioMem, vec![1.0, 2.0, 3.0]))
            .unwrap()
            .run();
        assert_eq!(a.completed, b.completed);
        let la: Vec<_> = a.per_func[&FunctionKind::Html]
            .latency_points
            .iter()
            .map(|&(_, l)| l.to_bits())
            .collect();
        let lb: Vec<_> = b.per_func[&FunctionKind::Html]
            .latency_points
            .iter()
            .map(|&(_, l)| l.to_bits())
            .collect();
        assert_eq!(la, lb);
    }
}
