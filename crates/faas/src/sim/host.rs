//! One host's runtime: the backend-agnostic event loop.
//!
//! [`HostSim`] owns the host memory, the per-VM agents ([`VmRt`]) and
//! the elasticity backend, and handles [`Event`]s: route arrivals to
//! warm instances, scale up through the backend's plug hook, keep
//! instances alive, scale down through the backend's reclaim hook. It
//! never dispatches on `BackendKind` — all backend behavior goes
//! through the [`ElasticityBackend`] hooks.
//!
//! The loop is driven externally: [`crate::FaasSim`] pumps a private
//! event queue for one host; [`crate::ClusterSim`] pumps a shared
//! queue for many.

use std::collections::{BTreeMap, VecDeque};

use mem_types::align_up_to_block;
use sim_core::{
    CostModel, CpuPool, DetRng, Histogram, IdMap, SimDuration, SimTime, TaskId, TimeSeries,
};
use vmm::{HostMemory, Vm, VmConfig, VmmError};
use workloads::FunctionKind;

use crate::backend::{self, ElasticityBackend, PlugStart, RebuildStart, ReclaimStart};
use crate::cluster::HostLoad;
use crate::config::SimConfig;
use crate::metrics::{FuncMetrics, ReclaimTotals, SimResult};
use crate::sim::events::{Event, EventSink, Work};
use crate::sim::instance::{InstState, Instance, PendingReclaim};

const EPS_CPU: f64 = 1e-9;

/// Derivation tag of the bounded-metrics histogram streams (from the
/// host config's seed), distinct from the jitter/trace/reservoir tags.
const METRICS_STREAM: u64 = 0xB0D5;

/// Per-VM agent state: the booted VM, its CPU pool, live instances and
/// request queues.
pub(crate) struct VmRt {
    pub vm: Vm,
    pub pool: CpuPool,
    pub pool_gen: u64,
    pub work: IdMap<TaskId, Work>,
    pub instances: IdMap<u64, Instance>,
    /// Per-deployment FIFO of queued request arrival times.
    pub queues: Vec<VecDeque<SimTime>>,
    pub reclaim: ReclaimTotals,
    pub guest_series: TimeSeries,
    pub inst_series: TimeSeries,
}

impl VmRt {
    fn alive_of(&self, dep: usize) -> usize {
        self.instances.values().filter(|i| i.dep == dep).count()
    }

    fn starting_of(&self, dep: usize) -> usize {
        self.instances
            .values()
            .filter(|i| i.dep == dep && i.state == InstState::Starting)
            .count()
    }

    fn idle_instance_of(&self, dep: usize) -> Option<u64> {
        self.instances
            .iter()
            .filter(|(_, i)| i.dep == dep && i.state == InstState::Warm)
            .map(|(&id, _)| id)
            .next()
    }

    fn hollow_instance_of(&self, dep: usize) -> Option<u64> {
        self.instances
            .iter()
            .filter(|(_, i)| i.dep == dep && i.state == InstState::Hollow)
            .map(|(&id, _)| id)
            .next()
    }
}

/// One host of the FaaS runtime: VMs, backend, metrics.
pub(crate) struct HostSim {
    pub config: SimConfig,
    cost: CostModel,
    host: HostMemory,
    pub vms: Vec<VmRt>,
    backend: Box<dyn ElasticityBackend>,
    /// Per-function metrics, indexed by `FunctionKind as usize` so the
    /// per-completion bookkeeping is an array index, not a tree walk.
    /// `finish` rebuilds the result's `BTreeMap` in declaration order —
    /// identical to `Ord` order, so digests are unchanged.
    per_func: [FuncMetrics; FunctionKind::ALL.len()],
    /// Which `per_func` slots a deployment or arrival ever touched.
    per_func_live: [bool; FunctionKind::ALL.len()],
    host_series: TimeSeries,
    /// In-flight reclaims keyed by `(vm, token)`. Tokens are globally
    /// monotonic, so the flat map is both deterministic (key-ordered,
    /// unlike the `HashMap` it replaced) and append-cheap.
    pending_reclaims: IdMap<(usize, u64), PendingReclaim>,
    next_inst: u64,
    next_token: u64,
    completed: u64,
    /// Scratch for `on_cpu_done`'s finished-task sweep (reused so the
    /// steady-state completion path does not allocate).
    finished_scratch: Vec<(TaskId, Work)>,
    rng: DetRng,
    /// When set, completed requests are also appended to
    /// `recent_latencies` for the cluster/fleet drivers to drain.
    latency_tap: bool,
    recent_latencies: Vec<(FunctionKind, f64, f64)>,
    /// Bounded-metrics mode (streamed trace replays): per-function
    /// histograms become capped reservoirs and the memory/instance
    /// time series stay empty, with the host-usage integral tracked
    /// exactly by streaming accumulation instead.
    bounded_metrics: bool,
    /// Streaming host-usage integral (bytes·s): `(last sample time,
    /// last sample value)` plus the area accumulated so far.
    usage_last: Option<(SimTime, f64)>,
    usage_acc: f64,
}

impl HostSim {
    /// Boots the VMs and installs the configured backend. Schedules
    /// nothing: the driver decides how arrivals reach [`Self::handle`].
    pub fn new(config: SimConfig) -> Result<HostSim, VmmError> {
        let cost = CostModel::default();
        let mut host = HostMemory::new(config.host_capacity);
        let mut backend = backend::make(&config);
        let mut vms = Vec::new();

        for spec in config.vms.iter() {
            // Size the VM: boot memory + hotplug region for N instances.
            let total_limit: u64 = spec
                .deployments
                .iter()
                .map(|d| {
                    align_up_to_block(d.kind.profile().memory_limit.bytes()) * d.concurrency as u64
                })
                .sum();
            let shared_need: u64 = spec
                .deployments
                .iter()
                .map(|d| {
                    let p = d.kind.profile();
                    p.deps_bytes + p.rootfs_bytes
                })
                .sum::<u64>()
                + 128 * (1 << 20);
            let shared_bytes = align_up_to_block(shared_need);
            let max_limit: u64 = spec
                .deployments
                .iter()
                .map(|d| align_up_to_block(d.kind.profile().memory_limit.bytes()))
                .max()
                .unwrap_or(0);
            let hotplug = backend.hotplug_bytes(spec, total_limit, shared_bytes, max_limit);
            let vm_config = VmConfig {
                guest: guest_mm::GuestMmConfig {
                    boot_bytes: 1 << 30,
                    hotplug_bytes: hotplug,
                    kernel_bytes: 192 * (1 << 20),
                    init_on_alloc: true,
                },
                vcpus: spec.effective_vcpus(),
            };
            let mut vm = Vm::boot(vm_config, &mut host)?;
            backend.install_vm(&mut vm, spec, shared_bytes, hotplug, &cost);

            let ndeps = spec.deployments.len();
            vms.push(VmRt {
                vm,
                pool: CpuPool::new(spec.effective_vcpus()),
                pool_gen: 0,
                work: IdMap::new(),
                instances: IdMap::new(),
                queues: vec![VecDeque::new(); ndeps],
                reclaim: ReclaimTotals::default(),
                guest_series: TimeSeries::new(),
                inst_series: TimeSeries::new(),
            });
        }

        let per_func = std::array::from_fn(|_| FuncMetrics::default());
        let mut per_func_live = [false; FunctionKind::ALL.len()];
        for spec in &config.vms {
            for d in &spec.deployments {
                per_func_live[d.kind as usize] = true;
            }
        }

        backend.after_boot(&mut host);

        let rng = config.jitter_rng();
        Ok(HostSim {
            config,
            cost,
            host,
            vms,
            backend,
            per_func,
            per_func_live,
            host_series: TimeSeries::new(),
            pending_reclaims: IdMap::new(),
            next_inst: 0,
            next_token: 0,
            completed: 0,
            finished_scratch: Vec::new(),
            rng,
            latency_tap: false,
            recent_latencies: Vec::new(),
            bounded_metrics: false,
            usage_last: None,
            usage_acc: 0.0,
        })
    }

    /// Switches every per-request accumulator to the bounded
    /// discipline, for streamed trace replays whose invocation counts
    /// dwarf any acceptable memory footprint:
    ///
    /// * per-function latency histograms become capped reservoirs
    ///   (exact count and mean, sampled quantiles) on seeded streams
    ///   derived from the config seed under [`METRICS_STREAM`];
    /// * the host/guest/instance time series stay empty, with the
    ///   host-usage integral (the `gib_seconds` numerator) accumulated
    ///   exactly in streaming fashion instead.
    ///
    /// Must be called before any event is handled.
    pub fn enable_bounded_metrics(&mut self) {
        self.bounded_metrics = true;
        // Exact per-request latency points grow with the trace; the
        // reservoir timeline covers the time-resolved view instead.
        self.config.record_latency_points = false;
        let base = DetRng::new(self.config.seed).derive(METRICS_STREAM);
        for (i, m) in self.per_func.iter_mut().enumerate() {
            *m = FuncMetrics {
                latency: Histogram::bounded(
                    crate::cluster::LATENCY_RESERVOIR_CAP,
                    base.derive(i as u64 * 2).seed(),
                ),
                cold_start_latency: Histogram::bounded(
                    crate::cluster::LATENCY_RESERVOIR_CAP,
                    base.derive(i as u64 * 2 + 1).seed(),
                ),
                ..FuncMetrics::default()
            };
        }
    }

    /// Handles one event at time `now`, scheduling follow-ups into `q`.
    pub fn handle(&mut self, now: SimTime, ev: Event, q: &mut dyn EventSink) {
        match ev {
            Event::Arrival { vm, dep } => self.on_arrival(now, vm, dep, q),
            Event::CpuDone { vm, gen } => {
                self.on_cpu_done(now, vm, gen, q);
            }
            Event::PlugDone { vm, inst } => {
                self.on_plug_done(now, vm, inst, q);
            }
            Event::KeepAlive { vm, inst } => {
                self.on_keepalive(now, vm, inst, q);
            }
            Event::ReclaimDone { vm, token } => self.on_reclaim_done(now, vm, token, q),
            Event::RetryReclaim { vm, bytes, retries } => {
                self.sync_pool(vm, now);
                let start = self.backend.retry_reclaim(
                    vm,
                    &mut self.vms[vm],
                    &mut self.host,
                    bytes,
                    retries,
                    now,
                    SimDuration::millis(self.config.unplug_deadline_ms),
                    &self.cost,
                );
                self.launch_reclaim(now, vm, start, q);
                self.reschedule_cpu(vm, now, q);
            }
            Event::Sample => {
                self.on_sample(now, q);
            }
        }
    }

    /// Consumes the host and produces its results.
    pub fn finish(self) -> SimResult {
        let end = SimTime::ZERO + SimDuration::from_secs_f64(self.config.duration_s);
        // Rebuild the result map in declaration order == `Ord` order —
        // byte-identical to the former `BTreeMap` accumulator.
        let live = self.per_func_live;
        let mut per_func = BTreeMap::new();
        for (i, m) in self.per_func.into_iter().enumerate() {
            if live[i] {
                per_func.insert(FunctionKind::ALL[i], m);
            }
        }
        // Bounded mode: close out the streaming host-usage integral
        // with the final step's tail, exactly like `integral_until`.
        let exact_host_usage_integral = if self.bounded_metrics {
            let mut acc = self.usage_acc;
            if let Some((t0, v0)) = self.usage_last {
                if end > t0 {
                    acc += v0 * end.since(t0).as_secs_f64();
                }
            }
            Some(acc)
        } else {
            None
        };
        SimResult {
            per_func,
            host_usage: self.host_series,
            guest_usage: self.vms.iter().map(|v| v.guest_series.clone()).collect(),
            instance_counts: self.vms.iter().map(|v| v.inst_series.clone()).collect(),
            reclaims: self.vms.iter().map(|v| v.reclaim).collect(),
            completed: self.completed,
            end,
            exact_host_usage_integral,
        }
    }

    // --- Router / autoscaler views ----------------------------------------

    /// The single [`HostLoad`] constructor: one deterministic snapshot
    /// of this host, taken for the arriving tenant's `(vm, dep)` slot.
    /// Routers (via the cluster/fleet drivers) and the fleet autoscaler
    /// (via [`Self::total_load`]) both read host load through here, so
    /// the two control planes can never disagree on what "load" means.
    pub fn load_snapshot(&self, vm: usize, dep: usize) -> HostLoad {
        self.snapshot_impl(Some((vm, dep)))
    }

    /// Whole-host load snapshot: the deployment-specific fields
    /// (`warm_idle`, `alive`) are summed across every deployment — the
    /// autoscaler's view, which cares about total warm capacity rather
    /// than any one tenant's.
    pub fn total_load(&self) -> HostLoad {
        self.snapshot_impl(None)
    }

    fn snapshot_impl(&self, slot: Option<(usize, usize)>) -> HostLoad {
        let dep_matches = |vi: usize, dep: usize| match slot {
            Some((sv, sd)) => vi == sv && dep == sd,
            None => true,
        };
        let mut warm_idle = 0;
        let mut alive = 0;
        let mut queued = 0;
        let mut active = 0;
        for (vi, v) in self.vms.iter().enumerate() {
            queued += v.queues.iter().map(VecDeque::len).sum::<usize>();
            for i in v.instances.values() {
                if matches!(i.state, InstState::Busy | InstState::Starting) {
                    active += 1;
                }
                if dep_matches(vi, i.dep) {
                    alive += 1;
                    if i.state == InstState::Warm {
                        warm_idle += 1;
                    }
                }
            }
        }
        HostLoad {
            warm_idle,
            alive,
            queued,
            active,
            free_bytes: self.host.free_bytes(),
        }
    }

    // --- Fleet lifecycle hooks --------------------------------------------

    /// Turns on the latency tap: every completed request is also pushed
    /// to a drainable buffer. The cluster/fleet drivers enable this to
    /// feed bounded reservoirs and SLO accounting; the buffer is not
    /// part of [`SimResult`], so tapping never perturbs digests.
    pub fn enable_latency_tap(&mut self) {
        self.latency_tap = true;
    }

    /// Drains `(kind, arrival_s, latency_ms)` completions recorded
    /// since the last drain.
    pub fn recent_latencies(&self) -> &[(FunctionKind, f64, f64)] {
        &self.recent_latencies
    }

    /// Forgets the drained latencies, keeping the buffer's capacity so
    /// the steady-state completion path never reallocates it.
    pub fn clear_recent_latencies(&mut self) {
        self.recent_latencies.clear();
    }

    /// `true` when the host holds no queued requests, no instances, no
    /// CPU work and no in-flight reclaims — a draining host in this
    /// state can retire without losing anything.
    pub fn is_quiescent(&self) -> bool {
        self.pending_reclaims.is_empty()
            && self.vms.iter().all(|v| {
                v.instances.is_empty()
                    && v.work.is_empty()
                    && v.queues.iter().all(VecDeque::is_empty)
            })
    }

    /// Empties every request queue, returning one `(vm, dep)` entry per
    /// queued request in deterministic (vm, dep, FIFO) order. Crash
    /// handling: the fleet re-routes these to surviving hosts.
    pub fn drain_queued_requests(&mut self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (vi, v) in self.vms.iter_mut().enumerate() {
            for (di, q) in v.queues.iter_mut().enumerate() {
                out.extend(std::iter::repeat_n((vi, di), q.len()));
                q.clear();
            }
        }
        out
    }

    /// Requests currently executing (one per busy instance) — the work
    /// a host crash genuinely loses.
    pub fn busy_instances(&self) -> usize {
        self.vms
            .iter()
            .flat_map(|v| v.instances.values())
            .filter(|i| i.state == InstState::Busy)
            .count()
    }

    // --- Event handlers ---------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, vm: usize, dep: usize, q: &mut dyn EventSink) {
        self.sync_pool(vm, now);
        let kind = self.dep_kind(vm, dep);
        if let Some(inst) = self.vms[vm].idle_instance_of(dep) {
            self.metrics(kind).warm_starts += 1;
            self.dispatch_exec(now, vm, inst, now);
        } else {
            self.vms[vm].queues[dep].push_back(now);
            self.metrics(kind).cold_starts += 1;
            self.maybe_scale_up(now, vm, dep, q);
        }
        self.reschedule_cpu(vm, now, q);
    }

    fn on_cpu_done(&mut self, now: SimTime, vm: usize, gen: u64, q: &mut dyn EventSink) {
        if self.vms[vm].pool_gen != gen {
            return; // Stale completion prediction.
        }
        self.sync_pool(vm, now);
        // Collect finished tasks into the reusable scratch buffer.
        let mut finished = std::mem::take(&mut self.finished_scratch);
        finished.clear();
        finished.extend(
            self.vms[vm]
                .work
                .iter()
                .filter(|(tid, _)| {
                    self.vms[vm]
                        .pool
                        .remaining(**tid)
                        .map(|r| r <= EPS_CPU)
                        .unwrap_or(false)
                })
                .map(|(&tid, &w)| (tid, w)),
        );
        for (tid, work) in finished.drain(..) {
            self.vms[vm].pool.remove(tid);
            self.vms[vm].work.remove(&tid);
            match work {
                Work::ContainerInit { inst } => {
                    if let Some(i) = self.vms[vm].instances.get_mut(&inst) {
                        i.container_done = true;
                    }
                    self.check_init_ready(now, vm, inst);
                }
                Work::FunctionInit { inst } => self.on_instance_warm(now, vm, inst, q),
                Work::Exec { inst, arrival } => self.on_exec_done(now, vm, inst, arrival, q),
                Work::ReclaimKthread { token } => {
                    q.push(now, Event::ReclaimDone { vm, token });
                }
            }
        }
        self.finished_scratch = finished;
        self.reschedule_cpu(vm, now, q);
    }

    fn on_plug_done(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        self.sync_pool(vm, now);
        let res = self
            .backend
            .finish_plug(vm, &mut self.vms[vm], inst, &self.cost);
        if let Some(latency) = res.replug {
            q.push(now + latency, Event::PlugDone { vm, inst });
        }
        for id in res.ready {
            self.check_init_ready(now, vm, id);
        }
        self.reschedule_cpu(vm, now, q);
    }

    fn on_keepalive(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        self.sync_pool(vm, now);
        let expired = match self.vms[vm].instances.get(&inst) {
            Some(i) => {
                matches!(i.state, InstState::Warm | InstState::Hollow)
                    && now.since(i.last_used).as_secs_f64() + 1e-6 >= self.config.keepalive_s
            }
            None => false,
        };
        if expired {
            self.evict_instance(now, vm, inst, q);
            // Proactive scale-down (HarvestVM-opts): evict extra idle
            // instances to refill the slack buffer (§6.2.2) — the
            // "aggressive reclamation" that penalizes their functions
            // later.
            for _ in 0..self.backend.proactive_eviction_quota() {
                let extra = self.vms[vm]
                    .instances
                    .iter()
                    .filter(|(_, i)| i.state == InstState::Warm)
                    .min_by_key(|(_, i)| i.last_used)
                    .map(|(&id, _)| id);
                match extra {
                    Some(id) => self.evict_instance(now, vm, id, q),
                    None => break,
                }
            }
            self.retry_scale_ups(now, q);
        }
        self.reschedule_cpu(vm, now, q);
    }

    fn on_reclaim_done(&mut self, now: SimTime, vm: usize, token: u64, q: &mut dyn EventSink) {
        self.sync_pool(vm, now);
        if let Some(p) = self.pending_reclaims.remove(&(vm, token)) {
            self.host.release(p.host_bytes);
            if p.shortfall_bytes > 0 && p.retries_left > 0 {
                // The driver retries the remaining request periodically
                // in the background (the paper's reclamation timeouts:
                // the memory is not available when the scale-up needs
                // it, but the VM recovers eventually).
                q.push(
                    now + SimDuration::secs(5),
                    Event::RetryReclaim {
                        vm,
                        bytes: p.shortfall_bytes,
                        retries: p.retries_left - 1,
                    },
                );
            }
            let r = &mut self.vms[vm].reclaim;
            r.bytes += p.guest_bytes;
            r.wall += now.since(p.started);
            r.ops += 1;
            r.pages_migrated += p.pages_migrated;
            if p.shortfall {
                r.shortfalls += 1;
            }
            self.backend.on_reclaim_complete(&mut self.host);
        }
        // Freed memory may unblock waiting scale-ups.
        self.retry_scale_ups(now, q);
        self.reschedule_cpu(vm, now, q);
    }

    fn on_sample(&mut self, now: SimTime, q: &mut dyn EventSink) {
        // Safety net for queues whose deployment has no instance left and
        // no reclaim in flight: retry their scale-ups periodically.
        self.retry_scale_ups(now, q);
        if self.bounded_metrics {
            // Streamed replays: no per-sample points, just the exact
            // host-usage integral (step function, like the series).
            let v = self.host.used_bytes() as f64;
            if let Some((t0, v0)) = self.usage_last {
                self.usage_acc += v0 * now.since(t0).as_secs_f64();
            }
            self.usage_last = Some((now, v));
        } else {
            self.host_series.push(now, self.host.used_bytes() as f64);
            for v in &mut self.vms {
                v.guest_series.push(now, v.vm.guest.used_bytes() as f64);
                v.inst_series.push(now, v.instances.len() as f64);
            }
        }
        let next = now + SimDuration::from_secs_f64(self.config.sample_period_s);
        if next.as_secs_f64() <= self.config.duration_s {
            q.push(next, Event::Sample);
        }
    }

    // --- Scale-up path ------------------------------------------------------

    fn maybe_scale_up(&mut self, now: SimTime, vm: usize, dep: usize, q: &mut dyn EventSink) {
        loop {
            let queued = self.vms[vm].queues[dep].len();
            let starting = self.vms[vm].starting_of(dep);
            if queued <= starting {
                break;
            }
            // Soft backend: a hollow (revoked) instance is cheaper to
            // rebuild than a fresh instance is to start.
            if let Some(hollow) = self.vms[vm].hollow_instance_of(dep) {
                if self.admit(now, vm, dep, q) {
                    self.rebuild_instance(now, vm, hollow, q);
                    continue;
                }
                break;
            }
            let alive = self.vms[vm].alive_of(dep);
            let n = self.config.vms[vm].deployments[dep].concurrency as usize;
            if alive >= n {
                break;
            }
            if !self.admit(now, vm, dep, q) {
                break;
            }
            if !self.start_instance(now, vm, dep, q) {
                break;
            }
        }
    }

    /// Wakes a hollow (soft-revoked) instance through the backend's
    /// rebuild hook.
    fn rebuild_instance(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        let pid = self.vms[vm].instances[&inst].pid;
        match self.backend.rebuild(vm, &mut self.vms[vm], pid, &self.cost) {
            RebuildStart::Replug { latency } => {
                let i = self.vms[vm].instances.get_mut(&inst).expect("exists");
                i.state = InstState::Starting;
                i.plug_done = false;
                i.container_done = true;
                i.first_exec_pending = true;
                i.started_at = now;
                q.push(now + latency, Event::PlugDone { vm, inst });
            }
            RebuildStart::Warm => {
                let i = self.vms[vm].instances.get_mut(&inst).expect("exists");
                i.state = InstState::Warm;
                i.last_used = now;
            }
        }
    }

    /// Host-memory admission for one new instance: the runtime reserves
    /// the instance's user-defined memory limit (§4.2 — plug requests
    /// carry "the memory size pre-defined by the user"). May trigger
    /// backend revocations or evictions and return `false` (the
    /// scale-up is retried on reclaim completions).
    fn admit(&mut self, now: SimTime, vm: usize, dep: usize, q: &mut dyn EventSink) -> bool {
        let estimate = align_up_to_block(self.dep_kind(vm, dep).profile().memory_limit.bytes());
        // Backend-held reserves (HarvestVM's slack buffer) first.
        if self.backend.admit_from_reserve(&mut self.host, estimate) {
            return true;
        }
        if self.host.free_bytes() >= estimate {
            return true;
        }
        // Revocable memory next: idle instances donate without dying
        // (§7), so the later warm/soft-cold starts stay cheaper than
        // full cold starts.
        let deficit = estimate.saturating_sub(self.host.free_bytes());
        self.backend
            .revoke_for_pressure(&mut self.vms, &mut self.host, deficit, &self.cost);
        if self.host.free_bytes() >= estimate {
            return true;
        }
        // Evict idle instances (oldest first, across all VMs) until the
        // expected release covers the deficit.
        let mut deficit = estimate.saturating_sub(self.host.free_bytes()) as i64;
        while deficit > 0 {
            let victim = self.oldest_idle_instance();
            let Some((v, id)) = victim else { break };
            // Predict the victim's release: its limit-sized reclaim
            // covers roughly the blocks its footprint pinned.
            let released_estimate = {
                let i = &self.vms[v].instances[&id];
                self.config.vms[v].deployments[i.dep]
                    .kind
                    .profile()
                    .anon_bytes
            };
            self.sync_pool(v, now);
            self.evict_instance(now, v, id, q);
            self.reschedule_cpu(v, now, q);
            deficit -= released_estimate as i64;
        }
        // Squeezy's synchronous unplug may have freed enough already.
        self.host.free_bytes() >= estimate
    }

    fn oldest_idle_instance(&self) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64, SimTime)> = None;
        for (vi, v) in self.vms.iter().enumerate() {
            for (&id, i) in &v.instances {
                if i.state == InstState::Warm {
                    match best {
                        Some((_, _, t)) if t <= i.last_used => {}
                        _ => best = Some((vi, id, i.last_used)),
                    }
                }
            }
        }
        best.map(|(v, id, _)| (v, id))
    }

    fn retry_scale_ups(&mut self, now: SimTime, q: &mut dyn EventSink) {
        for vi in 0..self.vms.len() {
            self.sync_pool(vi, now);
            for di in 0..self.vms[vi].queues.len() {
                if !self.vms[vi].queues[di].is_empty() {
                    self.maybe_scale_up(now, vi, di, q);
                }
            }
            self.reschedule_cpu(vi, now, q);
        }
    }

    /// Starts one instance. Returns `false` (cancelling the scale-up)
    /// when the memory plug fails — e.g. the virtio-mem region is
    /// exhausted because earlier reclaims timed out short (§6.2.2's
    /// "virtio-mem fails to reclaim the necessary memory ... forcing
    /// [requests] to be served by already alive instances").
    fn start_instance(
        &mut self,
        now: SimTime,
        vm: usize,
        dep: usize,
        q: &mut dyn EventSink,
    ) -> bool {
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        let pid = self.vms[vm]
            .vm
            .guest
            .spawn_process(guest_mm::AllocPolicy::MovableDefault);
        let id = self.next_inst;
        self.next_inst += 1;

        let mut inst = Instance {
            dep,
            pid,
            state: InstState::Starting,
            last_used: now,
            started_at: now,
            plug_done: false,
            container_done: false,
            first_exec_pending: true,
            partition: None,
        };

        // Backend-specific memory plug, in parallel with container init.
        let bytes = align_up_to_block(profile.memory_limit.bytes());
        match self
            .backend
            .begin_plug(vm, &mut self.vms[vm], pid, bytes, &self.cost)
        {
            PlugStart::Ready { partition } => {
                inst.partition = partition;
                inst.plug_done = true;
                self.vms[vm].instances.insert(id, inst);
            }
            PlugStart::Scheduled { latency } => {
                self.vms[vm].instances.insert(id, inst);
                q.push(now + latency, Event::PlugDone { vm, inst: id });
            }
            PlugStart::Failed => {
                let _ = self.vms[vm].vm.guest.exit_process(pid);
                return false;
            }
        }

        // Container (sandbox) init starts immediately — §6.2.1: sandbox
        // setup proceeds in parallel with the plug.
        let rootfs_latency = {
            let v = &mut self.vms[vm];
            match v.vm.touch_file(
                &mut self.host,
                kind.rootfs_file(),
                profile.rootfs_pages(),
                &self.cost,
            ) {
                Ok(c) => c.latency.as_secs_f64(),
                Err(_) => 0.05, // Host pressure: fall back to a nominal read.
            }
        };
        let demand = (profile.container_init_cpu_s + rootfs_latency).max(1e-6);
        let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
        self.vms[vm]
            .work
            .insert(tid, Work::ContainerInit { inst: id });
        true
    }

    fn check_init_ready(&mut self, now: SimTime, vm: usize, inst: u64) {
        let ready = match self.vms[vm].instances.get(&inst) {
            Some(i) => i.state == InstState::Starting && i.plug_done && i.container_done,
            None => false,
        };
        if !ready {
            return;
        }
        let (dep, pid) = {
            let i = &self.vms[vm].instances[&inst];
            (i.dep, i.pid)
        };
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        // Function init touches the runtime deps (page cache / shared
        // partition) and most of the anonymous working set.
        let mut extra = 0.0;
        {
            let v = &mut self.vms[vm];
            if let Ok(c) = v.vm.touch_file(
                &mut self.host,
                kind.deps_file(),
                profile.deps_pages(),
                &self.cost,
            ) {
                extra += c.latency.as_secs_f64();
            }
            match v.vm.touch_anon(
                &mut self.host,
                pid,
                profile.anon_pages() * 6 / 10,
                &self.cost,
            ) {
                Ok(c) => extra += c.latency.as_secs_f64(),
                Err(_) => {
                    // OOM (partition or host): the instance dies.
                    self.kill_instance(now, vm, inst);
                    return;
                }
            }
        }
        let demand = (profile.function_init_cpu_s + extra).max(1e-6);
        let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
        self.vms[vm].work.insert(tid, Work::FunctionInit { inst });
    }

    fn on_instance_warm(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        let dep = {
            let Some(i) = self.vms[vm].instances.get_mut(&inst) else {
                return;
            };
            i.state = InstState::Warm;
            i.last_used = now;
            i.dep
        };
        self.mark_idle(vm, inst);
        let kind = self.dep_kind(vm, dep);
        let cold_ms = now
            .since(self.vms[vm].instances[&inst].started_at)
            .as_millis_f64();
        self.metrics(kind).cold_start_latency.record(cold_ms);
        self.schedule_keepalive(now, vm, inst, q);
        self.drain_queue(now, vm, dep);
    }

    fn drain_queue(&mut self, now: SimTime, vm: usize, dep: usize) {
        while let Some(&arrival) = self.vms[vm].queues[dep].front() {
            let Some(inst) = self.vms[vm].idle_instance_of(dep) else {
                break;
            };
            self.vms[vm].queues[dep].pop_front();
            self.dispatch_exec(now, vm, inst, arrival);
        }
    }

    fn dispatch_exec(&mut self, now: SimTime, vm: usize, inst: u64, arrival: SimTime) {
        let (dep, pid, first) = {
            let i = self.vms[vm]
                .instances
                .get_mut(&inst)
                .expect("dispatch target");
            debug_assert_eq!(i.state, InstState::Warm);
            i.state = InstState::Busy;
            let first = i.first_exec_pending;
            i.first_exec_pending = false;
            (i.dep, i.pid, first)
        };
        // Soft backend: firm the partition up while the instance works.
        self.backend.on_dispatch(vm, pid);
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        let mut extra = 0.0005; // Agent dispatch overhead.
        if first {
            // First execution touches the rest of the working set.
            let v = &mut self.vms[vm];
            if let Ok(c) = v.vm.touch_anon(
                &mut self.host,
                pid,
                profile.anon_pages() - profile.anon_pages() * 6 / 10,
                &self.cost,
            ) {
                extra += c.latency.as_secs_f64();
            }
        }
        let jitter = self.rng.log_normal(0.0, 0.08);
        let demand = (profile.exec_cpu_s * jitter + extra).max(1e-6);
        let tid = self.vms[vm]
            .pool
            .add_task(demand, profile.vcpu_shares, profile.vcpu_shares);
        self.vms[vm].work.insert(tid, Work::Exec { inst, arrival });
        let _ = now; // Dispatch itself is instantaneous at `now`.
    }

    fn on_exec_done(
        &mut self,
        now: SimTime,
        vm: usize,
        inst: u64,
        arrival: SimTime,
        q: &mut dyn EventSink,
    ) {
        let dep = {
            let i = self.vms[vm].instances.get_mut(&inst).expect("exec owner");
            i.state = InstState::Warm;
            i.last_used = now;
            i.dep
        };
        self.mark_idle(vm, inst);
        let kind = self.dep_kind(vm, dep);
        let latency_ms = now.since(arrival).as_millis_f64();
        if self.latency_tap {
            self.recent_latencies
                .push((kind, arrival.as_secs_f64(), latency_ms));
        }
        let record_points = self.config.record_latency_points;
        let m = self.metrics(kind);
        m.latency.record(latency_ms);
        if record_points {
            m.latency_points.push((arrival.as_secs_f64(), latency_ms));
        }
        self.completed += 1;
        self.schedule_keepalive(now, vm, inst, q);
        self.drain_queue(now, vm, dep);
        // A newly idle instance may satisfy queued work elsewhere via
        // memory that eviction would free; retry pending scale-ups.
        if !self.vms[vm].queues[dep].is_empty() {
            self.maybe_scale_up(now, vm, dep, q);
        }
    }

    fn schedule_keepalive(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        let at = now + SimDuration::from_secs_f64(self.config.keepalive_s);
        q.push(at, Event::KeepAlive { vm, inst });
    }

    /// A newly idle instance reports to the backend (soft memory offers
    /// its partition back).
    fn mark_idle(&mut self, vm: usize, inst: u64) {
        let pid = self.vms[vm].instances[&inst].pid;
        self.backend.on_idle(vm, pid);
    }

    // --- Scale-down path ------------------------------------------------------

    /// Evicts one instance and starts the backend's reclaim.
    fn evict_instance(&mut self, now: SimTime, vm: usize, inst: u64, q: &mut dyn EventSink) {
        let Some(i) = self.vms[vm].instances.remove(&inst) else {
            return;
        };
        debug_assert_ne!(i.state, InstState::Busy, "never evict busy instances");
        self.vms[vm]
            .vm
            .guest
            .exit_process(i.pid)
            .expect("instance process alive");
        self.backend.on_exit(vm, i.pid);
        // A hollow instance's partition was already reclaimed when its
        // soft memory was revoked: nothing further to unplug.
        if i.state != InstState::Hollow {
            self.start_reclaim(now, vm, i.dep, q);
        }
    }

    /// An instance died mid-init (OOM): clean up without reclaim.
    fn kill_instance(&mut self, now: SimTime, vm: usize, inst: u64) {
        let Some(i) = self.vms[vm].instances.remove(&inst) else {
            return;
        };
        let _ = self.vms[vm].vm.guest.exit_process(i.pid);
        self.backend.on_exit(vm, i.pid);
        let _ = now;
    }

    /// Launches the backend reclaim for one evicted instance of `dep`.
    fn start_reclaim(&mut self, now: SimTime, vm: usize, dep: usize, q: &mut dyn EventSink) {
        let kind = self.dep_kind(vm, dep);
        // The runtime resizes by "the function memory requirements
        // (Table 1)" (§6.2): plug and unplug requests are both
        // limit-sized, so the VM's plugged size tracks its instance
        // count. Squeezy's unit is the whole partition by construction.
        let freed = align_up_to_block(kind.profile().memory_limit.bytes());
        let deadline = SimDuration::millis(self.config.unplug_deadline_ms);
        let start = self.backend.reclaim_on_evict(
            vm,
            &mut self.vms[vm],
            &mut self.host,
            freed,
            now,
            deadline,
            &self.cost,
        );
        self.launch_reclaim(now, vm, start, q);
    }

    /// Books a started reclaim: pending accounting, its completion
    /// event or kthread task.
    fn launch_reclaim(
        &mut self,
        now: SimTime,
        vm: usize,
        start: ReclaimStart,
        q: &mut dyn EventSink,
    ) {
        match start {
            ReclaimStart::None => {}
            ReclaimStart::Timed { pending, latency } => {
                let token = self.next_token;
                self.next_token += 1;
                self.pending_reclaims.insert((vm, token), pending);
                q.push(now + latency, Event::ReclaimDone { vm, token });
            }
            ReclaimStart::Kthread { pending, cpu_s } => {
                let token = self.next_token;
                self.next_token += 1;
                self.pending_reclaims.insert((vm, token), pending);
                // The driver kthread migrates pages on the VM's vCPUs —
                // the Figure-9 interference.
                let demand = cpu_s.max(1e-6);
                let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
                self.vms[vm]
                    .work
                    .insert(tid, Work::ReclaimKthread { token });
            }
        }
    }

    // --- Plumbing ---------------------------------------------------------------

    fn dep_kind(&self, vm: usize, dep: usize) -> FunctionKind {
        self.config.vms[vm].deployments[dep].kind
    }

    fn metrics(&mut self, kind: FunctionKind) -> &mut FuncMetrics {
        self.per_func_live[kind as usize] = true;
        &mut self.per_func[kind as usize]
    }

    fn sync_pool(&mut self, vm: usize, now: SimTime) {
        if self.vms[vm].pool.now() < now {
            self.vms[vm].pool.advance_to(now);
        }
    }

    fn reschedule_cpu(&mut self, vm: usize, now: SimTime, q: &mut dyn EventSink) {
        self.vms[vm].pool_gen += 1;
        let gen = self.vms[vm].pool_gen;
        if let Some((_, t)) = self.vms[vm].pool.next_completion() {
            let at = t.max(now);
            q.push(at, Event::CpuDone { vm, gen });
        }
    }
}
