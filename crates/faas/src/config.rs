//! Simulation configuration: deployments, backends, host limits.

use workloads::FunctionKind;

/// Which memory-elasticity backend the runtime drives (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Statically over-provisioned N:1 VM: all memory plugged at boot and
    /// never reclaimed (the Figure-1 motivation baseline).
    Static,
    /// Vanilla virtio-mem hot-unplug with migrations.
    VirtioMem,
    /// virtio-mem + HarvestVM optimizations: proactive reclamation and a
    /// reserved memory buffer (§6.2.2).
    HarvestOpts,
    /// Squeezy partitions with instant partition-aware unplug.
    Squeezy,
    /// Squeezy plus §7 soft memory: idle instances' partitions are
    /// revocable under host pressure without evicting the instances;
    /// revoked instances re-plug and rebuild on their next request.
    SqueezySoft,
}

impl BackendKind {
    /// All backends, in evaluation order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Static,
        BackendKind::VirtioMem,
        BackendKind::HarvestOpts,
        BackendKind::Squeezy,
        BackendKind::SqueezySoft,
    ];

    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Static => "Static",
            BackendKind::VirtioMem => "Virtio-mem",
            BackendKind::HarvestOpts => "HarvestVM-opts",
            BackendKind::Squeezy => "Squeezy",
            BackendKind::SqueezySoft => "Squeezy+soft",
        }
    }

    /// Lowercase registry key used by scenario spec files
    /// (`backend = squeezy, virtio-mem`).
    pub fn key(self) -> &'static str {
        match self {
            BackendKind::Static => "static",
            BackendKind::VirtioMem => "virtio-mem",
            BackendKind::HarvestOpts => "harvest",
            BackendKind::Squeezy => "squeezy",
            BackendKind::SqueezySoft => "squeezy-soft",
        }
    }

    /// Looks a backend up by its registry key; `Err` carries the full
    /// list of valid keys.
    pub fn from_key(key: &str) -> Result<BackendKind, String> {
        sim_core::registry::lookup("backend", &BackendKind::ALL, BackendKind::key, key)
    }

    /// Returns `true` for the backends that install a Squeezy manager.
    pub fn is_squeezy(self) -> bool {
        matches!(self, BackendKind::Squeezy | BackendKind::SqueezySoft)
    }
}

/// HarvestVM-opts parameters.
#[derive(Clone, Copy, Debug)]
pub struct HarvestConfig {
    /// Target size of the reserved slack buffer (host bytes).
    pub buffer_bytes: u64,
    /// Extra idle instances proactively evicted per scale-down event.
    pub proactive_evictions: u32,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig {
            buffer_bytes: 2 * 1024 * 1024 * 1024,
            proactive_evictions: 2,
        }
    }
}

/// One function deployed on a VM, with its invocation trace.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The function (Table 1).
    pub kind: FunctionKind,
    /// Max concurrent instances of this function on its VM (the paper
    /// calibrates N to the trace's peak concurrency, 9-36).
    pub concurrency: u32,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
}

/// One N:1 VM hosting one or more deployments (Figure 9 co-locates two).
#[derive(Clone, Debug)]
pub struct VmSpec {
    /// Functions hosted by this VM.
    pub deployments: Vec<Deployment>,
    /// vCPUs assigned; `None` derives `max(1, ceil(Σ shares × N))`.
    pub vcpus: Option<f64>,
}

impl VmSpec {
    /// Derived vCPU count (§5.1: vCPUs follow the CPU shares of the
    /// target function and the max concurrency factor).
    pub fn effective_vcpus(&self) -> f64 {
        self.vcpus.unwrap_or_else(|| {
            let total: f64 = self
                .deployments
                .iter()
                .map(|d| d.kind.profile().vcpu_shares * d.concurrency as f64)
                .sum();
            total.ceil().max(1.0)
        })
    }
}

/// Whole-simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Elasticity backend driven by the runtime.
    pub backend: BackendKind,
    /// HarvestVM-opts parameters (used when `backend == HarvestOpts`).
    pub harvest: HarvestConfig,
    /// The N:1 VMs and their deployments.
    pub vms: Vec<VmSpec>,
    /// Host physical memory capacity in bytes.
    pub host_capacity: u64,
    /// Keep-alive window before evicting idle instances (the paper's
    /// agent uses 2 minutes).
    pub keepalive_s: f64,
    /// Simulated duration (arrivals past this are ignored).
    pub duration_s: f64,
    /// Metrics sampling period.
    pub sample_period_s: f64,
    /// virtio-mem unplug deadline (reclaim timeout) in milliseconds.
    pub unplug_deadline_ms: u64,
    /// Record one `(arrival, latency)` point per completed request in
    /// [`crate::FuncMetrics::latency_points`] (needed only by
    /// time-resolved plots like Figure 9). Opt-in: long cluster runs
    /// leave this off so memory stays bounded by the sample count of
    /// the aggregate histograms, not the request count.
    pub record_latency_points: bool,
    /// RNG seed for execution-time jitter.
    pub seed: u64,
    /// Trial number within a repeated experiment. The simulation's
    /// jitter stream is *derived* as `DetRng::new(seed).derive(trial)`,
    /// never hardcoded, so trial `t` of an experiment is reproducible in
    /// isolation and independent of every other trial.
    pub trial: u64,
}

impl SimConfig {
    /// Builds the single-host configuration a
    /// [`Topology::SingleVm`](crate::scenario::Topology::SingleVm)
    /// scenario runs: one VM whose deployments carry the scenario's
    /// tenant traces directly.
    ///
    /// Part of the scenario front door — the `scenario_equivalence`
    /// test pins `Scenario::run_trial` byte-identical to
    /// `FaasSim::new(SimConfig::from_scenario(..)).run()`.
    pub fn from_scenario(
        spec: &crate::scenario::Scenario,
        backend: BackendKind,
        trial: u64,
    ) -> SimConfig {
        let tenants = spec.tenant_loads(trial);
        let mut cfg = spec.host_config(&tenants, backend, spec.host_seed(0), trial);
        for (dep, t) in cfg.vms[0].deployments.iter_mut().zip(tenants) {
            dep.arrivals = t.arrivals;
        }
        // A single host records exact per-request latency points (the
        // Figure-9-style time-resolved view); multi-host topologies
        // use the bounded reservoir instead.
        cfg.record_latency_points = true;
        cfg
    }

    /// A single-VM configuration with sensible defaults.
    pub fn single_vm(backend: BackendKind, deployment: Deployment, duration_s: f64) -> Self {
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: vec![deployment],
                vcpus: None,
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 120.0,
            duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: true,
            seed: 42,
            trial: 0,
        }
    }

    /// Returns this configuration's derived jitter stream.
    pub fn jitter_rng(&self) -> sim_core::DetRng {
        sim_core::DetRng::new(self.seed).derive(self.trial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_vcpus_from_shares() {
        let spec = VmSpec {
            deployments: vec![Deployment {
                kind: FunctionKind::Html, // 0.25 shares
                concurrency: 10,
                arrivals: vec![],
            }],
            vcpus: None,
        };
        assert_eq!(spec.effective_vcpus(), 3.0, "ceil(0.25 * 10)");
        let spec2 = VmSpec {
            deployments: spec.deployments.clone(),
            vcpus: Some(8.0),
        };
        assert_eq!(spec2.effective_vcpus(), 8.0);
    }

    #[test]
    fn backend_names() {
        assert_eq!(BackendKind::Squeezy.name(), "Squeezy");
        assert_eq!(BackendKind::VirtioMem.name(), "Virtio-mem");
    }

    #[test]
    fn trial_derives_distinct_jitter_streams() {
        let base = SimConfig::single_vm(
            BackendKind::Squeezy,
            Deployment {
                kind: FunctionKind::Html,
                concurrency: 1,
                arrivals: vec![],
            },
            10.0,
        );
        let mut t0 = base.jitter_rng();
        let mut t1 = SimConfig { trial: 1, ..base }.jitter_rng();
        let a: Vec<u64> = (0..16).map(|_| t0.range(0, 1 << 30)).collect();
        let b: Vec<u64> = (0..16).map(|_| t1.range(0, 1 << 30)).collect();
        assert_ne!(a, b, "trials draw from independent streams");
    }

    #[test]
    fn single_vm_defaults() {
        let cfg = SimConfig::single_vm(
            BackendKind::Squeezy,
            Deployment {
                kind: FunctionKind::Cnn,
                concurrency: 4,
                arrivals: vec![1.0],
            },
            100.0,
        );
        assert_eq!(cfg.vms.len(), 1);
        assert_eq!(cfg.keepalive_s, 120.0);
        assert!(cfg.host_capacity > 1 << 50, "effectively unlimited");
    }
}
