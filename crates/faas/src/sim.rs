//! The FaaS runtime discrete-event simulation.
//!
//! Models the paper's OpenWhisk-based deployment (§5, §6.2): a host
//! controller routes invocations to per-VM agents; agents reuse warm
//! instances, scale up (plug + container init + function init) when none
//! is idle, keep instances alive for a fixed window, and scale down
//! (evict + reclaim) when the window expires. The elasticity backend —
//! Static, vanilla virtio-mem, HarvestVM-opts, Squeezy, or Squeezy with
//! §7 soft memory — decides how guest memory is plugged and reclaimed
//! and at what cost.
//!
//! Time is event-driven; CPU contention inside each VM is the fluid
//! model of [`sim_core::CpuPool`], so a virtio-mem driver kthread
//! migrating pages visibly slows co-located instances (Figure 9), while
//! Squeezy's instant unplug does not.

use std::collections::{BTreeMap, HashMap, VecDeque};

use guest_mm::Pid;
use mem_types::align_up_to_block;
use sim_core::{CostModel, CpuPool, DetRng, EventQueue, SimDuration, SimTime, TaskId, TimeSeries};
use squeezy::{AttachOutcome, PartitionId, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig, VmmError};
use workloads::FunctionKind;

use crate::config::{BackendKind, SimConfig};
use crate::metrics::{FuncMetrics, ReclaimTotals, SimResult};

const EPS_CPU: f64 = 1e-9;

/// Events driving the simulation.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A request for deployment `dep` on VM `vm` arrives.
    Arrival { vm: usize, dep: usize },
    /// A CPU-pool completion may have occurred on VM `vm`.
    CpuDone { vm: usize, gen: u64 },
    /// The memory plug for instance `inst` finished.
    PlugDone { vm: usize, inst: u64 },
    /// Keep-alive check for instance `inst`.
    KeepAlive { vm: usize, inst: u64 },
    /// A reclaim operation completed; release its host memory.
    ReclaimDone { vm: usize, token: u64 },
    /// Background retry of an unplug request the deadline cut short.
    RetryReclaim { vm: usize, bytes: u64, retries: u8 },
    /// Periodic metrics sampling.
    Sample,
}

/// What a CPU-pool task is doing.
#[derive(Clone, Copy, Debug)]
enum Work {
    ContainerInit { inst: u64 },
    FunctionInit { inst: u64 },
    Exec { inst: u64, arrival: SimTime },
    ReclaimKthread { token: u64 },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum InstState {
    Starting,
    Warm,
    Busy,
    /// Alive but its soft partition was revoked (§7): serves nothing
    /// until it re-plugs and rebuilds on the next request.
    Hollow,
}

struct Instance {
    dep: usize,
    pid: Pid,
    state: InstState,
    last_used: SimTime,
    started_at: SimTime,
    plug_done: bool,
    container_done: bool,
    first_exec_pending: bool,
    partition: Option<PartitionId>,
}

struct PendingReclaim {
    /// Host bytes to release when the reclaim completes.
    host_bytes: u64,
    /// Guest bytes unplugged (Figure-8 throughput accounting).
    guest_bytes: u64,
    started: SimTime,
    shortfall: bool,
    pages_migrated: u64,
    /// Bytes the deadline left unreclaimed (virtio backends retry them
    /// in the background, like the real driver's ongoing requests).
    shortfall_bytes: u64,
    /// Background retries left for the shortfall.
    retries_left: u8,
}

struct VmRt {
    vm: Vm,
    squeezy: Option<SqueezyManager>,
    pool: CpuPool,
    pool_gen: u64,
    work: BTreeMap<TaskId, Work>,
    instances: BTreeMap<u64, Instance>,
    /// Per-deployment FIFO of queued request arrival times.
    queues: Vec<VecDeque<SimTime>>,
    reclaim: ReclaimTotals,
    guest_series: TimeSeries,
    inst_series: TimeSeries,
}

impl VmRt {
    fn alive_of(&self, dep: usize) -> usize {
        self.instances.values().filter(|i| i.dep == dep).count()
    }

    fn starting_of(&self, dep: usize) -> usize {
        self.instances
            .values()
            .filter(|i| i.dep == dep && i.state == InstState::Starting)
            .count()
    }

    fn idle_instance_of(&self, dep: usize) -> Option<u64> {
        self.instances
            .iter()
            .filter(|(_, i)| i.dep == dep && i.state == InstState::Warm)
            .map(|(&id, _)| id)
            .next()
    }

    fn hollow_instance_of(&self, dep: usize) -> Option<u64> {
        self.instances
            .iter()
            .filter(|(_, i)| i.dep == dep && i.state == InstState::Hollow)
            .map(|(&id, _)| id)
            .next()
    }
}

/// The FaaS runtime simulator.
pub struct FaasSim {
    config: SimConfig,
    cost: CostModel,
    host: HostMemory,
    vms: Vec<VmRt>,
    events: EventQueue<Event>,
    per_func: BTreeMap<FunctionKind, FuncMetrics>,
    host_series: TimeSeries,
    pending_reclaims: HashMap<(usize, u64), PendingReclaim>,
    next_inst: u64,
    next_token: u64,
    completed: u64,
    rng: DetRng,
    /// HarvestVM-opts slack buffer currently held (host bytes reserved).
    harvest_buffer: u64,
}

impl FaasSim {
    /// Builds a simulation: boots the VMs, installs backends, schedules
    /// all arrivals.
    pub fn new(config: SimConfig) -> Result<FaasSim, VmmError> {
        let cost = CostModel::default();
        let mut host = HostMemory::new(config.host_capacity);
        let mut vms = Vec::new();
        let mut events = EventQueue::new();

        for (vi, spec) in config.vms.iter().enumerate() {
            // Size the VM: boot memory + hotplug region for N instances.
            let total_limit: u64 = spec
                .deployments
                .iter()
                .map(|d| {
                    align_up_to_block(d.kind.profile().memory_limit.bytes()) * d.concurrency as u64
                })
                .sum();
            let shared_need: u64 = spec
                .deployments
                .iter()
                .map(|d| {
                    let p = d.kind.profile();
                    p.deps_bytes + p.rootfs_bytes
                })
                .sum::<u64>()
                + 128 * (1 << 20);
            let shared_bytes = align_up_to_block(shared_need);
            let max_limit: u64 = spec
                .deployments
                .iter()
                .map(|d| align_up_to_block(d.kind.profile().memory_limit.bytes()))
                .max()
                .unwrap_or(0);
            let hotplug = match config.backend {
                b if b.is_squeezy() => shared_bytes + total_limit,
                // Non-partitioned backends get extra device headroom:
                // reclaim shortfalls leave blocks plugged, and the VM
                // must keep growing past them (the paper's virtio-mem
                // "uses the maximum memory available").
                _ => {
                    align_up_to_block(total_limit + shared_bytes + 256 * (1 << 20) + 2 * max_limit)
                }
            };
            let vm_config = VmConfig {
                guest: guest_mm::GuestMmConfig {
                    boot_bytes: 1 << 30,
                    hotplug_bytes: hotplug,
                    kernel_bytes: 192 * (1 << 20),
                    init_on_alloc: true,
                },
                vcpus: spec.effective_vcpus(),
            };
            let mut vm = Vm::boot(vm_config, &mut host)?;

            let squeezy = match config.backend {
                b if b.is_squeezy() => {
                    // One partition size per VM: the largest hosted limit
                    // (co-located functions share limits in the paper's
                    // co-location experiment).
                    let part = spec
                        .deployments
                        .iter()
                        .map(|d| align_up_to_block(d.kind.profile().memory_limit.bytes()))
                        .max()
                        .expect("VM hosts at least one deployment");
                    let n: u32 = spec.deployments.iter().map(|d| d.concurrency).sum();
                    Some(
                        SqueezyManager::install(
                            &mut vm,
                            SqueezyConfig {
                                partition_bytes: part,
                                shared_bytes,
                                concurrency: n,
                            },
                            &cost,
                        )
                        .expect("squeezy layout fits the sized region"),
                    )
                }
                BackendKind::Static => {
                    // Over-provisioned VM: everything plugged at boot.
                    vm.plug(hotplug, &cost).expect("static plug fits region");
                    None
                }
                _ => None,
            };

            let ndeps = spec.deployments.len();
            vms.push(VmRt {
                vm,
                squeezy,
                pool: CpuPool::new(spec.effective_vcpus()),
                pool_gen: 0,
                work: BTreeMap::new(),
                instances: BTreeMap::new(),
                queues: vec![VecDeque::new(); ndeps],
                reclaim: ReclaimTotals::default(),
                guest_series: TimeSeries::new(),
                inst_series: TimeSeries::new(),
            });

            for (di, d) in spec.deployments.iter().enumerate() {
                for &t in d.arrivals.iter().filter(|&&t| t < config.duration_s) {
                    events.push(
                        SimTime::ZERO + SimDuration::from_secs_f64(t),
                        Event::Arrival { vm: vi, dep: di },
                    );
                }
            }
        }
        events.push(SimTime::ZERO, Event::Sample);

        let mut per_func = BTreeMap::new();
        for spec in &config.vms {
            for d in &spec.deployments {
                per_func.entry(d.kind).or_insert_with(FuncMetrics::default);
            }
        }

        // HarvestVM-opts reserves its slack buffer up front — idle
        // memory traded for instant scale-ups (§6.2.2).
        let mut harvest_buffer = 0;
        if config.backend == BackendKind::HarvestOpts {
            let want = config.harvest.buffer_bytes.min(host.free_bytes());
            host.reserve(want).expect("checked free");
            harvest_buffer = want;
        }

        let rng = config.jitter_rng();
        Ok(FaasSim {
            config,
            cost,
            host,
            vms,
            events,
            per_func,
            host_series: TimeSeries::new(),
            pending_reclaims: HashMap::new(),
            next_inst: 0,
            next_token: 0,
            completed: 0,
            rng,
            harvest_buffer,
        })
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(mut self) -> SimResult {
        while let Some((now, ev)) = self.events.pop() {
            match ev {
                Event::Arrival { vm, dep } => self.on_arrival(now, vm, dep),
                Event::CpuDone { vm, gen } => self.on_cpu_done(now, vm, gen),
                Event::PlugDone { vm, inst } => self.on_plug_done(now, vm, inst),
                Event::KeepAlive { vm, inst } => self.on_keepalive(now, vm, inst),
                Event::ReclaimDone { vm, token } => self.on_reclaim_done(now, vm, token),
                Event::RetryReclaim { vm, bytes, retries } => {
                    self.sync_pool(vm, now);
                    self.start_virtio_reclaim(now, vm, bytes, retries);
                    self.reschedule_cpu(vm);
                }
                Event::Sample => self.on_sample(now),
            }
        }
        let end = SimTime::ZERO + SimDuration::from_secs_f64(self.config.duration_s);
        SimResult {
            per_func: self.per_func,
            host_usage: self.host_series,
            guest_usage: self.vms.iter().map(|v| v.guest_series.clone()).collect(),
            instance_counts: self.vms.iter().map(|v| v.inst_series.clone()).collect(),
            reclaims: self.vms.iter().map(|v| v.reclaim).collect(),
            completed: self.completed,
            end,
        }
    }

    // --- Event handlers ---------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, vm: usize, dep: usize) {
        self.sync_pool(vm, now);
        let kind = self.dep_kind(vm, dep);
        if let Some(inst) = self.vms[vm].idle_instance_of(dep) {
            self.metrics(kind).warm_starts += 1;
            self.dispatch_exec(now, vm, inst, now);
        } else {
            self.vms[vm].queues[dep].push_back(now);
            self.metrics(kind).cold_starts += 1;
            self.maybe_scale_up(now, vm, dep);
        }
        self.reschedule_cpu(vm);
    }

    fn on_cpu_done(&mut self, now: SimTime, vm: usize, gen: u64) {
        if self.vms[vm].pool_gen != gen {
            return; // Stale completion prediction.
        }
        self.sync_pool(vm, now);
        // Collect finished tasks.
        let finished: Vec<(TaskId, Work)> = self.vms[vm]
            .work
            .iter()
            .filter(|(tid, _)| {
                self.vms[vm]
                    .pool
                    .remaining(**tid)
                    .map(|r| r <= EPS_CPU)
                    .unwrap_or(false)
            })
            .map(|(&tid, &w)| (tid, w))
            .collect();
        for (tid, work) in finished {
            self.vms[vm].pool.remove(tid);
            self.vms[vm].work.remove(&tid);
            match work {
                Work::ContainerInit { inst } => {
                    if let Some(i) = self.vms[vm].instances.get_mut(&inst) {
                        i.container_done = true;
                    }
                    self.check_init_ready(now, vm, inst);
                }
                Work::FunctionInit { inst } => self.on_instance_warm(now, vm, inst),
                Work::Exec { inst, arrival } => self.on_exec_done(now, vm, inst, arrival),
                Work::ReclaimKthread { token } => {
                    self.events.push(now, Event::ReclaimDone { vm, token });
                }
            }
        }
        self.reschedule_cpu(vm);
    }

    fn on_plug_done(&mut self, now: SimTime, vm: usize, inst: u64) {
        self.sync_pool(vm, now);
        if self.vms[vm].squeezy.is_some() {
            // Squeezy: bind queued waiters to the freshly populated
            // partition(s). A concurrent scale-up may have reused the
            // partition this plug populated; binding goes FIFO and any
            // instance left unbound re-plugs below.
            let mut sq = self.vms[vm].squeezy.take().expect("checked");
            let woken = sq.wake_waiters(&mut self.vms[vm].vm);
            let mut ready = Vec::new();
            for (pid, part) in woken {
                if let Some((&id, _)) = self.vms[vm].instances.iter().find(|(_, i)| i.pid == pid) {
                    let i = self.vms[vm].instances.get_mut(&id).expect("exists");
                    i.partition = Some(part);
                    i.plug_done = true;
                    ready.push(id);
                }
            }
            // A rebuild re-plug (§7 soft memory) completes directly:
            // the instance kept its partition across the revocation.
            let rebuilt = self.vms[vm]
                .instances
                .get(&inst)
                .map(|i| i.state == InstState::Starting && !i.plug_done && i.partition.is_some())
                .unwrap_or(false);
            if rebuilt {
                self.vms[vm]
                    .instances
                    .get_mut(&inst)
                    .expect("checked above")
                    .plug_done = true;
                ready.push(inst);
            }
            // If this event's instance is still unbound (its partition
            // was taken), plug a replacement partition for it.
            let unbound = self.vms[vm]
                .instances
                .get(&inst)
                .map(|i| i.state == InstState::Starting && i.partition.is_none())
                .unwrap_or(false);
            if unbound {
                let (_, report) = sq
                    .plug_partition(&mut self.vms[vm].vm, &self.cost)
                    .expect("a starving instance implies an unpopulated partition");
                self.events
                    .push(now + report.latency(), Event::PlugDone { vm, inst });
            }
            self.vms[vm].squeezy = Some(sq);
            for id in ready {
                self.check_init_ready(now, vm, id);
            }
        } else {
            if let Some(i) = self.vms[vm].instances.get_mut(&inst) {
                i.plug_done = true;
            }
            self.check_init_ready(now, vm, inst);
        }
        self.reschedule_cpu(vm);
    }

    fn on_keepalive(&mut self, now: SimTime, vm: usize, inst: u64) {
        self.sync_pool(vm, now);
        let expired = match self.vms[vm].instances.get(&inst) {
            Some(i) => {
                matches!(i.state, InstState::Warm | InstState::Hollow)
                    && now.since(i.last_used).as_secs_f64() + 1e-6 >= self.config.keepalive_s
            }
            None => false,
        };
        if expired {
            self.evict_instance(now, vm, inst);
            // HarvestVM-opts: proactively evict extra idle instances to
            // refill the slack buffer (§6.2.2) — the "aggressive
            // reclamation" that penalizes their functions later.
            if self.config.backend == BackendKind::HarvestOpts
                && self.harvest_buffer < self.config.harvest.buffer_bytes
            {
                for _ in 0..self.config.harvest.proactive_evictions {
                    let extra = self.vms[vm]
                        .instances
                        .iter()
                        .filter(|(_, i)| i.state == InstState::Warm)
                        .min_by_key(|(_, i)| i.last_used)
                        .map(|(&id, _)| id);
                    match extra {
                        Some(id) => self.evict_instance(now, vm, id),
                        None => break,
                    }
                }
            }
            self.retry_scale_ups(now);
        }
        self.reschedule_cpu(vm);
    }

    fn on_reclaim_done(&mut self, now: SimTime, vm: usize, token: u64) {
        self.sync_pool(vm, now);
        if let Some(p) = self.pending_reclaims.remove(&(vm, token)) {
            self.host.release(p.host_bytes);
            if p.shortfall_bytes > 0 && p.retries_left > 0 {
                // The driver retries the remaining request periodically
                // in the background (the paper's reclamation timeouts:
                // the memory is not available when the scale-up needs
                // it, but the VM recovers eventually).
                self.events.push(
                    now + SimDuration::secs(5),
                    Event::RetryReclaim {
                        vm,
                        bytes: p.shortfall_bytes,
                        retries: p.retries_left - 1,
                    },
                );
            }
            let r = &mut self.vms[vm].reclaim;
            r.bytes += p.guest_bytes;
            r.wall += now.since(p.started);
            r.ops += 1;
            r.pages_migrated += p.pages_migrated;
            if p.shortfall {
                r.shortfalls += 1;
            }
            // HarvestVM-opts: siphon freed memory into the slack buffer.
            if self.config.backend == BackendKind::HarvestOpts {
                let want = self
                    .config
                    .harvest
                    .buffer_bytes
                    .saturating_sub(self.harvest_buffer)
                    .min(self.host.free_bytes());
                if want > 0 {
                    self.host.reserve(want).expect("checked free");
                    self.harvest_buffer += want;
                }
            }
        }
        // Freed memory may unblock waiting scale-ups.
        self.retry_scale_ups(now);
        self.reschedule_cpu(vm);
    }

    fn on_sample(&mut self, now: SimTime) {
        // Safety net for queues whose deployment has no instance left and
        // no reclaim in flight: retry their scale-ups periodically.
        self.retry_scale_ups(now);
        self.host_series.push(now, self.host.used_bytes() as f64);
        for v in &mut self.vms {
            v.guest_series.push(now, v.vm.guest.used_bytes() as f64);
            v.inst_series.push(now, v.instances.len() as f64);
        }
        let next = now + SimDuration::from_secs_f64(self.config.sample_period_s);
        if next.as_secs_f64() <= self.config.duration_s {
            self.events.push(next, Event::Sample);
        }
    }

    // --- Scale-up path ------------------------------------------------------

    fn maybe_scale_up(&mut self, now: SimTime, vm: usize, dep: usize) {
        loop {
            let queued = self.vms[vm].queues[dep].len();
            let starting = self.vms[vm].starting_of(dep);
            if queued <= starting {
                break;
            }
            // Soft backend: a hollow (revoked) instance is cheaper to
            // rebuild than a fresh instance is to start.
            if let Some(hollow) = self.vms[vm].hollow_instance_of(dep) {
                if self.admit(now, vm, dep) {
                    self.rebuild_instance(now, vm, hollow);
                    continue;
                }
                break;
            }
            let alive = self.vms[vm].alive_of(dep);
            let n = self.config.vms[vm].deployments[dep].concurrency as usize;
            if alive >= n {
                break;
            }
            if !self.admit(now, vm, dep) {
                break;
            }
            if !self.start_instance(now, vm, dep) {
                break;
            }
        }
    }

    /// Re-plugs and rebuilds a hollow (soft-revoked) instance: the
    /// container and runtime survived, so only the partition plug and
    /// the working-set rebuild are paid (the §7 soft-cold start).
    fn rebuild_instance(&mut self, now: SimTime, vm: usize, inst: u64) {
        let pid = self.vms[vm].instances[&inst].pid;
        let v = &mut self.vms[vm];
        let sq = v.squeezy.as_mut().expect("soft backend installs squeezy");
        match sq.mark_firm(pid).expect("hollow instance is attached") {
            squeezy::SoftWake::NeedsReplug => {
                let report = sq.replug(&mut v.vm, pid, &self.cost).expect("revoked");
                let i = v.instances.get_mut(&inst).expect("exists");
                i.state = InstState::Starting;
                i.plug_done = false;
                i.container_done = true;
                i.first_exec_pending = true;
                i.started_at = now;
                self.events
                    .push(now + report.latency(), Event::PlugDone { vm, inst });
            }
            squeezy::SoftWake::Warm => {
                // The partition was never unplugged after all.
                let i = v.instances.get_mut(&inst).expect("exists");
                i.state = InstState::Warm;
                i.last_used = now;
            }
        }
    }

    /// Host-memory admission for one new instance: the runtime reserves
    /// the instance's user-defined memory limit (§4.2 — plug requests
    /// carry "the memory size pre-defined by the user"). May trigger
    /// evictions and return `false` (the scale-up is retried on reclaim
    /// completions).
    fn admit(&mut self, now: SimTime, vm: usize, dep: usize) -> bool {
        let estimate = align_up_to_block(self.dep_kind(vm, dep).profile().memory_limit.bytes());
        if self.config.backend == BackendKind::HarvestOpts {
            if self.harvest_buffer >= estimate {
                // Draw from the slack buffer: memory is already
                // reserved; hand it to the VM by releasing it for its
                // faults.
                self.harvest_buffer -= estimate;
                self.host.release(estimate);
                return true;
            }
            if self.harvest_buffer + self.host.free_bytes() >= estimate {
                // Drain what the buffer has and cover the rest from the
                // free pool.
                self.host.release(self.harvest_buffer);
                self.harvest_buffer = 0;
                return true;
            }
        }
        if self.host.free_bytes() >= estimate {
            return true;
        }
        // SqueezySoft: revoke soft partitions first — idle instances
        // donate memory without dying (§7), so the later warm/soft-cold
        // starts stay cheaper than full cold starts.
        if self.config.backend == BackendKind::SqueezySoft {
            let deficit = estimate.saturating_sub(self.host.free_bytes());
            self.revoke_soft_for_pressure(now, deficit);
            if self.host.free_bytes() >= estimate {
                return true;
            }
        }
        // Evict idle instances (oldest first, across all VMs) until the
        // expected release covers the deficit.
        let mut deficit = estimate.saturating_sub(self.host.free_bytes()) as i64;
        while deficit > 0 {
            let victim = self.oldest_idle_instance();
            let Some((v, id)) = victim else { break };
            // Predict the victim's release: its limit-sized reclaim
            // covers roughly the blocks its footprint pinned.
            let released_estimate = {
                let i = &self.vms[v].instances[&id];
                self.config.vms[v].deployments[i.dep]
                    .kind
                    .profile()
                    .anon_bytes
            };
            self.sync_pool(v, now);
            self.evict_instance(now, v, id);
            self.reschedule_cpu(v);
            deficit -= released_estimate as i64;
        }
        // Squeezy's synchronous unplug may have freed enough already.
        self.host.free_bytes() >= estimate
    }

    fn oldest_idle_instance(&self) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64, SimTime)> = None;
        for (vi, v) in self.vms.iter().enumerate() {
            for (&id, i) in &v.instances {
                if i.state == InstState::Warm {
                    match best {
                        Some((_, _, t)) if t <= i.last_used => {}
                        _ => best = Some((vi, id, i.last_used)),
                    }
                }
            }
        }
        best.map(|(v, id, _)| (v, id))
    }

    fn retry_scale_ups(&mut self, now: SimTime) {
        for vi in 0..self.vms.len() {
            self.sync_pool(vi, now);
            for di in 0..self.vms[vi].queues.len() {
                if !self.vms[vi].queues[di].is_empty() {
                    self.maybe_scale_up(now, vi, di);
                }
            }
            self.reschedule_cpu(vi);
        }
    }

    /// Starts one instance. Returns `false` (cancelling the scale-up)
    /// when the memory plug fails — e.g. the virtio-mem region is
    /// exhausted because earlier reclaims timed out short (§6.2.2's
    /// "virtio-mem fails to reclaim the necessary memory ... forcing
    /// [requests] to be served by already alive instances").
    fn start_instance(&mut self, now: SimTime, vm: usize, dep: usize) -> bool {
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        let pid = self.vms[vm]
            .vm
            .guest
            .spawn_process(guest_mm::AllocPolicy::MovableDefault);
        let id = self.next_inst;
        self.next_inst += 1;

        let mut inst = Instance {
            dep,
            pid,
            state: InstState::Starting,
            last_used: now,
            started_at: now,
            plug_done: false,
            container_done: false,
            first_exec_pending: true,
            partition: None,
        };

        // Backend-specific memory plug, in parallel with container init.
        match self.config.backend {
            BackendKind::Static => {
                inst.plug_done = true;
                self.vms[vm].instances.insert(id, inst);
            }
            BackendKind::VirtioMem | BackendKind::HarvestOpts => {
                let bytes = align_up_to_block(profile.memory_limit.bytes());
                let report = {
                    let v = &mut self.vms[vm];
                    match v.vm.plug(bytes, &self.cost) {
                        Ok(r) => r,
                        Err(_) => {
                            // Region exhausted (reclaim shortfalls): the
                            // request stays queued for a warm instance.
                            let _ = v.vm.guest.exit_process(pid);
                            return false;
                        }
                    }
                };
                self.vms[vm].instances.insert(id, inst);
                self.events
                    .push(now + report.latency(), Event::PlugDone { vm, inst: id });
            }
            BackendKind::Squeezy | BackendKind::SqueezySoft => {
                let v = &mut self.vms[vm];
                let sq = v.squeezy.as_mut().expect("squeezy backend installed");
                match sq.attach(&mut v.vm, pid).expect("fresh pid attaches") {
                    AttachOutcome::Attached(part) => {
                        // Reused an already-populated partition.
                        inst.partition = Some(part);
                        inst.plug_done = true;
                        self.vms[vm].instances.insert(id, inst);
                    }
                    AttachOutcome::Queued => {
                        let (_, report) = sq
                            .plug_partition(&mut v.vm, &self.cost)
                            .expect("concurrency bound leaves a partition");
                        self.vms[vm].instances.insert(id, inst);
                        self.events
                            .push(now + report.latency(), Event::PlugDone { vm, inst: id });
                    }
                }
            }
        }

        // Container (sandbox) init starts immediately — §6.2.1: sandbox
        // setup proceeds in parallel with the plug.
        let rootfs_latency = {
            let v = &mut self.vms[vm];
            match v.vm.touch_file(
                &mut self.host,
                kind.rootfs_file(),
                profile.rootfs_pages(),
                &self.cost,
            ) {
                Ok(c) => c.latency.as_secs_f64(),
                Err(_) => 0.05, // Host pressure: fall back to a nominal read.
            }
        };
        let demand = (profile.container_init_cpu_s + rootfs_latency).max(1e-6);
        let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
        self.vms[vm]
            .work
            .insert(tid, Work::ContainerInit { inst: id });
        true
    }

    fn check_init_ready(&mut self, now: SimTime, vm: usize, inst: u64) {
        let ready = match self.vms[vm].instances.get(&inst) {
            Some(i) => i.state == InstState::Starting && i.plug_done && i.container_done,
            None => false,
        };
        if !ready {
            return;
        }
        let (dep, pid) = {
            let i = &self.vms[vm].instances[&inst];
            (i.dep, i.pid)
        };
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        // Function init touches the runtime deps (page cache / shared
        // partition) and most of the anonymous working set.
        let mut extra = 0.0;
        {
            let v = &mut self.vms[vm];
            if let Ok(c) = v.vm.touch_file(
                &mut self.host,
                kind.deps_file(),
                profile.deps_pages(),
                &self.cost,
            ) {
                extra += c.latency.as_secs_f64();
            }
            match v.vm.touch_anon(
                &mut self.host,
                pid,
                profile.anon_pages() * 6 / 10,
                &self.cost,
            ) {
                Ok(c) => extra += c.latency.as_secs_f64(),
                Err(_) => {
                    // OOM (partition or host): the instance dies.
                    self.kill_instance(now, vm, inst);
                    return;
                }
            }
        }
        let demand = (profile.function_init_cpu_s + extra).max(1e-6);
        let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
        self.vms[vm].work.insert(tid, Work::FunctionInit { inst });
    }

    fn on_instance_warm(&mut self, now: SimTime, vm: usize, inst: u64) {
        let dep = {
            let Some(i) = self.vms[vm].instances.get_mut(&inst) else {
                return;
            };
            i.state = InstState::Warm;
            i.last_used = now;
            i.dep
        };
        self.mark_soft_if_enabled(vm, inst);
        let kind = self.dep_kind(vm, dep);
        let cold_ms = now
            .since(self.vms[vm].instances[&inst].started_at)
            .as_millis_f64();
        self.metrics(kind).cold_start_latency.record(cold_ms);
        self.schedule_keepalive(now, vm, inst);
        self.drain_queue(now, vm, dep);
    }

    fn drain_queue(&mut self, now: SimTime, vm: usize, dep: usize) {
        while let Some(&arrival) = self.vms[vm].queues[dep].front() {
            let Some(inst) = self.vms[vm].idle_instance_of(dep) else {
                break;
            };
            self.vms[vm].queues[dep].pop_front();
            self.dispatch_exec(now, vm, inst, arrival);
        }
    }

    fn dispatch_exec(&mut self, now: SimTime, vm: usize, inst: u64, arrival: SimTime) {
        let (dep, pid, first) = {
            let i = self.vms[vm]
                .instances
                .get_mut(&inst)
                .expect("dispatch target");
            debug_assert_eq!(i.state, InstState::Warm);
            i.state = InstState::Busy;
            let first = i.first_exec_pending;
            i.first_exec_pending = false;
            (i.dep, i.pid, first)
        };
        // Soft backend: firm the partition up while the instance works.
        if self.config.backend == BackendKind::SqueezySoft {
            let v = &mut self.vms[vm];
            let sq = v.squeezy.as_mut().expect("installed");
            let _ = sq.mark_firm(pid);
        }
        let kind = self.dep_kind(vm, dep);
        let profile = kind.profile();
        let mut extra = 0.0005; // Agent dispatch overhead.
        if first {
            // First execution touches the rest of the working set.
            let v = &mut self.vms[vm];
            if let Ok(c) = v.vm.touch_anon(
                &mut self.host,
                pid,
                profile.anon_pages() - profile.anon_pages() * 6 / 10,
                &self.cost,
            ) {
                extra += c.latency.as_secs_f64();
            }
        }
        let jitter = self.rng.log_normal(0.0, 0.08);
        let demand = (profile.exec_cpu_s * jitter + extra).max(1e-6);
        let tid = self.vms[vm]
            .pool
            .add_task(demand, profile.vcpu_shares, profile.vcpu_shares);
        self.vms[vm].work.insert(tid, Work::Exec { inst, arrival });
        let _ = now; // Dispatch itself is instantaneous at `now`.
    }

    fn on_exec_done(&mut self, now: SimTime, vm: usize, inst: u64, arrival: SimTime) {
        let dep = {
            let i = self.vms[vm].instances.get_mut(&inst).expect("exec owner");
            i.state = InstState::Warm;
            i.last_used = now;
            i.dep
        };
        self.mark_soft_if_enabled(vm, inst);
        let kind = self.dep_kind(vm, dep);
        let latency_ms = now.since(arrival).as_millis_f64();
        let m = self.metrics(kind);
        m.latency.record(latency_ms);
        m.latency_points.push((arrival.as_secs_f64(), latency_ms));
        self.completed += 1;
        self.schedule_keepalive(now, vm, inst);
        self.drain_queue(now, vm, dep);
        // A newly idle instance may satisfy queued work elsewhere via
        // memory that eviction would free; retry pending scale-ups.
        if !self.vms[vm].queues[dep].is_empty() {
            self.maybe_scale_up(now, vm, dep);
        }
    }

    fn schedule_keepalive(&mut self, now: SimTime, vm: usize, inst: u64) {
        let at = now + SimDuration::from_secs_f64(self.config.keepalive_s);
        self.events.push(at, Event::KeepAlive { vm, inst });
    }

    /// SqueezySoft: newly idle instances offer their partition back.
    fn mark_soft_if_enabled(&mut self, vm: usize, inst: u64) {
        if self.config.backend != BackendKind::SqueezySoft {
            return;
        }
        let pid = self.vms[vm].instances[&inst].pid;
        let sq = self.vms[vm].squeezy.as_mut().expect("installed");
        let _ = sq.mark_soft(pid);
    }

    /// SqueezySoft pressure valve: revoke soft partitions of idle
    /// instances (without evicting them) until `deficit` host bytes are
    /// covered or nothing soft is left. Returns the bytes released.
    fn revoke_soft_for_pressure(&mut self, now: SimTime, deficit: u64) -> u64 {
        let mut released = 0u64;
        for vi in 0..self.vms.len() {
            while released < deficit {
                let used_before = self.host.used_bytes();
                let v = &mut self.vms[vi];
                let Some(sq) = v.squeezy.as_mut() else { break };
                let revoked = sq
                    .revoke_soft(&mut v.vm, &mut self.host, 1, &self.cost)
                    .unwrap_or_default();
                let Some((part, report)) = revoked.into_iter().next() else {
                    break;
                };
                released += used_before - self.host.used_bytes();
                // The partition's instance goes hollow.
                if let Some((&id, _)) = v
                    .instances
                    .iter()
                    .find(|(_, i)| i.partition == Some(part) && i.state == InstState::Warm)
                {
                    v.instances.get_mut(&id).expect("exists").state = InstState::Hollow;
                }
                let r = &mut self.vms[vi].reclaim;
                r.bytes += report.bytes();
                r.wall += report.latency();
                r.ops += 1;
            }
            if released >= deficit {
                break;
            }
        }
        let _ = now;
        released
    }

    // --- Scale-down path ------------------------------------------------------

    /// Evicts one instance and starts the backend's reclaim.
    fn evict_instance(&mut self, now: SimTime, vm: usize, inst: u64) {
        let Some(i) = self.vms[vm].instances.remove(&inst) else {
            return;
        };
        debug_assert_ne!(i.state, InstState::Busy, "never evict busy instances");
        {
            let v = &mut self.vms[vm];
            v.vm.guest
                .exit_process(i.pid)
                .expect("instance process alive");
            if let Some(sq) = v.squeezy.as_mut() {
                sq.detach(i.pid).expect("instance was attached");
            }
        }
        // A hollow instance's partition was already reclaimed when its
        // soft memory was revoked: nothing further to unplug.
        if i.state != InstState::Hollow {
            self.start_reclaim(now, vm, i.dep);
        }
    }

    /// An instance died mid-init (OOM): clean up without reclaim.
    fn kill_instance(&mut self, now: SimTime, vm: usize, inst: u64) {
        let Some(i) = self.vms[vm].instances.remove(&inst) else {
            return;
        };
        let v = &mut self.vms[vm];
        let _ = v.vm.guest.exit_process(i.pid);
        if let Some(sq) = v.squeezy.as_mut() {
            let _ = sq.detach(i.pid);
        }
        let _ = now;
    }

    /// Launches the backend reclaim for one evicted instance of `dep`.
    fn start_reclaim(&mut self, now: SimTime, vm: usize, dep: usize) {
        let kind = self.dep_kind(vm, dep);
        // The runtime resizes by "the function memory requirements
        // (Table 1)" (§6.2): plug and unplug requests are both
        // limit-sized, so the VM's plugged size tracks its instance
        // count. Squeezy's unit is the whole partition by construction.
        let freed = align_up_to_block(kind.profile().memory_limit.bytes());
        let token = self.next_token;
        self.next_token += 1;
        match self.config.backend {
            BackendKind::Static => {}
            BackendKind::Squeezy | BackendKind::SqueezySoft => {
                let used_before = self.host.used_bytes();
                let v = &mut self.vms[vm];
                let sq = v.squeezy.as_mut().expect("squeezy installed");
                match sq.unplug_partition(&mut v.vm, &mut self.host, &self.cost) {
                    Ok((_, report)) => {
                        // Squeezy reclaims synchronously (§6.2.2): the
                        // freed memory is available immediately — "the
                        // drops preceding spikes". The ReclaimDone event
                        // only closes the latency accounting.
                        let _released = used_before - self.host.used_bytes();
                        self.pending_reclaims.insert(
                            (vm, token),
                            PendingReclaim {
                                host_bytes: 0,
                                guest_bytes: report.bytes(),
                                started: now,
                                shortfall: false,
                                pages_migrated: 0,
                                shortfall_bytes: 0,
                                retries_left: 0,
                            },
                        );
                        self.events
                            .push(now + report.latency(), Event::ReclaimDone { vm, token });
                    }
                    Err(_) => { /* partition reused concurrently: nothing to reclaim */ }
                }
            }
            BackendKind::VirtioMem | BackendKind::HarvestOpts => {
                self.start_virtio_reclaim(now, vm, freed, 1);
            }
        }
    }

    /// Launches one virtio-mem unplug of `bytes`, with `retries` more
    /// background attempts for whatever the deadline leaves behind.
    fn start_virtio_reclaim(&mut self, now: SimTime, vm: usize, bytes: u64, retries: u8) {
        let token = self.next_token;
        self.next_token += 1;
        let used_before = self.host.used_bytes();
        let deadline = SimDuration::millis(self.config.unplug_deadline_ms);
        let v = &mut self.vms[vm];
        let report = match v
            .vm
            .unplug(&mut self.host, bytes, Some(deadline), &self.cost)
        {
            Ok(r) => r,
            Err(_) => return,
        };
        if report.bytes() == 0 && report.outcome.migrated == 0 {
            // Nothing reclaimable (no candidates): drop silently.
            return;
        }
        let released = used_before - self.host.used_bytes();
        self.host.reserve(released).expect("just freed");
        self.pending_reclaims.insert(
            (vm, token),
            PendingReclaim {
                host_bytes: released,
                guest_bytes: report.bytes(),
                started: now,
                shortfall: report.shortfall_bytes > 0,
                pages_migrated: report.outcome.migrated,
                shortfall_bytes: report.shortfall_bytes,
                retries_left: retries,
            },
        );
        // The driver kthread migrates pages on the VM's vCPUs — the
        // Figure-9 interference.
        let demand = report.guest_cpu.as_secs_f64().max(1e-6);
        let tid = self.vms[vm].pool.add_task(demand, 1.0, 1.0);
        self.vms[vm]
            .work
            .insert(tid, Work::ReclaimKthread { token });
    }

    // --- Plumbing ---------------------------------------------------------------

    fn dep_kind(&self, vm: usize, dep: usize) -> FunctionKind {
        self.config.vms[vm].deployments[dep].kind
    }

    fn metrics(&mut self, kind: FunctionKind) -> &mut FuncMetrics {
        self.per_func.entry(kind).or_default()
    }

    fn sync_pool(&mut self, vm: usize, now: SimTime) {
        if self.vms[vm].pool.now() < now {
            self.vms[vm].pool.advance_to(now);
        }
    }

    fn reschedule_cpu(&mut self, vm: usize) {
        self.vms[vm].pool_gen += 1;
        let gen = self.vms[vm].pool_gen;
        if let Some((_, t)) = self.vms[vm].pool.next_completion() {
            let at = t.max(self.events.now());
            self.events.push(at, Event::CpuDone { vm, gen });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Deployment, HarvestConfig, VmSpec};
    use mem_types::GIB;

    fn simple_config(backend: BackendKind, arrivals: Vec<f64>) -> SimConfig {
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: vec![Deployment {
                    kind: FunctionKind::Html,
                    concurrency: 4,
                    arrivals,
                }],
                vcpus: Some(2.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 20.0,
            duration_s: 120.0,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            seed: 1,
            trial: 0,
        }
    }

    #[test]
    fn single_request_completes() {
        for backend in [
            BackendKind::Static,
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::HarvestOpts,
            BackendKind::SqueezySoft,
        ] {
            let sim = FaasSim::new(simple_config(backend, vec![1.0])).unwrap();
            let mut result = sim.run();
            assert_eq!(result.completed, 1, "{backend:?}");
            let p99 = result.p99_ms(FunctionKind::Html);
            assert!(p99 > 0.0, "{backend:?} latency recorded");
            // Cold start: includes container+function init (~1 s of work).
            assert!(p99 > 500.0, "{backend:?} cold start visible: {p99} ms");
        }
    }

    #[test]
    fn warm_requests_are_fast() {
        // Two requests 5 s apart: the second reuses the warm instance.
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0, 6.0])).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 2);
        let m = &result.per_func[&FunctionKind::Html];
        assert_eq!(m.warm_starts, 1);
        assert_eq!(m.cold_starts, 1);
        let warm_latency = m.latency_points[1].1;
        let cold_latency = m.latency_points[0].1;
        assert!(
            warm_latency < cold_latency / 2.0,
            "warm {warm_latency} ≪ cold {cold_latency}"
        );
        // HTML at 0.25 share: 0.055 cpu-s → ≈ 220 ms wall.
        assert!(
            warm_latency > 150.0 && warm_latency < 400.0,
            "{warm_latency}"
        );
    }

    #[test]
    fn keepalive_evicts_and_squeezy_reclaims() {
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0])).unwrap();
        let result = sim.run();
        let r = result.total_reclaims();
        assert_eq!(r.ops, 1, "one eviction-driven reclaim");
        assert!(r.bytes >= 768 << 20, "whole partition unplugged");
        assert_eq!(r.pages_migrated, 0, "Squeezy never migrates");
    }

    #[test]
    fn virtio_reclaim_migrates_under_colocation() {
        // Two staggered instances: the second keeps running while the
        // first is evicted, so its pages interleave with the victim's
        // blocks and must be migrated.
        let sim = FaasSim::new(simple_config(
            BackendKind::VirtioMem,
            vec![1.0, 1.1, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0],
        ))
        .unwrap();
        let result = sim.run();
        assert!(result.completed >= 9);
        let r = result.total_reclaims();
        assert!(r.ops >= 1);
        assert!(
            r.pages_migrated > 0,
            "vanilla virtio-mem migrates interleaved pages"
        );
    }

    #[test]
    fn squeezy_reclaim_throughput_beats_virtio() {
        let arrivals: Vec<f64> = vec![1.0, 1.05, 1.1, 1.15]; // 4 concurrent cold starts
        let sq = FaasSim::new(simple_config(BackendKind::Squeezy, arrivals.clone()))
            .unwrap()
            .run();
        let vt = FaasSim::new(simple_config(BackendKind::VirtioMem, arrivals))
            .unwrap()
            .run();
        let sq_tp = sq.total_reclaims().throughput_mibs();
        let vt_tp = vt.total_reclaims().throughput_mibs();
        assert!(sq_tp > 0.0 && vt_tp > 0.0);
        assert!(
            sq_tp > 2.0 * vt_tp,
            "Squeezy throughput {sq_tp:.0} MiB/s ≫ virtio {vt_tp:.0} MiB/s"
        );
    }

    #[test]
    fn static_backend_never_releases_host_memory() {
        let sim = FaasSim::new(simple_config(BackendKind::Static, vec![1.0])).unwrap();
        let result = sim.run();
        assert_eq!(result.total_reclaims().ops, 0);
        // Host usage never decreases (Figure 1's flat host line).
        let pts = result.host_usage.points();
        let peak = result.host_usage.max_value();
        let last = pts.last().unwrap().1;
        assert_eq!(last, peak, "host memory stays at peak");
    }

    #[test]
    fn concurrency_limit_caps_instances() {
        // 10 simultaneous arrivals but concurrency 4.
        let arrivals: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 * 0.01).collect();
        let sim = FaasSim::new(simple_config(BackendKind::Squeezy, arrivals)).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 10, "all requests eventually served");
        let peak_instances = result.instance_counts[0].max_value();
        assert!(peak_instances <= 4.0, "peak {peak_instances} ≤ N");
    }

    #[test]
    fn restricted_host_forces_evictions() {
        // Host fits the VM boot + ~2 instances; 4 sequential bursts force
        // evict-to-scale cycles.
        let mut cfg = simple_config(BackendKind::Squeezy, vec![1.0, 1.05, 80.0, 80.05]);
        cfg.keepalive_s = 10.0;
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4, "all served despite pressure");
    }

    #[test]
    fn soft_backend_revokes_idle_memory_under_pressure() {
        // Two co-resident deployments on a tight host: when the second
        // function's burst arrives, the first function's idle instances
        // donate their partitions via soft revocation instead of dying.
        let mut cfg = SimConfig {
            backend: BackendKind::SqueezySoft,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: vec![
                    Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: vec![1.0, 1.05],
                    },
                    Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: vec![40.0, 40.05],
                    },
                ],
                vcpus: Some(2.0),
            }],
            host_capacity: 4 * GIB + 512 * (1 << 20),
            keepalive_s: 300.0, // Longer than the run: no evictions.
            duration_s: 120.0,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            seed: 1,
            trial: 0,
        };
        // Calibrate the host so the second burst cannot fit without
        // reclaiming the first burst's idle memory.
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4, "all served under pressure");
        let r = result.total_reclaims();
        assert!(r.ops >= 1, "soft revocations reclaimed idle memory");
        assert_eq!(r.pages_migrated, 0, "revocation is migration-free");
    }

    #[test]
    fn soft_backend_rebuilds_hollow_instances() {
        // Same function, two bursts; pressure between them revokes the
        // idle instances, and the second burst rebuilds them (soft-cold
        // start) rather than paying full cold starts.
        let mut cfg = simple_config(BackendKind::SqueezySoft, vec![1.0, 1.05, 60.0, 60.05]);
        cfg.keepalive_s = 300.0;
        cfg.host_capacity = 3 * GIB;
        let sim = FaasSim::new(cfg).unwrap();
        let result = sim.run();
        assert_eq!(result.completed, 4);
        let m = &result.per_func[&FunctionKind::Html];
        // The second burst found the instances alive (hollow or warm):
        // at most the two initial cold starts are full ones.
        assert_eq!(m.cold_starts + m.warm_starts, 4);
    }

    #[test]
    fn soft_backend_without_pressure_behaves_like_squeezy() {
        let soft = FaasSim::new(simple_config(BackendKind::SqueezySoft, vec![1.0, 6.0]))
            .unwrap()
            .run();
        let base = FaasSim::new(simple_config(BackendKind::Squeezy, vec![1.0, 6.0]))
            .unwrap()
            .run();
        assert_eq!(soft.completed, base.completed);
        let ls = soft.per_func[&FunctionKind::Html].latency_points[1].1;
        let lb = base.per_func[&FunctionKind::Html].latency_points[1].1;
        let ratio = ls / lb;
        assert!(
            (0.9..1.1).contains(&ratio),
            "warm path unchanged: {ls} vs {lb}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = FaasSim::new(simple_config(BackendKind::VirtioMem, vec![1.0, 2.0, 3.0]))
            .unwrap()
            .run();
        let b = FaasSim::new(simple_config(BackendKind::VirtioMem, vec![1.0, 2.0, 3.0]))
            .unwrap()
            .run();
        assert_eq!(a.completed, b.completed);
        let la: Vec<_> = a.per_func[&FunctionKind::Html]
            .latency_points
            .iter()
            .map(|&(_, l)| l.to_bits())
            .collect();
        let lb: Vec<_> = b.per_func[&FunctionKind::Html]
            .latency_points
            .iter()
            .map(|&(_, l)| l.to_bits())
            .collect();
        assert_eq!(la, lb);
    }
}
