//! The 1:1 (single-container-per-VM) model and the N:1 cold-start path —
//! the Figure-11 comparison.
//!
//! The 1:1 model boots a dedicated microVM per instance: it pays the VMM
//! boot delay, reads the container rootfs and runtime dependencies from
//! storage with a cold page cache, and replicates guest-OS state per
//! instance. The N:1 path plugs a Squeezy partition into an already
//! running VM whose shared partition has the dependencies cached.

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{align_up_to_block, MIB};
use sim_core::{CostModel, SimDuration};
use squeezy::{AttachOutcome, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig, VmmError};
use workloads::FunctionKind;

/// Guest OS footprint of a dedicated microVM (kernel, init, agent) that
/// the 1:1 model replicates per instance (§6.3 "replicating the guest OS
/// state").
pub const MICROVM_OS_BYTES: u64 = 144 * MIB;

/// Cold-start latency broken into the Figure-11a components.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColdStartBreakdown {
    /// VMM cold delays: microVM boot (1:1) or memory plug (N:1).
    pub vmm_delay: SimDuration,
    /// Sandbox (container) initialization.
    pub container_init: SimDuration,
    /// Runtime + function initialization.
    pub function_init: SimDuration,
    /// First request execution.
    pub function_exec: SimDuration,
}

impl ColdStartBreakdown {
    /// End-to-end cold-start latency.
    pub fn total(&self) -> SimDuration {
        self.vmm_delay + self.container_init + self.function_init + self.function_exec
    }

    /// VMM share of the total (the paper reports 20.2 % for 1:1 and
    /// 1.19 % for N:1 on average).
    pub fn vmm_fraction(&self) -> f64 {
        self.vmm_delay.as_nanos() as f64 / self.total().as_nanos() as f64
    }
}

/// Runs one cold start on a fresh 1:1 microVM.
///
/// Returns the latency breakdown and the instance's host memory
/// footprint (guest OS + dependencies + private memory — all
/// per-instance in this model).
pub fn microvm_cold_start(
    kind: FunctionKind,
    cost: &CostModel,
) -> Result<(ColdStartBreakdown, u64), VmmError> {
    let profile = kind.profile();
    let mut host = HostMemory::new(u64::MAX / 2);
    // The microVM is booted with the minimum memory for one instance
    // (§6.3): the Table-1 limit plus the guest OS footprint.
    let boot = align_up_to_block(profile.memory_limit.bytes() + MICROVM_OS_BYTES);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: boot,
                hotplug_bytes: 0,
                kernel_bytes: MICROVM_OS_BYTES,
                init_on_alloc: true,
            },
            vcpus: 1.0,
        },
        &mut host,
    )?;

    // VMM cold delays: fixed boot work plus faulting the guest kernel's
    // working set into fresh host memory.
    let mut b = ColdStartBreakdown {
        vmm_delay: SimDuration::nanos(cost.microvm_boot_fixed_ns)
            + cost.ept_faults(MICROVM_OS_BYTES / mem_types::PAGE_SIZE),
        ..ColdStartBreakdown::default()
    };

    // Container init: rootfs read from storage (cold page cache).
    let rootfs = vm.touch_file(&mut host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
    b.container_init = SimDuration::from_secs_f64(profile.container_init_cpu_s) + rootfs.latency;

    // Function init: dependencies from storage + most of the anon set.
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let deps = vm.touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)?;
    let anon_init = vm.touch_anon(&mut host, pid, profile.anon_pages() * 6 / 10, cost)?;
    b.function_init =
        SimDuration::from_secs_f64(profile.function_init_cpu_s) + deps.latency + anon_init.latency;

    // First execution: the rest of the working set + the run itself at
    // the container's CPU share.
    let anon_rest = vm.touch_anon(
        &mut host,
        pid,
        profile.anon_pages() - profile.anon_pages() * 6 / 10,
        cost,
    )?;
    b.function_exec =
        SimDuration::from_secs_f64(profile.exec_cpu_s / profile.vcpu_shares) + anon_rest.latency;

    let footprint = vm.host_rss();
    Ok((b, footprint))
}

/// Runs one cold start on a warm N:1 Squeezy VM (Figure 11's N:1 bars).
///
/// A first instance is started and evicted to warm the shared caches —
/// the steady state of an N:1 VM — then the measured instance scales up:
/// partition plug, container init against a cached rootfs, function init
/// against cached dependencies, first execution.
///
/// Returns the breakdown and the instance's *marginal* host footprint.
pub fn n_to_one_cold_start(
    kind: FunctionKind,
    cost: &CostModel,
) -> Result<(ColdStartBreakdown, u64), VmmError> {
    let profile = kind.profile();
    let mut host = HostMemory::new(u64::MAX / 2);
    let part_bytes = align_up_to_block(profile.memory_limit.bytes());
    let shared_bytes = align_up_to_block(profile.deps_bytes + profile.rootfs_bytes + 64 * MIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 1 << 30,
                hotplug_bytes: shared_bytes + 4 * part_bytes,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )?;
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: part_bytes,
            shared_bytes,
            concurrency: 4,
        },
        cost,
    )
    .expect("region sized for the layout");

    // Warm-up instance: populates the shared partition's page cache.
    {
        let (_, _) = sq
            .plug_partition(&mut vm, cost)
            .expect("partition available");
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).expect("attach");
        vm.touch_file(&mut host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
        vm.touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)?;
        vm.touch_anon(&mut host, pid, profile.anon_pages(), cost)?;
        vm.guest.exit_process(pid).expect("alive");
        sq.detach(pid).expect("attached");
        sq.unplug_partition(&mut vm, &mut host, cost)
            .expect("free partition");
    }

    let rss_before = vm.host_rss();
    let mut b = ColdStartBreakdown::default();

    // Scale-up: plug a Squeezy partition (the N:1 "VMM delay").
    let (_, plug) = sq
        .plug_partition(&mut vm, cost)
        .expect("partition available");
    b.vmm_delay = plug.latency();

    // Container init: rootfs is already in the guest page cache.
    let rootfs = vm.touch_file(&mut host, kind.rootfs_file(), profile.rootfs_pages(), cost)?;
    b.container_init = SimDuration::from_secs_f64(profile.container_init_cpu_s) + rootfs.latency;

    // Function init: dependencies cached; anon faults hit freshly
    // plugged memory (nested-fault tax, §6.2.1).
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    match sq.attach(&mut vm, pid).expect("attach succeeds") {
        AttachOutcome::Attached(_) => {}
        AttachOutcome::Queued => unreachable!("partition was just plugged"),
    }
    let deps = vm.touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)?;
    let anon_init = vm.touch_anon(&mut host, pid, profile.anon_pages() * 6 / 10, cost)?;
    b.function_init =
        SimDuration::from_secs_f64(profile.function_init_cpu_s) + deps.latency + anon_init.latency;

    let anon_rest = vm.touch_anon(
        &mut host,
        pid,
        profile.anon_pages() - profile.anon_pages() * 6 / 10,
        cost,
    )?;
    b.function_exec =
        SimDuration::from_secs_f64(profile.exec_cpu_s / profile.vcpu_shares) + anon_rest.latency;

    let footprint = vm.host_rss() - rss_before;
    Ok((b, footprint))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_pays_boot_delay() {
        let cost = CostModel::default();
        let (b, footprint) = microvm_cold_start(FunctionKind::Html, &cost).unwrap();
        assert!(b.vmm_delay > SimDuration::millis(300), "{}", b.vmm_delay);
        assert!(b.vmm_fraction() > 0.10, "vmm share {:.2}", b.vmm_fraction());
        // Footprint includes the replicated guest OS.
        assert!(footprint > MICROVM_OS_BYTES);
    }

    #[test]
    fn n_to_one_plug_is_cheap() {
        let cost = CostModel::default();
        let (b, _) = n_to_one_cold_start(FunctionKind::Html, &cost).unwrap();
        // Paper: plug costs 35-45 ms across function sizes.
        let ms = b.vmm_delay.as_millis_f64();
        assert!((20.0..60.0).contains(&ms), "plug took {ms} ms");
        assert!(b.vmm_fraction() < 0.05, "vmm share {:.3}", b.vmm_fraction());
    }

    #[test]
    fn n_to_one_cold_start_is_faster() {
        let cost = CostModel::default();
        for kind in FunctionKind::ALL {
            let (one, _) = microvm_cold_start(kind, &cost).unwrap();
            let (n, _) = n_to_one_cold_start(kind, &cost).unwrap();
            let speedup = one.total().as_nanos() as f64 / n.total().as_nanos() as f64;
            assert!(
                speedup > 1.2,
                "{}: N:1 should win, got {speedup:.2}x",
                kind.name()
            );
            // Container init benefits from the cached rootfs.
            assert!(n.container_init < one.container_init, "{}", kind.name());
            assert!(n.function_init < one.function_init, "{}", kind.name());
        }
    }

    #[test]
    fn one_to_one_footprint_is_larger() {
        let cost = CostModel::default();
        let mut ratios = Vec::new();
        for kind in FunctionKind::ALL {
            let (_, one) = microvm_cold_start(kind, &cost).unwrap();
            let (_, n) = n_to_one_cold_start(kind, &cost).unwrap();
            assert!(one > n, "{}: 1:1 {one} ≤ N:1 {n}", kind.name());
            ratios.push(one as f64 / n as f64);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        // Paper: 2.53x on average.
        assert!(
            (1.8..3.5).contains(&avg),
            "average footprint ratio {avg:.2} out of band"
        );
    }

    #[test]
    fn bert_suffers_most_from_replication() {
        let cost = CostModel::default();
        let mut worst: Option<(FunctionKind, u64)> = None;
        for kind in FunctionKind::ALL {
            let (_, one) = microvm_cold_start(kind, &cost).unwrap();
            let (_, n) = n_to_one_cold_start(kind, &cost).unwrap();
            let overhead = one - n;
            match worst {
                Some((_, w)) if w >= overhead => {}
                _ => worst = Some((kind, overhead)),
            }
        }
        assert_eq!(
            worst.unwrap().0,
            FunctionKind::Bert,
            "largest-deps function replicates the most"
        );
    }
}
