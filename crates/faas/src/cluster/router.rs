//! Request routing policies for the cluster simulator.
//!
//! A [`Router`] maps each arriving request to a host, deterministically,
//! from a snapshot of per-host load ([`HostLoad`]). Ties always break
//! toward the lowest host index so runs are reproducible; randomized
//! policies ([`PowerOfTwoChoices`]) draw from their own seeded
//! [`DetRng`] stream, which keeps them deterministic too.

use sim_core::DetRng;

/// A deterministic snapshot of one host's load, taken at routing time
/// for the arriving tenant.
#[derive(Clone, Copy, Debug)]
pub struct HostLoad {
    /// Idle warm instances of the tenant's deployment on this host.
    pub warm_idle: usize,
    /// Live instances (any state) of the tenant's deployment.
    pub alive: usize,
    /// Queued requests across all of the host's deployments.
    pub queued: usize,
    /// Busy or starting instances across the host.
    pub active: usize,
    /// Free host memory in bytes.
    pub free_bytes: u64,
}

impl HostLoad {
    /// The scalar load metric the default policies order hosts by.
    pub fn pressure(&self) -> usize {
        self.queued + self.active
    }
}

/// Chooses a host for each arriving request.
///
/// Implementations must be deterministic functions of their own state
/// and the provided snapshot: the cluster simulator's reproducibility
/// (and its byte-identity property with one host) depends on it.
pub trait Router {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Whether [`route`](Router::route) reads the load snapshots.
    /// Policies that ignore them (round-robin, single-host) return
    /// `false`, and the simulators skip the O(hosts) snapshot per
    /// arrival — the snapshots' *contents* never reach such a policy,
    /// so the routing decisions (and the run) are unchanged.
    fn needs_loads(&self) -> bool {
        true
    }

    /// Returns the index of the host that serves this request.
    /// `hosts` is never empty; the returned index must be in range.
    fn route(&mut self, tenant: usize, hosts: &[HostLoad]) -> usize;
}

/// The router registry: construction recipes for every routing policy,
/// addressable by the string key scenario specs and result tables use.
///
/// `Box<dyn Router>` is stateful, so grids and scenarios carry a
/// `RouterKind` and build a fresh instance per run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterKind {
    /// Everything to host 0 (the single-host equivalence mode).
    SingleHost,
    RoundRobin,
    LeastLoaded,
    WarmAffinity,
    PowerOfTwo,
}

impl RouterKind {
    /// All routing policies, in table order.
    pub const ALL: [RouterKind; 5] = [
        RouterKind::SingleHost,
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::WarmAffinity,
        RouterKind::PowerOfTwo,
    ];

    /// Registry key — the router's own display name, so spec files and
    /// result tables cannot drift from the implementations.
    pub fn key(self) -> &'static str {
        self.build(0).name()
    }

    /// Looks a router up by key; `Err` carries the full list of valid
    /// keys.
    pub fn from_key(key: &str) -> Result<RouterKind, String> {
        sim_core::registry::lookup("router", &RouterKind::ALL, RouterKind::key, key)
    }

    /// Builds a fresh router instance. Randomized policies derive their
    /// probe stream from `seed`; the deterministic ones ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Router> {
        match self {
            RouterKind::SingleHost => Box::new(SingleHost),
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastLoaded => Box::new(LeastLoaded),
            RouterKind::WarmAffinity => Box::new(WarmAffinity),
            RouterKind::PowerOfTwo => Box::new(PowerOfTwoChoices::from_seed(seed)),
        }
    }
}

/// Routes everything to host 0 — the passthrough router that makes a
/// one-host cluster reproduce the single-host simulator exactly.
pub struct SingleHost;

impl Router for SingleHost {
    fn name(&self) -> &'static str {
        "single-host"
    }

    fn needs_loads(&self) -> bool {
        false
    }

    fn route(&mut self, _tenant: usize, _hosts: &[HostLoad]) -> usize {
        0
    }
}

/// Classic round-robin: hosts take turns regardless of load.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn needs_loads(&self) -> bool {
        false
    }

    fn route(&mut self, _tenant: usize, hosts: &[HostLoad]) -> usize {
        let h = self.next % hosts.len();
        self.next = (self.next + 1) % hosts.len();
        h
    }
}

/// Sends each request to the host with the least queued + active work.
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _tenant: usize, hosts: &[HostLoad]) -> usize {
        hosts
            .iter()
            .enumerate()
            .min_by_key(|(i, h)| (h.pressure(), *i))
            .map(|(i, _)| i)
            .expect("at least one host")
    }
}

/// Warm-affinity (locality) routing: prefer a host holding an idle warm
/// instance of the tenant's function — reusing warm state beats raw
/// balance — falling back to least-loaded when nothing is warm.
pub struct WarmAffinity;

impl Router for WarmAffinity {
    fn name(&self) -> &'static str {
        "warm-affinity"
    }

    fn route(&mut self, tenant: usize, hosts: &[HostLoad]) -> usize {
        let warm = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.warm_idle > 0)
            .min_by_key(|(i, h)| (h.pressure(), *i))
            .map(|(i, _)| i);
        match warm {
            Some(i) => i,
            None => LeastLoaded.route(tenant, hosts),
        }
    }
}

/// Power-of-two-choices: sample two hosts uniformly from a private
/// seeded stream and send the request to the less pressured of the
/// pair (ties toward the lower index).
///
/// The classic result (Mitzenmacher '01) is that two random probes cut
/// the maximum queue imbalance exponentially versus one, while staying
/// *stale-view tolerant*: the policy compares only the two sampled
/// hosts, so a control plane whose [`HostLoad`] snapshots lag reality —
/// or a fleet whose host set churns between requests — never herds
/// every arrival onto one "least loaded" victim the way a full argmin
/// over a stale view does. Sampling is positional: the router needs no
/// stable host identities, which is exactly what a fleet with booting,
/// draining and failing hosts can't provide.
pub struct PowerOfTwoChoices {
    rng: DetRng,
}

impl PowerOfTwoChoices {
    /// Builds the router on its own derived stream.
    pub fn new(rng: DetRng) -> Self {
        PowerOfTwoChoices { rng }
    }

    /// Builds the router from a root seed (stream tag `0xD2C`).
    pub fn from_seed(seed: u64) -> Self {
        PowerOfTwoChoices::new(DetRng::new(seed).derive(0xD2C))
    }
}

impl Router for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "power-of-two"
    }

    fn route(&mut self, _tenant: usize, hosts: &[HostLoad]) -> usize {
        let n = hosts.len() as u64;
        // Two draws are always consumed, even for a one-host fleet, so
        // the stream position — and thus every later decision — depends
        // only on how many requests were routed, not on fleet size.
        let a = self.rng.range(0, n) as usize;
        let b = self.rng.range(0, n) as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        if (hosts[lo].pressure(), lo) <= (hosts[hi].pressure(), hi) {
            lo
        } else {
            hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(warm_idle: usize, queued: usize, active: usize) -> HostLoad {
        HostLoad {
            warm_idle,
            alive: warm_idle,
            queued,
            active,
            free_bytes: 0,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let hosts = vec![load(0, 0, 0); 3];
        let mut r = RoundRobin::default();
        let picks: Vec<usize> = (0..7).map(|_| r.route(0, &hosts)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_picks_minimum_with_stable_ties() {
        let hosts = vec![load(0, 2, 1), load(0, 0, 1), load(0, 1, 0), load(0, 0, 1)];
        assert_eq!(LeastLoaded.route(0, &hosts), 1, "tie breaks to index 1");
    }

    #[test]
    fn warm_affinity_prefers_warm_host_else_least_loaded() {
        let hosts = vec![load(0, 0, 0), load(1, 5, 5), load(2, 8, 0)];
        // Hosts 1 and 2 have warm instances; host 2 is less pressured
        // (8 < 10), and the idle host 0 does not qualify.
        assert_eq!(WarmAffinity.route(0, &hosts), 2);
        let cold = vec![load(0, 3, 0), load(0, 1, 1), load(0, 0, 1)];
        assert_eq!(WarmAffinity.route(0, &cold), 2, "falls back to load");
    }

    #[test]
    fn single_host_pins_zero() {
        let hosts = vec![load(0, 9, 9), load(5, 0, 0)];
        assert_eq!(SingleHost.route(3, &hosts), 0);
    }

    #[test]
    fn power_of_two_is_deterministic_in_its_seed() {
        let hosts: Vec<HostLoad> = (0..8).map(|i| load(0, i % 3, i % 2)).collect();
        let picks = |seed: u64| -> Vec<usize> {
            let mut r = PowerOfTwoChoices::from_seed(seed);
            (0..64).map(|t| r.route(t, &hosts)).collect()
        };
        assert_eq!(picks(0xC1), picks(0xC1), "same seed, same stream");
        assert_ne!(picks(0xC1), picks(0xC2), "different seeds diverge");
    }

    #[test]
    fn power_of_two_prefers_the_lighter_probe() {
        // Host 0 is drowning; every pair that includes any other host
        // must avoid it, so host 0 wins only when both probes hit it.
        let hosts = vec![load(0, 100, 100), load(0, 0, 0), load(0, 0, 0)];
        let mut r = PowerOfTwoChoices::from_seed(7);
        let n = 300;
        let hot = (0..n).filter(|&t| r.route(t, &hosts) == 0).count();
        // P(both probes = 0) = 1/9 ≈ 33 of 300; allow generous slack.
        assert!(hot < n / 5, "overloaded host picked {hot}/{n} times");
    }

    #[test]
    fn power_of_two_spreads_across_equal_hosts() {
        let hosts = vec![load(0, 0, 0); 4];
        let mut r = PowerOfTwoChoices::from_seed(9);
        let mut counts = [0usize; 4];
        for t in 0..400 {
            counts[r.route(t, &hosts)] += 1;
        }
        // Ties break low, so the pick is min(a, b): host k is chosen
        // with probability (2(4-k)-1)/16 — every host still gets a
        // non-trivial share (host 3's is 1/16 ≈ 25).
        assert!(
            counts.iter().all(|&c| c > 8),
            "every host sees traffic: {counts:?}"
        );
        assert!(counts[0] > counts[3], "low indices win ties: {counts:?}");
    }

    #[test]
    fn power_of_two_handles_one_host() {
        let hosts = vec![load(0, 3, 3)];
        let mut r = PowerOfTwoChoices::from_seed(1);
        assert_eq!(r.route(0, &hosts), 0);
    }

    #[test]
    fn router_registry_round_trips() {
        for r in RouterKind::ALL {
            assert_eq!(RouterKind::from_key(r.key()), Ok(r));
        }
        let err = RouterKind::from_key("p2c").unwrap_err();
        assert!(err.contains("power-of-two"), "error lists keys: {err}");
        assert_eq!(RouterKind::PowerOfTwo.key(), "power-of-two");
        assert_eq!(RouterKind::SingleHost.key(), "single-host");
    }
}
