//! The multi-host cluster simulator.
//!
//! [`ClusterSim`] runs N [`HostSim`]s under **one** event engine: a
//! single deterministic queue interleaves every host's events with the
//! cluster-level tenant arrivals, and a pluggable [`Router`] assigns
//! each arriving request to a host at pop time — so dynamic policies
//! (least-loaded, warm-affinity) see real-time load, not a static
//! partition of the trace.
//!
//! Determinism is structural: the shared queue breaks time ties FIFO,
//! arrivals are scheduled in tenant order at construction (exactly the
//! order [`crate::FaasSim`] uses), and routers are deterministic. With
//! one host and the [`SingleHost`] router, the queue contents and hence
//! the run are *byte-identical* to the single-host simulator — a
//! property the `cluster_equivalence` test pins for random traces.

mod router;

pub use router::{
    HostLoad, LeastLoaded, PowerOfTwoChoices, RoundRobin, Router, RouterKind, SingleHost,
    WarmAffinity,
};

use std::collections::BTreeMap;

use sim_core::{DetRng, EventQueue, Histogram, Reservoir, SimTime};
use vmm::VmmError;
use workloads::{FunctionKind, TraceSource};

use crate::config::SimConfig;
use crate::feed::ArrivalFeed;
use crate::metrics::SimResult;
use crate::sim::events::{Event, EventSink};
use crate::sim::host::HostSim;

/// One tenant's invocation trace, addressed to a deployment slot every
/// host exposes.
#[derive(Clone, Debug)]
pub struct TenantTrace {
    /// VM index of the tenant's deployment on each host.
    pub vm: usize,
    /// Deployment index within that VM.
    pub dep: usize,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
}

/// A cluster: per-host simulation configs plus the tenant traces the
/// router spreads over them.
///
/// Every host must expose each tenant's `(vm, dep)` deployment slot;
/// arrival lists inside the host configs are ignored (the cluster owns
/// the traces). Hosts share `duration_s`.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-host simulation configs.
    pub hosts: Vec<SimConfig>,
    /// The tenant traces routed across the hosts.
    pub tenants: Vec<TenantTrace>,
}

impl ClusterConfig {
    /// Builds the cluster a
    /// [`Topology::Cluster`](crate::scenario::Topology::Cluster)
    /// scenario runs: `n` identical hosts on derived jitter seeds, the
    /// scenario's tenant traces routed across them.
    ///
    /// Part of the scenario front door — the `scenario_equivalence`
    /// test pins `Scenario::run_trial` byte-identical to
    /// `ClusterSim::new(ClusterConfig::from_scenario(..), ..).run()`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's topology is not `cluster(n)`.
    pub fn from_scenario(
        spec: &crate::scenario::Scenario,
        backend: crate::config::BackendKind,
        trial: u64,
    ) -> ClusterConfig {
        let crate::scenario::Topology::Cluster(n) = spec.topology else {
            panic!(
                "ClusterConfig::from_scenario needs a cluster(n) topology, got {}",
                spec.topology.key()
            );
        };
        let tenants = spec.tenant_loads(trial);
        ClusterConfig {
            hosts: (0..n)
                .map(|h| spec.host_config(&tenants, backend, spec.host_seed(h as u64), trial))
                .collect(),
            tenants: tenants
                .iter()
                .enumerate()
                .map(|(ti, t)| TenantTrace {
                    vm: 0,
                    dep: ti,
                    arrivals: t.arrivals.clone(),
                })
                .collect(),
        }
    }

    /// Wraps a single-host config into a cluster: its deployments'
    /// arrival traces become the tenant traces. With the
    /// [`SingleHost`] router this reproduces `FaasSim::new(cfg)`
    /// byte-for-byte.
    pub fn from_single(cfg: SimConfig) -> ClusterConfig {
        let tenants = cfg
            .vms
            .iter()
            .enumerate()
            .flat_map(|(vi, spec)| {
                spec.deployments
                    .iter()
                    .enumerate()
                    .map(move |(di, d)| TenantTrace {
                        vm: vi,
                        dep: di,
                        arrivals: d.arrivals.clone(),
                    })
            })
            .collect();
        ClusterConfig {
            hosts: vec![cfg],
            tenants,
        }
    }
}

/// Events of the shared cluster engine. Tenant arrivals never enter
/// the queue: the run loop pulls them lazily from an [`ArrivalFeed`]
/// and routes them inline, so queue memory is O(pending host events).
enum ClusterEvent {
    /// A host-internal event.
    Host { host: usize, ev: Event },
}

/// Adapter tagging one host's scheduled events into the shared queue.
struct HostSink<'a> {
    q: &'a mut EventQueue<ClusterEvent>,
    host: usize,
}

impl EventSink for HostSink<'_> {
    fn push(&mut self, at: SimTime, ev: Event) {
        self.q.push(
            at,
            ClusterEvent::Host {
                host: self.host,
                ev,
            },
        );
    }
}

/// Retained capacity of the cluster/fleet time-resolved latency
/// reservoirs: enough for windowed means over any run length, constant
/// memory no matter how many requests complete.
pub const LATENCY_RESERVOIR_CAP: usize = 4096;

/// Derivation tag of the reservoir's replacement stream (from the
/// first host's seed), distinct from every per-host jitter stream.
pub(crate) const RESERVOIR_STREAM: u64 = 0x5E5E;

/// Everything a cluster run produces.
pub struct ClusterResult {
    /// Per-host simulation results, in host order.
    pub hosts: Vec<SimResult>,
    /// Requests routed to `[host][tenant]`.
    pub routed: Vec<Vec<u64>>,
    /// Total requests completed across the cluster.
    pub completed: u64,
    /// Bounded uniform sample of `(arrival_s, latency_ms)` across the
    /// whole cluster — time-resolved latency for long runs without
    /// per-request memory (see [`LATENCY_RESERVOIR_CAP`]).
    pub latency_over_time: Reservoir,
    /// Total events the shared engine processed — queue pops plus fed
    /// arrivals (the events/sec numerator of `repro perf`).
    pub events_processed: u64,
    /// High-water mark of the shared event queue.
    pub peak_queue_depth: usize,
    /// Arrivals the feed injected (the offered load actually replayed,
    /// whether from materialized traces or a streamed file).
    pub injected: u64,
}

impl ClusterResult {
    /// Cluster-wide request-latency histograms, merged per function.
    pub fn merged_latency(&self) -> BTreeMap<FunctionKind, Histogram> {
        let mut merged: BTreeMap<FunctionKind, Histogram> = BTreeMap::new();
        for host in &self.hosts {
            for (&kind, m) in &host.per_func {
                merged.entry(kind).or_default().merge(&m.latency);
            }
        }
        merged
    }

    /// Cluster-wide cold and warm start counts.
    pub fn cold_warm_starts(&self) -> (u64, u64) {
        self.hosts
            .iter()
            .flat_map(|h| h.per_func.values())
            .fold((0, 0), |(c, w), m| (c + m.cold_starts, w + m.warm_starts))
    }

    /// Integrated host memory footprint across the cluster (GiB·s).
    pub fn total_gib_seconds(&self) -> f64 {
        self.hosts.iter().map(|h| h.gib_seconds()).sum()
    }

    /// Requests routed per host (imbalance diagnostics).
    pub fn routed_per_host(&self) -> Vec<u64> {
        self.routed
            .iter()
            .map(|per_tenant| per_tenant.iter().sum())
            .collect()
    }
}

/// The multi-host FaaS cluster simulator.
pub struct ClusterSim {
    hosts: Vec<HostSim>,
    tenants: Vec<TenantTrace>,
    router: Box<dyn Router>,
    events: EventQueue<ClusterEvent>,
    feed: ArrivalFeed,
    routed: Vec<Vec<u64>>,
    latency_over_time: Reservoir,
}

impl ClusterSim {
    /// Boots every host and takes the tenant traces into a lazy feed
    /// (tenant-ordered, exactly the order the former pre-push used);
    /// only the per-host sample chains enter the queue up front.
    pub fn new(mut config: ClusterConfig, router: Box<dyn Router>) -> Result<ClusterSim, VmmError> {
        let duration_s = ClusterSim::check(&config);
        let slots = config
            .tenants
            .iter_mut()
            .map(|t| std::mem::take(&mut t.arrivals))
            .collect();
        let feed = ArrivalFeed::merged(slots, duration_s);
        ClusterSim::build(config, router, feed, false)
    }

    /// Boots every host and streams arrivals from a trace source:
    /// tenant `i` of the trace addresses `config.tenants[i]`'s
    /// `(vm, dep)` slot (any materialized arrivals in the config are
    /// ignored). Hosts run in bounded-metrics mode so memory stays
    /// constant over multi-million-invocation replays. `origin` names
    /// the trace in diagnostics.
    pub fn with_source(
        config: ClusterConfig,
        router: Box<dyn Router>,
        source: Box<dyn TraceSource>,
        origin: &str,
    ) -> Result<ClusterSim, VmmError> {
        let duration_s = ClusterSim::check(&config);
        let feed = ArrivalFeed::stream(source, duration_s, origin);
        ClusterSim::build(config, router, feed, true)
    }

    fn check(config: &ClusterConfig) -> f64 {
        assert!(
            !config.hosts.is_empty(),
            "a cluster needs at least one host"
        );
        config.hosts[0].duration_s
    }

    fn build(
        config: ClusterConfig,
        router: Box<dyn Router>,
        feed: ArrivalFeed,
        bounded: bool,
    ) -> Result<ClusterSim, VmmError> {
        let reservoir_rng = DetRng::new(config.hosts[0].seed).derive(RESERVOIR_STREAM);
        let mut hosts: Vec<HostSim> = config
            .hosts
            .into_iter()
            .map(HostSim::new)
            .collect::<Result<_, _>>()?;
        for h in &mut hosts {
            h.enable_latency_tap();
            if bounded {
                h.enable_bounded_metrics();
            }
        }
        let mut events = EventQueue::new();
        for host in 0..hosts.len() {
            events.push(
                SimTime::ZERO,
                ClusterEvent::Host {
                    host,
                    ev: Event::Sample,
                },
            );
        }
        let routed = vec![vec![0; config.tenants.len()]; hosts.len()];
        Ok(ClusterSim {
            hosts,
            tenants: config.tenants,
            router,
            events,
            feed,
            routed,
            latency_over_time: Reservoir::new(LATENCY_RESERVOIR_CAP, reservoir_rng),
        })
    }

    /// Routes one tenant arrival at `now` and returns the chosen host.
    fn route_arrival(
        &mut self,
        now: SimTime,
        tenant: usize,
        needs_loads: bool,
        loads: &mut Vec<HostLoad>,
    ) -> usize {
        let t = &self.tenants[tenant];
        if needs_loads {
            loads.clear();
            loads.extend(self.hosts.iter().map(|h| h.load_snapshot(t.vm, t.dep)));
        }
        let h = self.router.route(tenant, loads);
        assert!(
            h < self.hosts.len(),
            "router returned host {h} of {}",
            self.hosts.len()
        );
        self.routed[h][tenant] += 1;
        let (vm, dep) = (t.vm, t.dep);
        let mut sink = HostSink {
            q: &mut self.events,
            host: h,
        };
        self.hosts[h].handle(now, Event::Arrival { vm, dep }, &mut sink);
        h
    }

    /// Runs the cluster to completion.
    pub fn run(mut self) -> ClusterResult {
        // One reusable snapshot buffer instead of a fresh Vec per
        // arrival; load-blind routers (see [`Router::needs_loads`])
        // skip the O(hosts) snapshot entirely and only see the slice's
        // length, which the placeholder entries preserve.
        let needs_loads = self.router.needs_loads();
        let mut loads: Vec<HostLoad> = vec![
            HostLoad {
                warm_idle: 0,
                alive: 0,
                queued: 0,
                active: 0,
                free_bytes: 0,
            };
            self.hosts.len()
        ];
        // Two-stream merge with batched pops: a fed arrival is routed
        // inline whenever its time is <= the queue's next tick (it
        // would have held the lower sequence number in the pre-push
        // era), otherwise one tick's batch pops — in the exact (time,
        // seq) order sequential pops would yield.
        let mut batch = Vec::new();
        loop {
            let arrival_next = match (self.feed.peek(), self.events.peek_time()) {
                (Some((at, _)), Some(qt)) => at <= qt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_next {
                let (at, tenant) = self.feed.pop().expect("peeked");
                let touched = self.route_arrival(at, tenant, needs_loads, &mut loads);
                self.drain_tap(touched);
            } else if let Some(now) = self.events.pop_batch(&mut batch) {
                for ev in batch.drain(..) {
                    let ClusterEvent::Host { host, ev } = ev;
                    let mut sink = HostSink {
                        q: &mut self.events,
                        host,
                    };
                    self.hosts[host].handle(now, ev, &mut sink);
                    self.drain_tap(host);
                }
            }
        }
        let injected = self.feed.injected();
        let events_processed = self.events.processed() + injected;
        let peak_queue_depth = self.events.peak_len();
        let hosts: Vec<SimResult> = self.hosts.into_iter().map(HostSim::finish).collect();
        let completed = hosts.iter().map(|h| h.completed).sum();
        ClusterResult {
            hosts,
            routed: self.routed,
            completed,
            latency_over_time: self.latency_over_time,
            events_processed,
            peak_queue_depth,
            injected,
        }
    }

    /// Moves the touched host's freshly recorded completions into the
    /// cluster reservoir.
    fn drain_tap(&mut self, host: usize) {
        for &(_, arrival_s, latency_ms) in self.hosts[host].recent_latencies() {
            self.latency_over_time.offer(arrival_s, latency_ms);
        }
        self.hosts[host].clear_recent_latencies();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendKind, Deployment, HarvestConfig, VmSpec};

    fn host_cfg(backend: BackendKind, tenants: usize, seed: u64) -> SimConfig {
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: (0..tenants)
                    .map(|_| Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: Vec::new(),
                    })
                    .collect(),
                vcpus: Some(2.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 20.0,
            duration_s: 60.0,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial: 0,
        }
    }

    fn two_host_cluster(router: Box<dyn Router>) -> ClusterResult {
        let config = ClusterConfig {
            hosts: vec![
                host_cfg(BackendKind::Squeezy, 2, 1),
                host_cfg(BackendKind::Squeezy, 2, 2),
            ],
            tenants: vec![
                TenantTrace {
                    vm: 0,
                    dep: 0,
                    arrivals: vec![1.0, 1.1, 1.2, 1.3, 20.0, 20.1],
                },
                TenantTrace {
                    vm: 0,
                    dep: 1,
                    arrivals: vec![2.0, 2.1, 30.0],
                },
            ],
        };
        ClusterSim::new(config, router).expect("boot").run()
    }

    #[test]
    fn round_robin_spreads_over_hosts() {
        let result = two_host_cluster(Box::new(RoundRobin::default()));
        assert_eq!(result.completed, 9, "every request served");
        let per_host = result.routed_per_host();
        assert_eq!(per_host, vec![5, 4], "alternating assignment");
    }

    #[test]
    fn single_host_router_leaves_other_hosts_idle() {
        let result = two_host_cluster(Box::new(SingleHost));
        assert_eq!(result.completed, 9);
        assert_eq!(result.routed_per_host()[1], 0);
        assert_eq!(result.hosts[1].completed, 0);
    }

    #[test]
    fn warm_affinity_reuses_warm_instances_more() {
        let warm = two_host_cluster(Box::new(WarmAffinity));
        let rr = two_host_cluster(Box::new(RoundRobin::default()));
        assert_eq!(warm.completed, rr.completed);
        let (_, warm_hits) = warm.cold_warm_starts();
        let (_, rr_hits) = rr.cold_warm_starts();
        assert!(
            warm_hits >= rr_hits,
            "affinity warm hits {warm_hits} ≥ round-robin {rr_hits}"
        );
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let a = two_host_cluster(Box::new(LeastLoaded));
        let b = two_host_cluster(Box::new(LeastLoaded));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.routed, b.routed);
        let da: Vec<u64> = a.hosts.iter().map(SimResult::digest).collect();
        let db: Vec<u64> = b.hosts.iter().map(SimResult::digest).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn merged_latency_covers_all_requests() {
        let result = two_host_cluster(Box::new(RoundRobin::default()));
        let merged = result.merged_latency();
        let total: usize = merged.values().map(Histogram::count).sum();
        assert_eq!(total as u64, result.completed);
    }

    #[test]
    fn latency_reservoir_sees_every_completion() {
        let result = two_host_cluster(Box::new(RoundRobin::default()));
        assert_eq!(result.latency_over_time.seen(), result.completed);
        assert_eq!(result.latency_over_time.len() as u64, result.completed);
        assert!(result
            .latency_over_time
            .points()
            .iter()
            .all(|&(t, l)| t >= 0.0 && l > 0.0));
    }
}
