//! Generic multi-trial, multi-point experiment engine.
//!
//! Every figure of the paper is a grid: sweep points (sizes,
//! utilizations, backends, functions) × repeated trials. This module
//! factors that shape out of the bench harness:
//!
//! * [`Experiment`] — a sweep: `points()` enumerates the grid,
//!   `run_trial()` computes one `(point, trial)` cell from its own
//!   deterministic [`DetRng`] stream.
//! * [`run_experiment`] — the runner. Serial or parallel
//!   (`std::thread::scope`, a shared cursor over a fixed unit list — no
//!   work stealing), it always produces *bit-identical* results: each
//!   cell's RNG stream is derived purely from `(seed, point, trial)`
//!   and outputs are reduced in index order, so thread count and
//!   scheduling cannot leak into results.
//! * [`Summary`] — mean/stddev/min/max/percentile aggregation over
//!   per-trial samples.
//!
//! ```
//! use sim_core::experiment::{run_experiment, Experiment, TrialCtx};
//!
//! struct Square;
//! impl Experiment for Square {
//!     type Point = u64;
//!     type Output = u64;
//!     fn points(&self) -> Vec<u64> {
//!         vec![1, 2, 3]
//!     }
//!     fn run_trial(&self, p: &u64, _ctx: &mut TrialCtx) -> u64 {
//!         p * p
//!     }
//! }
//! let out = run_experiment(&Square, 4);
//! assert_eq!(out, vec![vec![1], vec![4], vec![9]]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::DetRng;

/// Runner options threaded from the CLI (`repro --jobs N --trials N`)
/// into every experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExpOpts {
    /// Worker threads sharding the `points × trials` grid. Results are
    /// bit-identical for every value; `0` means "all available cores".
    pub jobs: usize,
    /// Repeated trials per sweep point. Trial `t` of point `p` always
    /// sees the stream `root.derive(p).derive(t)`, so adding trials
    /// never perturbs earlier ones. Experiments whose output is a
    /// single deterministic artifact (timelines, tables) may clamp
    /// this to 1.
    pub trials: u32,
}

impl ExpOpts {
    /// One worker, one trial: the reference serial configuration.
    pub fn serial() -> Self {
        ExpOpts { jobs: 1, trials: 1 }
    }

    /// All available cores, one trial.
    pub fn auto() -> Self {
        ExpOpts { jobs: 0, trials: 1 }
    }

    /// Replaces the trial count.
    pub fn with_trials(self, trials: u32) -> Self {
        ExpOpts { trials, ..self }
    }

    /// Replaces the job count.
    pub fn with_jobs(self, jobs: usize) -> Self {
        ExpOpts { jobs, ..self }
    }

    /// The effective worker count: `jobs`, or the machine's available
    /// parallelism when `jobs == 0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

impl Default for ExpOpts {
    /// Defaults to the serial configuration: the legacy `run()` entry
    /// points keep their single-threaded timing semantics (benches stay
    /// comparable across machines); parallelism is an explicit opt-in
    /// via [`ExpOpts::auto`] or [`ExpOpts::with_jobs`] (the `repro` CLI
    /// opts in).
    fn default() -> Self {
        ExpOpts::serial()
    }
}

/// Per-cell context handed to [`Experiment::run_trial`].
pub struct TrialCtx {
    /// Index of the sweep point in [`Experiment::points`] order.
    pub point: usize,
    /// Trial number within the point (`0..trials`).
    pub trial: u64,
    /// This cell's private deterministic stream:
    /// `DetRng::new(seed).derive(point).derive(trial)`. Never shared
    /// between cells, so parallel execution cannot perturb draws.
    pub rng: DetRng,
}

/// A sweep of independent `(point, trial)` cells.
///
/// Implementations must be [`Sync`]: the runner shares `&self` across
/// worker threads. All mutable state belongs in `run_trial` locals.
pub trait Experiment: Sync {
    /// One sweep coordinate (a size, a backend, a function, ...).
    type Point: Send + Sync;
    /// The structured result of one trial at one point.
    type Output: Send;

    /// Enumerates the sweep grid. Called once per run; the order
    /// defines point indices and the order of the result vector.
    fn points(&self) -> Vec<Self::Point>;

    /// Number of repeated trials per point (defaults to one).
    fn trials(&self) -> u32 {
        1
    }

    /// Root seed of the experiment's RNG tree.
    fn seed(&self) -> u64 {
        0
    }

    /// Computes one cell. Must depend only on `point` and `ctx` (plus
    /// `&self` config) — never on other cells' results or shared
    /// mutable state — so that sharding is sound.
    fn run_trial(&self, point: &Self::Point, ctx: &mut TrialCtx) -> Self::Output;
}

/// Runs the full grid on up to `jobs` workers and returns, per point
/// (in [`Experiment::points`] order), the per-trial outputs (in trial
/// order). Bit-identical for every `jobs` value.
pub fn run_experiment<E: Experiment>(exp: &E, jobs: usize) -> Vec<Vec<E::Output>> {
    let points = exp.points();
    let trials = exp.trials().max(1) as usize;
    let units = points.len() * trials;
    let root = DetRng::new(exp.seed());
    let cell = |i: usize| -> (usize, E::Output) {
        let (p, t) = (i / trials, i % trials);
        let mut ctx = TrialCtx {
            point: p,
            trial: t as u64,
            rng: root.derive(p as u64).derive(t as u64),
        };
        (p, exp.run_trial(&points[p], &mut ctx))
    };

    let mut flat: Vec<Option<E::Output>> = Vec::with_capacity(units);
    if jobs <= 1 || units <= 1 {
        // Serial reference path: plain loop in index order.
        for i in 0..units {
            flat.push(Some(cell(i).1));
        }
    } else {
        // Parallel path: a fixed unit list and a shared cursor. Each
        // worker claims the next unassigned cell and writes it into
        // its slot; no work stealing, no shared RNG, and the ordered
        // reduction below is independent of completion order.
        let slots: Vec<Mutex<Option<E::Output>>> = (0..units).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(units) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= units {
                        break;
                    }
                    let out = cell(i).1;
                    *slots[i].lock().expect("no panics while holding the slot") = Some(out);
                });
            }
        });
        for slot in slots {
            flat.push(slot.into_inner().expect("worker scope joined"));
        }
    }

    // Ordered reduction: regroup the flat unit list per point.
    let mut grouped: Vec<Vec<E::Output>> = Vec::with_capacity(points.len());
    for chunk in &mut flat.chunks_mut(trials.max(1)) {
        grouped.push(
            chunk
                .iter_mut()
                .map(|o| o.take().expect("every unit ran"))
                .collect(),
        );
    }
    grouped
}

/// Runs the grid and reduces each point's trials with `f`.
pub fn run_reduced<E: Experiment, R, F>(exp: &E, jobs: usize, f: F) -> Vec<R>
where
    F: Fn(Vec<E::Output>) -> R,
{
    run_experiment(exp, jobs).into_iter().map(f).collect()
}

/// Mean/stddev/percentile summary of per-trial samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty or singleton).
    pub stddev: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median by nearest rank (0 when empty).
    pub p50: f64,
    /// 99th percentile by nearest rank (0 when empty).
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample set.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let rank = |q: f64| {
            sorted[((n as f64 * q).ceil() as usize)
                .saturating_sub(1)
                .min(n - 1)]
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: rank(0.5),
            p99: rank(0.99),
        }
    }

    /// Summarizes one metric extracted from per-trial outputs.
    pub fn over<O, F: Fn(&O) -> f64>(outputs: &[O], metric: F) -> Summary {
        let samples: Vec<f64> = outputs.iter().map(metric).collect();
        Summary::of(&samples)
    }
}

/// Mean of one metric over per-trial outputs (0 when empty).
pub fn mean_over<O, F: Fn(&O) -> f64>(outputs: &[O], metric: F) -> f64 {
    Summary::over(outputs, metric).mean
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy stochastic experiment: every cell draws from its private
    /// stream, so any cross-cell interference or RNG sharing would
    /// change results between serial and parallel runs.
    struct Toy {
        trials: u32,
    }

    impl Experiment for Toy {
        type Point = u64;
        type Output = Vec<u64>;

        fn points(&self) -> Vec<u64> {
            (0..7).collect()
        }

        fn trials(&self) -> u32 {
            self.trials
        }

        fn seed(&self) -> u64 {
            0xE47
        }

        fn run_trial(&self, point: &u64, ctx: &mut TrialCtx) -> Vec<u64> {
            (0..64).map(|_| ctx.rng.range(0, 1 << 32) ^ point).collect()
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let exp = Toy { trials: 5 };
        let serial = run_experiment(&exp, 1);
        for jobs in [2, 3, 8, 64] {
            let parallel = run_experiment(&exp, jobs);
            assert_eq!(serial, parallel, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn grid_shape_and_ordering() {
        let exp = Toy { trials: 3 };
        let out = run_experiment(&exp, 4);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|trials| trials.len() == 3));
        // Distinct cells get distinct streams.
        assert_ne!(out[0][0], out[0][1]);
        assert_ne!(out[0][0], out[1][0]);
    }

    #[test]
    fn adding_trials_preserves_earlier_ones() {
        let three = run_experiment(&Toy { trials: 3 }, 2);
        let five = run_experiment(&Toy { trials: 5 }, 2);
        for (p3, p5) in three.iter().zip(five.iter()) {
            assert_eq!(p3.as_slice(), &p5[..3]);
        }
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn opts_builders() {
        let o = ExpOpts::serial().with_trials(4).with_jobs(2);
        assert_eq!(o.trials, 4);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.effective_jobs(), 2);
        assert!(ExpOpts::auto().effective_jobs() >= 1);
    }
}
