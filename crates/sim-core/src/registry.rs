//! The one string-registry lookup every keyed enum shares.
//!
//! Scenario specs resolve five registries (workloads, backends,
//! routers, policies, function kinds) by string key; each enum keeps
//! its own `ALL` array and `key()` accessor, and delegates the lookup
//! — and the "unknown X (valid: ...)" error shape — here, so a typo'd
//! spec always answers with the full list of what it could have said.

/// Finds the entry of `all` whose `key_of` equals `key`; `Err` names
/// the registry (`what`), lists every valid key, and — when the miss
/// is close to a valid key — appends a did-you-mean hint.
pub fn lookup<T: Copy>(
    what: &str,
    all: &[T],
    key_of: impl Fn(T) -> &'static str,
    key: &str,
) -> Result<T, String> {
    all.iter()
        .copied()
        .find(|&t| key_of(t) == key)
        .ok_or_else(|| {
            let valid: Vec<&str> = all.iter().map(|&t| key_of(t)).collect();
            let mut msg = format!("unknown {what} {key:?} (valid: {})", valid.join(", "));
            if let Some(near) = nearest(key, &valid) {
                msg.push_str(&format!("; did you mean {near:?}?"));
            }
            msg
        })
}

/// Levenshtein edit distance between two keys.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate nearest to `key` by edit distance, if any is close
/// enough to plausibly be a typo (distance ≤ max(2, len/3)). Ties go
/// to the earliest candidate so the hint is deterministic.
pub fn nearest<'a>(key: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let budget = 2.max(key.chars().count() / 3);
    candidates
        .iter()
        .map(|&c| (edit_distance(key, c), c))
        .min_by_key(|&(d, _)| d)
        .filter(|&(d, _)| d <= budget)
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Color {
        Red,
        Blue,
    }

    impl Color {
        fn key(self) -> &'static str {
            match self {
                Color::Red => "red",
                Color::Blue => "blue",
            }
        }
    }

    #[test]
    fn finds_by_key_and_lists_valid_on_miss() {
        let all = [Color::Red, Color::Blue];
        assert_eq!(lookup("color", &all, Color::key, "blue"), Ok(Color::Blue));
        let err = lookup("color", &all, Color::key, "green").unwrap_err();
        assert_eq!(err, "unknown color \"green\" (valid: red, blue)");
    }

    #[test]
    fn near_misses_get_a_did_you_mean_hint() {
        let all = [Color::Red, Color::Blue];
        let err = lookup("color", &all, Color::key, "blu").unwrap_err();
        assert_eq!(
            err,
            "unknown color \"blu\" (valid: red, blue); did you mean \"blue\"?"
        );
        // "green" is 3 edits from "red" — too far for a hint (budget 2).
        assert!(!lookup("color", &all, Color::key, "green")
            .unwrap_err()
            .contains("did you mean"));
    }

    #[test]
    fn edit_distance_matches_hand_computation() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("green", "red"), 3);
        assert_eq!(edit_distance("p2c", "power-of-two"), 11);
    }

    #[test]
    fn nearest_is_deterministic_and_budgeted() {
        assert_eq!(nearest("blu", &["red", "blue"]), Some("blue"));
        assert_eq!(nearest("zzzzz", &["red", "blue"]), None);
        // Ties resolve to the earliest candidate.
        assert_eq!(nearest("ac", &["ab", "ac2", "cc"]), Some("ab"));
        // Longer keys earn a proportionally larger budget.
        assert_eq!(
            nearest("expect.p99_max", &["expect.p99_ms_max"]),
            Some("expect.p99_ms_max")
        );
    }
}
