//! The one string-registry lookup every keyed enum shares.
//!
//! Scenario specs resolve five registries (workloads, backends,
//! routers, policies, function kinds) by string key; each enum keeps
//! its own `ALL` array and `key()` accessor, and delegates the lookup
//! — and the "unknown X (valid: ...)" error shape — here, so a typo'd
//! spec always answers with the full list of what it could have said.

/// Finds the entry of `all` whose `key_of` equals `key`; `Err` names
/// the registry (`what`) and lists every valid key.
pub fn lookup<T: Copy>(
    what: &str,
    all: &[T],
    key_of: impl Fn(T) -> &'static str,
    key: &str,
) -> Result<T, String> {
    all.iter()
        .copied()
        .find(|&t| key_of(t) == key)
        .ok_or_else(|| {
            let valid: Vec<&str> = all.iter().map(|&t| key_of(t)).collect();
            format!("unknown {what} {key:?} (valid: {})", valid.join(", "))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Color {
        Red,
        Blue,
    }

    impl Color {
        fn key(self) -> &'static str {
            match self {
                Color::Red => "red",
                Color::Blue => "blue",
            }
        }
    }

    #[test]
    fn finds_by_key_and_lists_valid_on_miss() {
        let all = [Color::Red, Color::Blue];
        assert_eq!(lookup("color", &all, Color::key, "blue"), Ok(Color::Blue));
        let err = lookup("color", &all, Color::key, "green").unwrap_err();
        assert_eq!(err, "unknown color \"green\" (valid: red, blue)");
    }
}
