//! Deterministic statistics for significance-aware experiment
//! comparison.
//!
//! `repro run --compare` judges a metric difference between two
//! scenario runs on per-trial samples, so it needs real inference, not
//! just means: Welch's unequal-variance t-test ([`welch`]), confidence
//! intervals from the Student t distribution ([`welch_ci`],
//! [`mean_ci`]) and a seeded percentile bootstrap
//! ([`bootstrap_diff_ci`]) for when distributional assumptions feel
//! too brave. Everything here is closed-form or fixed-iteration
//! numerics over `f64` — no RNG except the bootstrap's explicit
//! [`DetRng`], so compare tables are byte-identical across runs and
//! job counts.
//!
//! The t CDF is computed through the regularized incomplete beta
//! function (continued fraction per Numerical Recipes §6.4); the
//! inverse CDF by bisection on that CDF. Both are pinned against
//! closed-form special cases (`df = 1` is Cauchy, `df = 2` has an
//! elementary CDF) and classic critical values.

use crate::rng::DetRng;

/// Arithmetic mean (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator; 0 when `n < 2`).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Natural log of the gamma function (Lanczos approximation, accurate
/// to ~1e-10 for positive arguments — plenty for p-values).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    let mut y = x;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Continued-fraction evaluation of the incomplete beta function
/// (modified Lentz; Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_IT: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_IT {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Panics
///
/// Panics if `a` or `b` is not strictly positive.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_bt = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let bt = ln_bt.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * beta_cf(a, b, x) / a
    } else {
        1.0 - bt * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Two-sided tail probability `P(|T| > |t|)` of the Student t
/// distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df` is not strictly positive.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_infinite() {
        return 0.0;
    }
    reg_inc_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// CDF of the Student t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    let p = t_two_sided_p(t, df);
    if t >= 0.0 {
        1.0 - p / 2.0
    } else {
        p / 2.0
    }
}

/// The two-sided critical value `c` with `P(|T| ≤ c) = conf` —
/// `t_{α/2, df}` for `conf = 1 - α`. Bisection on [`t_two_sided_p`];
/// deterministic and accurate to ~1e-10.
///
/// # Panics
///
/// Panics if `conf` is outside `(0, 1)` or `df` is not positive.
pub fn t_critical(conf: f64, df: f64) -> f64 {
    assert!((0.0..1.0).contains(&conf) && conf > 0.0, "conf in (0, 1)");
    assert!(df > 0.0, "degrees of freedom must be positive");
    let alpha = 1.0 - conf;
    let mut hi = 1.0;
    while t_two_sided_p(hi, df) > alpha {
        hi *= 2.0;
        if hi > 1e12 {
            return hi;
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_two_sided_p(mid, df) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Welch's unequal-variance t-test between two samples.
#[derive(Clone, Copy, Debug)]
pub struct Welch {
    /// `mean(b) - mean(a)` — positive means B is larger.
    pub diff: f64,
    /// Standard error of the difference.
    pub se: f64,
    /// The t statistic (`diff / se`; signed infinity when both
    /// variances are zero but the means differ).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Runs Welch's t-test on two samples; `None` when either side has
/// fewer than two observations (no variance estimate exists).
///
/// Degenerate zero-variance samples are handled deterministically:
/// equal means give `t = 0, p = 1`, unequal means give an infinite t
/// and `p = 0`.
pub fn welch(a: &[f64], b: &[f64]) -> Option<Welch> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let diff = mean(b) - mean(a);
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        let (t, p) = if diff == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY * diff.signum(), 0.0)
        };
        return Some(Welch {
            diff,
            se: 0.0,
            t,
            df: na + nb - 2.0,
            p,
        });
    }
    let se = se2.sqrt();
    let t = diff / se;
    let df = se2 * se2
        / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0))
            .max(f64::MIN_POSITIVE);
    let p = t_two_sided_p(t, df);
    Some(Welch { diff, se, t, df, p })
}

/// The Welch confidence interval of the mean difference at confidence
/// `conf`: `diff ± t_{α/2, df} · se`. Degenerate (zero-width) when the
/// samples carry no variance.
pub fn welch_ci(w: &Welch, conf: f64) -> (f64, f64) {
    if w.se == 0.0 {
        return (w.diff, w.diff);
    }
    let half = t_critical(conf, w.df) * w.se;
    (w.diff - half, w.diff + half)
}

/// t-distribution confidence interval of a single sample mean; `None`
/// when `n < 2`.
pub fn mean_ci(xs: &[f64], conf: f64) -> Option<(f64, f64)> {
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let m = mean(xs);
    let se = (sample_variance(xs) / n).sqrt();
    if se == 0.0 {
        return Some((m, m));
    }
    let half = t_critical(conf, n - 1.0) * se;
    Some((m - half, m + half))
}

/// Percentile-bootstrap confidence interval of `mean(b) - mean(a)`
/// from `iters` seeded resamples; `None` when either sample is empty.
///
/// Resampling is fully deterministic in `rng` (one
/// [`DetRng::range`] draw per resampled element, B after A within each
/// iteration), so a compare table quoting bootstrap intervals is
/// byte-identical across runs.
pub fn bootstrap_diff_ci(
    a: &[f64],
    b: &[f64],
    iters: usize,
    conf: f64,
    rng: &mut DetRng,
) -> Option<(f64, f64)> {
    if a.is_empty() || b.is_empty() || iters == 0 {
        return None;
    }
    let resample_mean = |xs: &[f64], rng: &mut DetRng| -> f64 {
        let mut acc = 0.0;
        for _ in 0..xs.len() {
            acc += xs[rng.range(0, xs.len() as u64) as usize];
        }
        acc / xs.len() as f64
    };
    let mut diffs: Vec<f64> = (0..iters)
        .map(|_| {
            let ma = resample_mean(a, rng);
            let mb = resample_mean(b, rng);
            mb - ma
        })
        .collect();
    diffs.sort_by(|x, y| x.partial_cmp(y).expect("bootstrap means are finite"));
    let alpha = 1.0 - conf;
    let rank = |q: f64| {
        diffs[((iters as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(iters - 1)]
    };
    Some((rank(alpha / 2.0), rank(1.0 - alpha / 2.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn mean_and_variance_match_hand_computation() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.0]), 3.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(sample_variance(&[5.0]), 0.0);
        // var([1,2,3,4]) with n-1 = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!(close(
            sample_variance(&[1.0, 2.0, 3.0, 4.0]),
            5.0 / 3.0,
            1e-12
        ));
    }

    #[test]
    fn t_cdf_matches_closed_forms() {
        // df = 1 is Cauchy: CDF(t) = 1/2 + atan(t)/π, so CDF(1) = 3/4.
        assert!(close(t_cdf(1.0, 1.0), 0.75, 1e-10));
        assert!(close(t_cdf(-1.0, 1.0), 0.25, 1e-10));
        // df = 2: CDF(t) = 1/2 + t / (2·√(2 + t²)); at t = √2 this is
        // 1/2 + √2/4.
        let t = 2.0f64.sqrt();
        assert!(close(t_cdf(t, 2.0), 0.5 + t / 4.0, 1e-10));
        // Large df converges to the normal: Φ(1.96) ≈ 0.9750.
        assert!(close(t_cdf(1.959_964, 1e6), 0.975, 1e-4));
        assert_eq!(t_two_sided_p(f64::INFINITY, 3.0), 0.0);
        assert!(close(t_two_sided_p(0.0, 7.0), 1.0, 1e-12));
    }

    #[test]
    fn t_critical_matches_the_tables() {
        // Classic two-sided 95% critical values: 12.706 (df 1),
        // 4.303 (df 2), 2.776 (df 4), 2.228 (df 10), 1.960 (df → ∞).
        assert!(close(t_critical(0.95, 1.0), 12.7062, 1e-3));
        assert!(close(t_critical(0.95, 2.0), 4.3027, 1e-3));
        assert!(close(t_critical(0.95, 4.0), 2.7764, 1e-3));
        assert!(close(t_critical(0.95, 10.0), 2.2281, 1e-3));
        assert!(close(t_critical(0.95, 1e6), 1.9600, 1e-3));
        // Inverse property: P(|T| > t_crit) = α.
        let c = t_critical(0.9, 5.0);
        assert!(close(t_two_sided_p(c, 5.0), 0.1, 1e-9));
    }

    #[test]
    fn welch_matches_hand_computation() {
        // a = [1,2,3]: mean 2, var 1. b = [2,4,6]: mean 4, var 4.
        // se² = 1/3 + 4/3 = 5/3, t = 2/√(5/3) = √(12/5),
        // df = (5/3)² / ((1/3)²/2 + (4/3)²/2) = 50/17.
        let w = welch(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).expect("n ≥ 2");
        assert!(close(w.diff, 2.0, 1e-12));
        assert!(close(w.t, (12.0f64 / 5.0).sqrt(), 1e-12));
        assert!(close(w.df, 50.0 / 17.0, 1e-12));
        // p ≈ 0.22 for t ≈ 1.549 at df ≈ 2.94 (between the df=2 and
        // df=3 closed forms).
        assert!(w.p > 0.20 && w.p < 0.25, "p = {}", w.p);
        // Symmetric in direction.
        let r = welch(&[2.0, 4.0, 6.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!(close(r.t, -w.t, 1e-12));
        assert!(close(r.p, w.p, 1e-12));
    }

    #[test]
    fn welch_handles_degenerate_samples() {
        assert!(welch(&[1.0], &[1.0, 2.0]).is_none());
        let same = welch(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        assert_eq!(same.t, 0.0);
        assert_eq!(same.p, 1.0);
        let apart = welch(&[2.0, 2.0], &[3.0, 3.0]).unwrap();
        assert!(apart.t.is_infinite() && apart.t > 0.0);
        assert_eq!(apart.p, 0.0);
        assert_eq!(welch_ci(&apart, 0.95), (1.0, 1.0));
    }

    #[test]
    fn welch_ci_and_mean_ci_match_hand_computation() {
        // mean_ci([1,2,3], 95%): 2 ± 4.3027·(1/√3) = 2 ± 2.4841.
        let (lo, hi) = mean_ci(&[1.0, 2.0, 3.0], 0.95).unwrap();
        assert!(close(lo, 2.0 - 2.4841, 1e-3), "lo = {lo}");
        assert!(close(hi, 2.0 + 2.4841, 1e-3), "hi = {hi}");
        assert!(mean_ci(&[1.0], 0.95).is_none());
        // Welch CI covers the true difference for its own samples.
        let w = welch(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        let (lo, hi) = welch_ci(&w, 0.95);
        assert!(lo < 2.0 && 2.0 < hi);
        // Tighter confidence gives a narrower interval.
        let (l2, h2) = welch_ci(&w, 0.5);
        assert!(h2 - l2 < hi - lo);
    }

    #[test]
    fn bootstrap_is_seeded_and_sane() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [11.0, 12.0, 13.0, 14.0, 15.0];
        let ci1 = bootstrap_diff_ci(&a, &b, 500, 0.95, &mut DetRng::new(7)).unwrap();
        let ci2 = bootstrap_diff_ci(&a, &b, 500, 0.95, &mut DetRng::new(7)).unwrap();
        assert_eq!(ci1, ci2, "same seed, same interval");
        let ci3 = bootstrap_diff_ci(&a, &b, 500, 0.95, &mut DetRng::new(8)).unwrap();
        assert_ne!(ci1, ci3, "different seed resamples differently");
        // The interval brackets the true difference of 10 and stays
        // within the extreme resample range.
        assert!(ci1.0 < 10.0 && 10.0 < ci1.1, "{ci1:?}");
        assert!(ci1.0 > 6.0 && ci1.1 < 14.0, "{ci1:?}");
        assert!(bootstrap_diff_ci(&[], &b, 100, 0.95, &mut DetRng::new(1)).is_none());
    }
}
