//! A deterministic event queue.
//!
//! [`EventQueue<E>`] is a time-ordered priority queue with a monotonic
//! sequence number breaking ties, so that two events scheduled for the
//! same instant pop in the order they were pushed. This FIFO tie-break is
//! what makes whole-system runs reproducible.
//!
//! The implementation is a hierarchical timer wheel (a calendar queue):
//! eleven levels of 64 slots each cover the full `u64` nanosecond
//! timeline, so push and pop are O(1) amortized regardless of how many
//! events are pending — a simulation that pre-schedules millions of
//! arrivals pays nothing per operation for the backlog, where a binary
//! heap pays O(log n) sift on every touch. Far-future timers rest in the
//! upper levels and cascade down lazily as the clock reaches them; each
//! event cascades at most ten times over its whole lifetime.
//!
//! Determinism is structural, not incidental: events land in slot
//! vectors in push order, cascades only ever refile into *empty* lower
//! levels (the wheel position below a cascading slot has been fully
//! drained), so every slot vector stays sequence-ordered and the wheel
//! pops in exactly the (time, seq) order of the reference
//! [`BinaryHeapQueue`] — a property the differential and property tests
//! pin.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem;

use crate::time::SimTime;

/// log2 of the wheel fan-out: 64 slots per level.
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `LEVELS * SLOT_BITS >= 64` covers every `u64`
/// deadline with no separate overflow structure.
const LEVELS: usize = 11;

/// A time-ordered, deterministic event queue (hierarchical timer wheel).
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::millis(2), "late");
/// q.push(SimTime::ZERO + SimDuration::millis(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` slot vectors, indexed `level * SLOTS + slot`.
    /// Each entry is `(at, seq, event)`; every vector is in push
    /// (= sequence) order. Cleared vectors keep their capacity, so the
    /// steady state allocates nothing.
    slots: Vec<Vec<(u64, u64, E)>>,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ slot `s` non-empty.
    occupancy: [u64; LEVELS],
    /// The wheel's internal clock. Every pending event satisfies
    /// `at >= elapsed`, and at level `l` its slot index is `>=` the
    /// wheel's current position — slot indexes never wrap within a
    /// level, which is what lets `trailing_zeros` find the next slot.
    elapsed: u64,
    /// The level-0 slot currently being drained, in *reverse* sequence
    /// order so the front pops from the back in O(1). All entries share
    /// one instant (`drain_at`).
    drain: Vec<(u64, u64, E)>,
    drain_at: u64,
    /// Scratch buffer for cascading a slot (reused, keeps capacity).
    cascade: Vec<(u64, u64, E)>,
    next_seq: u64,
    now: SimTime,
    len: usize,
    processed: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            elapsed: 0,
            drain: Vec::new(),
            drain_at: 0,
            cascade: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
            processed: 0,
            peak_len: 0,
        }
    }

    /// Returns the current simulation time (the timestamp of the last
    /// popped event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.file(at.0, seq, event);
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
    }

    /// Files one event into the wheel relative to `elapsed`. The level
    /// is the highest 6-bit digit where `at` differs from the wheel
    /// clock (level 0 when equal); within it, the slot is `at`'s digit.
    /// Requires `at >= self.elapsed`, which `push` guarantees because
    /// `elapsed` never passes `now` between calls.
    fn file(&mut self, at: u64, seq: u64, event: E) {
        debug_assert!(at >= self.elapsed);
        let x = at ^ self.elapsed;
        let level = if x == 0 {
            0
        } else {
            (63 - x.leading_zeros() as usize) / SLOT_BITS
        };
        let slot = ((at >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push((at, seq, event));
        self.occupancy[level] |= 1u64 << slot;
    }

    /// Brings the earliest pending instant into the drain buffer:
    /// cascades upper-level slots downward until level 0 is occupied,
    /// then swaps the earliest level-0 slot out (reversed, so pops come
    /// off the back). Requires `len > 0`; no-op if a drain is already
    /// in progress.
    fn advance(&mut self) {
        if !self.drain.is_empty() {
            return;
        }
        loop {
            let level = self
                .occupancy
                .iter()
                .position(|&b| b != 0)
                .expect("len > 0 implies an occupied level");
            let slot = self.occupancy[level].trailing_zeros() as usize;
            let idx = level * SLOTS + slot;
            if level == 0 {
                // A level-0 slot holds exactly one instant: every entry
                // agrees with `elapsed` above the low digit and has the
                // slot index as its low digit.
                self.elapsed = (self.elapsed >> SLOT_BITS << SLOT_BITS) | slot as u64;
                self.occupancy[0] &= !(1u64 << slot);
                mem::swap(&mut self.slots[idx], &mut self.drain);
                self.drain.reverse();
                self.drain_at = self.elapsed;
                debug_assert!(self.drain.iter().all(|e| e.0 == self.drain_at));
                return;
            }
            // Cascade: advance the wheel clock to the slot's base
            // (zeroing the digits below — everything below this slot
            // has already drained) and refile its events, which now
            // land strictly below `level`.
            let shift = SLOT_BITS * level;
            let above = if shift + SLOT_BITS >= 64 {
                0
            } else {
                !0u64 << (shift + SLOT_BITS)
            };
            self.elapsed = (self.elapsed & above) | ((slot as u64) << shift);
            self.occupancy[level] &= !(1u64 << slot);
            debug_assert!(self.cascade.is_empty());
            mem::swap(&mut self.slots[idx], &mut self.cascade);
            let mut buf = mem::take(&mut self.cascade);
            for (at, seq, event) in buf.drain(..) {
                self.file(at, seq, event);
            }
            self.cascade = buf;
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        let (at, _seq, event) = self.drain.pop().expect("advance fills the drain");
        self.len -= 1;
        self.processed += 1;
        debug_assert!(at >= self.now.0);
        self.now = SimTime(at);
        Some((self.now, event))
    }

    /// Pops *every* event pending at the earliest instant into `out`
    /// (appended in FIFO order) and advances the clock to it.
    ///
    /// Handling a batch in order is equivalent to popping sequentially:
    /// events a handler schedules at the same instant carry higher
    /// sequence numbers than everything already pending there, so a
    /// sequential loop would also drain the current batch first — the
    /// newly scheduled events simply form the next batch at the same
    /// timestamp.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        let at = SimTime(self.drain_at);
        let k = self.drain.len();
        out.extend(self.drain.drain(..).rev().map(|(_, _, e)| e));
        self.len -= k;
        self.processed += k as u64;
        debug_assert!(at >= self.now);
        self.now = at;
        Some(at)
    }

    /// Returns the timestamp of the next event without popping it.
    ///
    /// O(1) except when the next event sits in an upper wheel level,
    /// where the first occupied slot is scanned for its minimum.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(&(at, _, _)) = self.drain.last() {
            return Some(SimTime(at));
        }
        let level = self
            .occupancy
            .iter()
            .position(|&b| b != 0)
            .expect("len > 0 implies an occupied level");
        let slot = self.occupancy[level].trailing_zeros() as usize;
        let v = &self.slots[level * SLOTS + slot];
        if level == 0 {
            Some(SimTime(v[0].0))
        } else {
            Some(SimTime(v.iter().map(|e| e.0).min().expect("slot occupied")))
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events popped over the queue's lifetime (the events/sec
    /// numerator of `repro perf`).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest event pops
        // first, with the lowest sequence number breaking ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The straightforward binary-heap event queue: same (time, seq) FIFO
/// contract as [`EventQueue`], O(log n) per operation.
///
/// Kept as the *reference implementation* the timer wheel is tested
/// against (differential and property tests) and benchmarked against
/// (`crates/bench/benches/event_queue.rs`) — not used by the
/// simulators.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 'c');
        q.push(SimTime(10), 'a');
        q.push(SimTime(20), 'b');
        assert_eq!(q.pop(), Some((SimTime(10), 'a')));
        assert_eq!(q.pop(), Some((SimTime(20), 'b')));
        assert_eq!(q.pop(), Some((SimTime(30), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime(100), ());
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), ());
        q.pop();
        q.push(SimTime(50), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + SimDuration::secs(1), 1);
        q.push(SimTime::ZERO + SimDuration::millis(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
    }

    #[test]
    fn far_future_events_cascade_through_every_level() {
        // One event per wheel level, including the topmost digits of
        // the u64 timeline; they must come back in time order.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..LEVELS).map(|l| 1u64 << (SLOT_BITS * l)).collect();
        for &t in times.iter().rev() {
            q.push(SimTime(t), t);
        }
        q.push(SimTime(u64::MAX), u64::MAX);
        for &t in &times {
            assert_eq!(q.pop(), Some((SimTime(t), t)));
        }
        assert_eq!(q.pop(), Some((SimTime(u64::MAX), u64::MAX)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_a_drain_pop_after_it() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), 0);
        q.push(SimTime(7), 1);
        assert_eq!(q.pop(), Some((SimTime(7), 0)));
        // Mid-drain push at the live instant: pops after the pending
        // batch (it carries a higher sequence number).
        q.push(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 1)));
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_drains_exactly_one_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 'a');
        q.push(SimTime(5), 'b');
        q.push(SimTime(9), 'c');
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(5)));
        assert_eq!(out, vec!['a', 'b']);
        assert_eq!(q.now(), SimTime(5));
        // A same-instant push after the batch forms the *next* batch at
        // the same timestamp — exactly what sequential pops would do.
        q.push(SimTime(5), 'd');
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(5)));
        assert_eq!(out, vec!['d']);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(9)));
        assert_eq!(out, vec!['c']);
        assert_eq!(q.pop_batch(&mut out), None);
    }

    #[test]
    fn counters_track_processed_and_peak() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(i), i);
        }
        assert_eq!(q.peak_len(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.processed(), 10);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 0);
    }

    /// Differential check against the reference heap on a seeded random
    /// interleaving of pushes and pops with heavy time ties and
    /// far-future outliers (the proptest suite widens this further).
    #[test]
    fn wheel_matches_reference_heap_on_random_interleavings() {
        for seed in 0..8 {
            let mut rng = DetRng::new(0xE0E0 + seed);
            let mut wheel = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut tag = 0u32;
            for _ in 0..2_000 {
                if rng.range(0, 3) > 0 || wheel.is_empty() {
                    let base = wheel.now().0;
                    let dt = match rng.range(0, 10) {
                        0 => 0,
                        1..=6 => rng.range(0, 1 << 12),
                        7 | 8 => rng.range(0, 1 << 30),
                        _ => rng.range(0, 1 << 45),
                    };
                    wheel.push(SimTime(base + dt), tag);
                    heap.push(SimTime(base + dt), tag);
                    tag += 1;
                } else {
                    assert_eq!(wheel.pop(), heap.pop());
                    assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
