//! A deterministic event queue.
//!
//! `EventQueue<E>` is a time-ordered priority queue with a monotonic
//! sequence number breaking ties, so that two events scheduled for the
//! same instant pop in the order they were pushed. This FIFO tie-break is
//! what makes whole-system runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest event pops
        // first, with the lowest sequence number breaking ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, deterministic event queue.
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::millis(2), "late");
/// q.push(SimTime::ZERO + SimDuration::millis(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            peak_len: 0,
        }
    }

    /// Returns the current simulation time (the timestamp of the last
    /// popped event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped over the queue's lifetime (the events/sec
    /// numerator of `repro perf`).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 'c');
        q.push(SimTime(10), 'a');
        q.push(SimTime(20), 'b');
        assert_eq!(q.pop(), Some((SimTime(10), 'a')));
        assert_eq!(q.pop(), Some((SimTime(20), 'b')));
        assert_eq!(q.pop(), Some((SimTime(30), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime(100), ());
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), ());
        q.pop();
        q.push(SimTime(50), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + SimDuration::secs(1), 1);
        q.push(SimTime::ZERO + SimDuration::millis(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
    }
}
