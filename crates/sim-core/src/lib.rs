//! Deterministic discrete-event simulation core for the Squeezy workspace.
//!
//! The paper evaluates Squeezy on a 40-core Xeon host running Linux 6.6 and
//! Cloud Hypervisor. This crate replaces the physical testbed with a
//! deterministic simulator:
//!
//! * [`time`] — virtual nanosecond clock ([`SimTime`], [`SimDuration`]).
//! * [`events`] — a deterministic hierarchical-timer-wheel event queue
//!   with FIFO tie-breaking (plus the reference binary-heap queue).
//! * [`collections`] — flat sorted-`Vec` maps ([`IdMap`]) for the
//!   per-event hot paths; `BTreeMap` iteration order without the
//!   per-node allocation.
//! * [`rng`] — seeded random streams plus the samplers the workloads need
//!   (exponential, Zipf, log-normal) so no extra crates are required.
//! * [`cost`] — the calibrated cost model: every nanosecond the simulator
//!   ever charges is a named constant here (see `EXPERIMENTS.md` for the
//!   calibration story).
//! * [`cpu`] — a generalized-processor-sharing CPU pool with per-task rate
//!   caps; reproduces the vCPU interference effects of Figures 7 and 9.
//! * [`metrics`] — histograms/quantiles, time series and busy-interval
//!   recorders used by the benchmark harness.
//! * [`experiment`] — the multi-trial, multi-point experiment engine the
//!   bench harness runs on: sweep grids, per-trial RNG stream derivation
//!   and a parallel runner whose results are bit-identical to the serial
//!   path.
//! * [`stats`] — deterministic inference for experiment comparison:
//!   Welch's t-test, Student-t confidence intervals, and a seeded
//!   percentile bootstrap over [`DetRng`].
//! * [`table`] — aligned plain-text tables for experiment reports.
//!
//! Each simulation is single-threaded and fully deterministic: the same
//! seed regenerates the same figures bit-for-bit, and the experiment
//! runner only parallelizes *across* independent simulations.

pub mod collections;
pub mod cost;
pub mod cpu;
pub mod events;
pub mod experiment;
pub mod metrics;
pub mod registry;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use collections::IdMap;
pub use cost::{CostModel, LatencyBreakdown};
pub use cpu::{CpuPool, TaskId};
pub use events::{BinaryHeapQueue, EventQueue};
pub use experiment::{run_experiment, run_reduced, ExpOpts, Experiment, Summary, TrialCtx};
pub use metrics::{fnv1a, BusyRecorder, Fnv1a, Histogram, Reservoir, TimeSeries};
pub use rng::{nhpp_thinned_arrivals, poisson_arrivals_into, DetRng};
pub use stats::{bootstrap_diff_ci, mean_ci, t_critical, welch, welch_ci, Welch};
pub use table::TextTable;
pub use time::{SimDuration, SimTime};
