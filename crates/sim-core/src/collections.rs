//! Flat, allocation-friendly replacements for the std ordered maps on
//! the simulators' per-event hot paths.
//!
//! [`IdMap`] is a sorted `Vec<(K, V)>` that mirrors the slice of the
//! `BTreeMap` API the simulators use. The keys on every hot path are
//! small monotonic ids (task ids, instance ids, reclaim tokens), so:
//!
//! * inserts are almost always appends (the new key compares greater
//!   than the current maximum) — O(1), no rebalancing, no per-node
//!   allocation;
//! * the maps stay tiny (tasks and instances per VM number in the tens),
//!   so the occasional binary search beats pointer-chasing tree nodes;
//! * removals shift within one contiguous buffer whose capacity is
//!   retained, so a warmed-up map never allocates again.
//!
//! Iteration order is key order — exactly the `BTreeMap` order — which
//! keeps every ordering-sensitive simulator loop (and therefore every
//! golden digest) byte-identical after the swap.

/// An ordered map over a sorted `Vec`, for small monotonic-id keys.
#[derive(Clone, Debug)]
pub struct IdMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V> IdMap<K, V> {
    /// Creates an empty map (no allocation until first insert).
    pub fn new() -> Self {
        IdMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn position(&self, k: &K) -> Result<usize, usize> {
        // Fast paths first: hot-path keys are monotonic ids, so lookups
        // skew heavily toward the tail.
        match self.entries.last() {
            None => Err(0),
            Some((last, _)) if *k > *last => Err(self.entries.len()),
            Some((last, _)) if *k == *last => Ok(self.entries.len() - 1),
            _ => self.entries.binary_search_by(|(ek, _)| ek.cmp(k)),
        }
    }

    /// Returns a reference to the value for `k`, if present.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.position(k).ok().map(|i| &self.entries[i].1)
    }

    /// Returns a mutable reference to the value for `k`, if present.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        match self.position(k) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// `true` when `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.position(k).is_ok()
    }

    /// Inserts `v` under `k`, returning the previous value if any.
    ///
    /// Keys larger than the current maximum append in O(1) — the common
    /// case for monotonic ids.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.position(&k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, v)),
            Err(i) => {
                self.entries.insert(i, (k, v));
                None
            }
        }
    }

    /// Removes `k`, returning its value if it was present.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        match self.position(k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    // The iterators below return concrete `Map` types (not opaque
    // `impl Iterator`) so the borrow checker can see they carry no
    // destructor — callers may re-borrow the map as soon as the
    // iterator chain's value is extracted, exactly as with `BTreeMap`.

    /// Iterates entries in key order (the `BTreeMap` iteration order).
    #[allow(clippy::type_complexity)]
    pub fn iter(&self) -> std::iter::Map<std::slice::Iter<'_, (K, V)>, fn(&(K, V)) -> (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries in key order with mutable values.
    #[allow(clippy::type_complexity)]
    pub fn iter_mut(
        &mut self,
    ) -> std::iter::Map<std::slice::IterMut<'_, (K, V)>, fn(&mut (K, V)) -> (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in order.
    #[allow(clippy::type_complexity)]
    pub fn keys(&self) -> std::iter::Map<std::slice::Iter<'_, (K, V)>, fn(&(K, V)) -> &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in key order.
    #[allow(clippy::type_complexity)]
    pub fn values(&self) -> std::iter::Map<std::slice::Iter<'_, (K, V)>, fn(&(K, V)) -> &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates mutable values in key order.
    #[allow(clippy::type_complexity)]
    pub fn values_mut(
        &mut self,
    ) -> std::iter::Map<std::slice::IterMut<'_, (K, V)>, fn(&mut (K, V)) -> &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only the entries for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }
}

impl<K: Ord + Copy, V> Default for IdMap<K, V> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<K: Ord + Copy, V> std::ops::Index<&K> for IdMap<K, V> {
    type Output = V;

    fn index(&self, k: &K) -> &V {
        self.get(k).expect("no entry found for key")
    }
}

impl<'a, K: Ord + Copy, V> IntoIterator for &'a IdMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn behaves_like_btreemap_on_point_ops() {
        let mut idm: IdMap<u64, u32> = IdMap::new();
        let mut btm: BTreeMap<u64, u32> = BTreeMap::new();
        // A deterministic mix of appends, overwrites, mid-inserts and
        // removals, checked against the reference after every step.
        let ops: Vec<(u8, u64)> = (0..400u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                ((h % 4) as u8, h % 64)
            })
            .collect();
        for (i, &(op, k)) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    assert_eq!(idm.insert(k, i as u32), btm.insert(k, i as u32));
                }
                2 => assert_eq!(idm.remove(&k), btm.remove(&k)),
                _ => {
                    assert_eq!(idm.get(&k), btm.get(&k));
                    assert_eq!(idm.contains_key(&k), btm.contains_key(&k));
                }
            }
            assert_eq!(idm.len(), btm.len());
            assert!(idm.iter().eq(btm.iter()), "iteration order must match");
            assert!(idm.keys().eq(btm.keys()));
            assert!(idm.values().eq(btm.values()));
        }
    }

    #[test]
    fn monotonic_inserts_append() {
        let mut m = IdMap::new();
        for k in 0..100u64 {
            assert_eq!(m.insert(k, k * 2), None);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&99), Some(&198));
        assert_eq!(m[&42], 84);
    }

    #[test]
    fn get_mut_and_values_mut_edit_in_place() {
        let mut m = IdMap::new();
        m.insert(3u64, 1u32);
        m.insert(1, 2);
        *m.get_mut(&1).unwrap() += 10;
        for v in m.values_mut() {
            *v *= 2;
        }
        assert_eq!(m.iter().map(|(_, v)| *v).collect::<Vec<_>>(), [24, 2]);
    }

    #[test]
    fn retain_keeps_order() {
        let mut m = IdMap::new();
        for k in 0..10u64 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 3 == 0);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), [0, 3, 6, 9]);
    }

    #[test]
    fn tuple_keys_sort_lexicographically() {
        let mut m = IdMap::new();
        m.insert((1usize, 5u64), 'a');
        m.insert((0, 9), 'b');
        m.insert((1, 2), 'c');
        assert_eq!(
            m.keys().copied().collect::<Vec<_>>(),
            [(0, 9), (1, 2), (1, 5)]
        );
        assert_eq!(m.remove(&(1, 2)), Some('c'));
        assert_eq!(m.remove(&(1, 2)), None);
    }
}
