//! Measurement utilities: histograms, time series, busy-interval
//! windows, bounded reservoirs.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A sample histogram with exact quantiles.
///
/// Stores raw samples and sorts lazily; experiments collect at most a few
/// hundred thousand latencies, so exact quantiles are affordable and avoid
/// binning artefacts in reported P99s.
///
/// For trace-driven runs with millions of completions, a *bounded*
/// histogram ([`Histogram::bounded`]) retains a fixed-size uniform
/// sample (Vitter's algorithm R on a seeded deterministic stream) while
/// the count and mean stay exact via streaming moments — the same
/// discipline as [`Reservoir`]. Quantiles and the max then come from
/// the retained sample, i.e. they are estimates.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    /// Total samples offered (== `samples.len()` when unbounded).
    seen: u64,
    /// Exact running sum of every offered sample.
    sum: f64,
    /// Retention cap; `None` keeps everything.
    cap: Option<usize>,
    /// Deterministic replacement stream (splitmix walk) for the
    /// bounded mode.
    replace_state: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Creates an empty bounded histogram retaining at most `cap`
    /// samples, replacing uniformly on the deterministic stream seeded
    /// by `seed`.
    pub fn bounded(cap: usize, seed: u64) -> Self {
        Histogram {
            cap: Some(cap.max(1)),
            replace_state: seed,
            ..Histogram::default()
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.seen += 1;
        self.sum += v;
        match self.cap {
            Some(cap) if self.samples.len() >= cap => {
                // Algorithm R: replace a uniformly random slot with
                // probability cap/seen.
                self.replace_state = crate::rng::splitmix(self.replace_state);
                let j = self.replace_state % self.seen;
                if (j as usize) < cap {
                    self.samples[j as usize] = v;
                    self.sorted = false;
                }
            }
            _ => {
                self.samples.push(v);
                self.sorted = false;
            }
        }
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Returns the raw samples in insertion order (or sorted order if a
    /// quantile has been taken since the last insert).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Absorbs all of `other`'s samples (e.g. merging per-host
    /// histograms into a cluster-wide one). Merging into an unbounded
    /// histogram keeps every retained sample; the exact `seen`/`sum`
    /// moments always add.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.seen += other.seen;
        self.sum += other.sum;
        self.sorted = false;
    }

    /// Returns the number of *retained* samples (equals the number of
    /// recorded samples unless the histogram is bounded).
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the exact number of samples ever recorded, including
    /// those a bounded histogram no longer retains.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or 0 for an empty histogram. Exact
    /// even for bounded histograms (streaming sum over every sample).
    pub fn mean(&self) -> f64 {
        if self.cap.is_some() {
            return if self.seen == 0 {
                0.0
            } else {
                self.sum / self.seen as f64
            };
        }
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Returns the maximum sample, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Returns the `q`-quantile (`0.0..=1.0`) by nearest-rank, or 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64) * q).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Returns the 99th-percentile sample.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Returns the median sample.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }
}

/// A timestamped series of values, e.g. memory usage over time.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point; timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded timestamp.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be monotonic");
        }
        self.points.push((t, v));
    }

    /// Returns the recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the maximum value, or 0 for an empty series.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Integrates the series as a step function from the first point to
    /// `end` (units: value × seconds). Used for the paper's GiB·s memory
    /// footprint accounting (Figure 10).
    pub fn integral_until(&self, end: SimTime) -> f64 {
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, _) = w[1];
            let stop = t1.min(end);
            if stop > t0 {
                acc += v0 * stop.since(t0).as_secs_f64();
            }
        }
        if let Some(&(tl, vl)) = self.points.last() {
            if end > tl {
                acc += vl * end.since(tl).as_secs_f64();
            }
        }
        acc
    }

    /// Returns the step-function value at `t` (last point at or before
    /// `t`), or `None` before the first point.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Downsamples to one point per `step` (mean of values in each bin),
    /// returning `(bin_start_seconds, mean)` pairs. Bins with no points
    /// carry the previous step value forward.
    pub fn downsample(&self, step: SimDuration) -> Vec<(f64, f64)> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let end = self.points.last().expect("non-empty").0;
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= end {
            let next = t + step;
            let vals: Vec<f64> = self
                .points
                .iter()
                .filter(|&&(pt, _)| pt >= t && pt < next)
                .map(|&(_, v)| v)
                .collect();
            let v = if vals.is_empty() {
                self.value_at(t).unwrap_or(0.0)
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            out.push((t.as_secs_f64(), v));
            t = next;
        }
        out
    }
}

/// A bounded uniform sample of `(time_s, value)` points.
///
/// Long cluster/fleet runs complete millions of requests; recording one
/// time-resolved latency point per request (as the single-host Figure-9
/// plots do via `record_latency_points`) would grow without bound. The
/// reservoir keeps a fixed-capacity uniform sample instead: after `n`
/// offers each point survives with probability `cap / n` (Vitter's
/// Algorithm R), so downstream windowed statistics stay unbiased while
/// memory stays O(cap).
///
/// Determinism: replacement decisions come from the [`DetRng`] stream
/// the reservoir is built with, so the same offer sequence always keeps
/// the same sample — reservoirs in simulation results stay
/// byte-identical across runs and `--jobs` values.
pub struct Reservoir {
    cap: usize,
    seen: u64,
    points: Vec<(f64, f64)>,
    rng: DetRng,
}

impl Reservoir {
    /// Creates an empty reservoir holding at most `cap` points.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize, rng: DetRng) -> Self {
        assert!(cap > 0, "a reservoir needs capacity");
        Reservoir {
            cap,
            seen: 0,
            points: Vec::new(),
            rng,
        }
    }

    /// Offers one `(time_s, value)` point; it is kept with probability
    /// `cap / seen`.
    pub fn offer(&mut self, t: f64, v: f64) {
        self.seen += 1;
        if self.points.len() < self.cap {
            self.points.push((t, v));
        } else {
            let j = self.rng.range(0, self.seen);
            if (j as usize) < self.cap {
                self.points[j as usize] = (t, v);
            }
        }
    }

    /// Maximum number of retained points.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total points offered so far (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of currently retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The retained points, in no particular order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The retained points sorted by time.
    pub fn sorted_points(&self) -> Vec<(f64, f64)> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite points"));
        pts
    }

    /// Mean value of retained points with `from_s <= t < to_s`, or
    /// `None` when the window holds no points.
    pub fn mean_in(&self, from_s: f64, to_s: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from_s && *t < to_s)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(mean(&vals))
        }
    }
}

/// Accumulates cpu-seconds into fixed-width wall-clock windows.
///
/// Figure 7 reports the utilization (%) of the reclaim kernel threads in
/// one-second windows; device models feed their busy intervals here.
#[derive(Clone, Debug)]
pub struct BusyRecorder {
    window: SimDuration,
    /// cpu-seconds accumulated per window index.
    windows: Vec<f64>,
}

impl BusyRecorder {
    /// Creates a recorder with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        BusyRecorder {
            window,
            windows: Vec::new(),
        }
    }

    /// Records that the tracked entity ran at `rate` vCPUs during
    /// `[start, end)`, splitting across window boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn add_interval(&mut self, start: SimTime, end: SimTime, rate: f64) {
        assert!(end >= start, "interval ends before it starts");
        if rate == 0.0 || end == start {
            return;
        }
        let w = self.window.as_nanos();
        let mut t = start.0;
        while t < end.0 {
            let idx = (t / w) as usize;
            let window_end = (idx as u64 + 1) * w;
            let stop = window_end.min(end.0);
            if idx >= self.windows.len() {
                self.windows.resize(idx + 1, 0.0);
            }
            self.windows[idx] += rate * (stop - t) as f64 / 1e9;
            t = stop;
        }
    }

    /// Records a fully-busy interval (`rate = 1.0`).
    pub fn add_busy(&mut self, start: SimTime, end: SimTime) {
        self.add_interval(start, end, 1.0);
    }

    /// Returns per-window utilization as a fraction of one CPU, padded
    /// with zeros up to `until`.
    pub fn utilization(&self, until: SimTime) -> Vec<f64> {
        let n = (until.0.div_ceil(self.window.as_nanos())) as usize;
        let wsecs = self.window.as_secs_f64();
        (0..n)
            .map(|i| self.windows.get(i).copied().unwrap_or(0.0) / wsecs)
            .collect()
    }

    /// Returns total cpu-seconds recorded.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.windows.iter().sum()
    }
}

/// An incremental 64-bit FNV-1a hasher.
///
/// The single shared digest primitive of the workspace: result digests
/// (`faas::SimResult::digest`), the `repro` CLI's per-section output
/// digests and the scenario-equivalence tests all feed this hasher, so
/// "byte-identical" means the same thing everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x100_0000_01B3;

    /// Starts a fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs one `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs one `f64` at full bit precision.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Returns the digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// FNV-1a digest of a string in one call (the `repro` CLI's
/// section-output digest).
pub fn fnv1a(s: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(s.as_bytes());
    h.finish()
}

/// Returns the arithmetic mean of `xs` (0 if empty).
///
/// The single shared definition of "mean" used by the bench tables, so
/// figure modules don't each carry their own divide-by-len helper.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Returns the geometric mean of `xs` (0 if empty).
///
/// # Panics
///
/// Panics if any sample is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires positive samples"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_records_after_quantile() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.p50(), 5.0);
        h.record(1.0);
        assert_eq!(h.p50(), 1.0, "re-sorts after new samples");
    }

    #[test]
    fn time_series_integral() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, 2.0);
        ts.push(SimTime(2_000_000_000), 4.0);
        // 2.0 for 2 s, then 4.0 for 3 s = 4 + 12 = 16 value-seconds.
        let integral = ts.integral_until(SimTime(5_000_000_000));
        assert!((integral - 16.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_value_at() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime(10), 1.0);
        ts.push(SimTime(20), 2.0);
        assert_eq!(ts.value_at(SimTime(5)), None);
        assert_eq!(ts.value_at(SimTime(10)), Some(1.0));
        assert_eq!(ts.value_at(SimTime(15)), Some(1.0));
        assert_eq!(ts.value_at(SimTime(20)), Some(2.0));
        assert_eq!(ts.value_at(SimTime(100)), Some(2.0));
        assert_eq!(ts.max_value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime(10), 1.0);
        ts.push(SimTime(5), 1.0);
    }

    #[test]
    fn busy_recorder_splits_across_windows() {
        let mut b = BusyRecorder::new(SimDuration::secs(1));
        // Busy 0.5 s in window 0 and 0.25 s in window 1.
        b.add_busy(SimTime(500_000_000), SimTime(1_250_000_000));
        let u = b.utilization(SimTime(2_000_000_000));
        assert_eq!(u.len(), 2);
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!((u[1] - 0.25).abs() < 1e-9);
        assert!((b.total_cpu_seconds() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn busy_recorder_rate_scaling() {
        let mut b = BusyRecorder::new(SimDuration::secs(1));
        b.add_interval(SimTime::ZERO, SimTime(1_000_000_000), 0.5);
        let u = b.utilization(SimTime(1_000_000_000));
        assert!((u[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_samples_and_merge() {
        let mut a = Histogram::new();
        a.record(1.0);
        a.record(3.0);
        let mut b = Histogram::new();
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.samples(), &[1.0, 3.0, 2.0]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.p50(), 2.0, "merged samples participate in quantiles");
        assert_eq!(b.count(), 1, "merge leaves the source untouched");
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert!((mean(&[1.0, 2.0, 6.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut r = Reservoir::new(16, DetRng::new(1));
        for i in 0..10 {
            r.offer(i as f64, (i * 2) as f64);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
        assert_eq!(r.sorted_points()[3], (3.0, 6.0));
        assert_eq!(r.mean_in(0.0, 2.0), Some(1.0), "mean of 0 and 2");
        assert_eq!(r.mean_in(50.0, 60.0), None);
    }

    #[test]
    fn reservoir_is_bounded_and_roughly_uniform() {
        let cap = 200;
        let n = 20_000u64;
        let mut r = Reservoir::new(cap, DetRng::new(7));
        for i in 0..n {
            r.offer(i as f64, 1.0);
        }
        assert_eq!(r.len(), cap);
        assert_eq!(r.seen(), n);
        // A uniform sample puts about half the survivors in each half
        // of the stream; a sampler biased to early or late offers would
        // concentrate far outside this band.
        let early = r
            .points()
            .iter()
            .filter(|(t, _)| *t < n as f64 / 2.0)
            .count();
        assert!(
            (60..=140).contains(&early),
            "early-half survivors {early} of {cap}"
        );
    }

    #[test]
    fn reservoir_is_deterministic_in_its_stream() {
        let run = |seed| {
            let mut r = Reservoir::new(32, DetRng::new(seed));
            for i in 0..1000 {
                r.offer(i as f64, (i % 17) as f64);
            }
            r.sorted_points()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different streams keep different samples");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn reservoir_rejects_zero_capacity() {
        let _ = Reservoir::new(0, DetRng::new(1));
    }

    #[test]
    fn downsample_bins() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, 1.0);
        ts.push(SimTime(500_000_000), 3.0);
        ts.push(SimTime(1_500_000_000), 5.0);
        let d = ts.downsample(SimDuration::secs(1));
        assert_eq!(d.len(), 2);
        assert!((d[0].1 - 2.0).abs() < 1e-9, "mean of 1 and 3");
        assert!((d[1].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a("a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a("foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn fnv1a_incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a("foobar"));
        // write_u64 is the little-endian byte expansion.
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
