//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cells[i]
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
                    .unwrap_or(false);
                if numeric {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                } else {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "123".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains('a'));
        // Numeric cells right-aligned: "1" under "value" ends aligned
        // with "123".
        assert!(lines[2].ends_with("  1") || lines[2].ends_with(" 1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
