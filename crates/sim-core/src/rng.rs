//! Deterministic random streams and the samplers used by the workloads.
//!
//! Trace generation needs exponential inter-arrivals (Poisson processes),
//! Zipf-distributed function popularity (Azure trace analyses report
//! heavy-tailed popularity) and log-normal service times. Rather than pull
//! in extra dependencies, the samplers are implemented here from first
//! principles on top of `rand::rngs::SmallRng`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic random stream.
///
/// Each simulation component derives its own stream via
/// [`DetRng::derive`], so adding random draws to one component never
/// perturbs another (a requirement for figure-to-figure reproducibility).
pub struct DetRng {
    seed: u64,
    rng: SmallRng,
}

/// SplitMix64 finalizer: the avalanche step that separates child seeds
/// (also the bounded histogram's replacement walk).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns the seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `tag`.
    ///
    /// The child seed mixes the *parent seed* with the tag (SplitMix64
    /// finalizer over both), so children of differently-seeded parents
    /// never coincide, and deriving does not consume parent draws —
    /// `derive` is a pure function of `(parent seed, tag)`.
    pub fn derive(&self, tag: u64) -> DetRng {
        DetRng::new(splitmix(self.seed ^ splitmix(tag)))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Exponential draw with rate `lambda` (mean `1 / lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -u.ln() / lambda
    }

    /// Log-normal draw with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        // Box-Muller transform.
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Appends homogeneous-Poisson arrivals with rate `rate` over
/// `[start, end)` to `out`.
///
/// The single shared definition of "draw a Poisson arrival train" used
/// by every workload generator (bursty phases, churn drumbeats), so the
/// draw sequence — one [`DetRng::exp`] per candidate, first candidate at
/// `start + exp` — is identical everywhere and pinned by the golden
/// digests. A non-positive `rate` consumes no draws and appends nothing.
pub fn poisson_arrivals_into(
    rng: &mut DetRng,
    start: f64,
    end: f64,
    rate: f64,
    out: &mut Vec<f64>,
) {
    if rate <= 0.0 {
        return;
    }
    let mut a = start + rng.exp(rate);
    while a < end {
        out.push(a);
        a += rng.exp(rate);
    }
}

/// Samples a non-homogeneous Poisson process over `[0, duration_s)` by
/// thinning a rate-`lambda_max` homogeneous process.
///
/// `rate_at(rng, t)` returns the instantaneous rate `λ(t) ≤ lambda_max`
/// at candidate time `t`; it receives the same stream so stateful rate
/// models (e.g. burst phases advanced by their own exponential draws)
/// stay on one per-tenant stream. Draw order per candidate: one
/// [`DetRng::exp`], then whatever `rate_at` draws, then one
/// [`DetRng::unit`] for the accept test — the exact sequence the diurnal
/// generator has always used, pinned by the golden digests.
pub fn nhpp_thinned_arrivals(
    rng: &mut DetRng,
    lambda_max: f64,
    duration_s: f64,
    mut rate_at: impl FnMut(&mut DetRng, f64) -> f64,
) -> Vec<f64> {
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exp(lambda_max);
        if t >= duration_s {
            break;
        }
        let lambda_t = rate_at(rng, t);
        if rng.unit() < lambda_t / lambda_max {
            arrivals.push(t);
        }
    }
    arrivals
}

/// A Zipf(`s`) sampler over ranks `0..n`, built on a precomputed CDF.
///
/// Rank 0 is the most popular item. Used to assign invocation rates to
/// functions when synthesizing Azure-like traces (Figure 2).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Returns the probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let root = DetRng::new(7);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        let xs: Vec<u64> = (0..16).map(|_| a.range(0, 1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.range(0, 1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_depend_on_parent_seed() {
        // Regression: children of differently-seeded parents must not
        // coincide (the original derive mixed only the tag).
        let mut a = DetRng::new(1).derive(5);
        let mut b = DetRng::new(2).derive(5);
        let xs: Vec<u64> = (0..16).map(|_| a.range(0, 1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.range(0, 1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_is_pure_and_stateless() {
        let mut root = DetRng::new(9);
        let before: Vec<u64> = {
            let mut c = root.derive(3);
            (0..8).map(|_| c.range(0, 1 << 20)).collect()
        };
        // Consuming parent draws must not perturb the child stream.
        for _ in 0..100 {
            root.unit();
        }
        let after: Vec<u64> = {
            let mut c = root.derive(3);
            (0..8).map(|_| c.range(0, 1 << 20)).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn exp_mean_is_reciprocal_rate() {
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn log_normal_is_positive_with_sane_median() {
        let mut rng = DetRng::new(2);
        let mut xs: Vec<f64> = (0..10_001).map(|_| rng.log_normal(0.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(10, 1.0);
        let mut rng = DetRng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        // PMF sums to one.
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(4);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn poisson_arrivals_match_the_naive_loop() {
        // The helper must be draw-for-draw identical to the open-coded
        // loop it replaced (byte-identity of the golden digests).
        let mut a = DetRng::new(11);
        let mut got = Vec::new();
        poisson_arrivals_into(&mut a, 3.0, 40.0, 2.5, &mut got);
        let mut b = DetRng::new(11);
        let mut want = Vec::new();
        let mut t = 3.0 + b.exp(2.5);
        while t < 40.0 {
            want.push(t);
            t += b.exp(2.5);
        }
        assert_eq!(got, want);
        assert!(!got.is_empty());
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(got.iter().all(|&x| (3.0..40.0).contains(&x)), "in range");
    }

    #[test]
    fn poisson_arrivals_zero_rate_draws_nothing() {
        let mut rng = DetRng::new(12);
        let mut out = Vec::new();
        poisson_arrivals_into(&mut rng, 0.0, 100.0, 0.0, &mut out);
        assert!(out.is_empty());
        // No draws consumed: the stream is still at its origin.
        let mut fresh = DetRng::new(12);
        assert_eq!(rng.unit().to_bits(), fresh.unit().to_bits());
    }

    #[test]
    fn nhpp_thinning_accepts_by_rate_ratio() {
        // A constant rate_at == lambda_max accepts every candidate, so
        // thinning degenerates to the homogeneous process.
        let mut a = DetRng::new(13);
        let all = nhpp_thinned_arrivals(&mut a, 4.0, 50.0, |_, _| 4.0);
        let mut b = DetRng::new(13);
        let mut expect = Vec::new();
        let mut t = 0.0;
        loop {
            t += b.exp(4.0);
            if t >= 50.0 {
                break;
            }
            b.unit(); // the accept draw still happens
            expect.push(t);
        }
        assert_eq!(all, expect);
        // Half rate keeps roughly half the candidates.
        let mut c = DetRng::new(13);
        let half = nhpp_thinned_arrivals(&mut c, 4.0, 50.0, |_, _| 2.0);
        assert!(half.len() < all.len());
        assert!(half.len() > all.len() / 4, "about half survive");
        assert!(half.iter().all(|x| all.contains(x)), "a thinned subset");
    }

    #[test]
    fn nhpp_rate_at_shares_the_stream() {
        // rate_at may draw from the stream; those draws must land
        // between the candidate exp and the accept unit.
        let mut a = DetRng::new(14);
        let got = nhpp_thinned_arrivals(&mut a, 3.0, 20.0, |rng, _| {
            let _ = rng.unit();
            3.0
        });
        let mut b = DetRng::new(14);
        let mut expect = Vec::new();
        let mut t = 0.0;
        loop {
            t += b.exp(3.0);
            if t >= 20.0 {
                break;
            }
            b.unit(); // rate_at's draw
            b.unit(); // accept draw (λ == λ_max always accepts)
            expect.push(t);
        }
        assert_eq!(got, expect);
    }
}
