//! A fluid CPU model: generalized processor sharing with per-task caps.
//!
//! The paper's interference results (Figures 7 and 9) hinge on *who runs
//! where*: the virtio-mem driver's kernel thread migrating pages steals
//! vCPU time from co-located function instances, while Squeezy's driver
//! needs almost none. We model each vCPU set as a [`CpuPool`] in which
//! every runnable task progresses at a *rate* (in vCPUs) determined by
//! water-filling: capacity is divided in proportion to task weights,
//! subject to each task's rate cap (the container CPU-share limit of
//! Table 1). Rates only change when the runnable set changes, so the
//! simulation advances in O(changes), not in ticks.

use crate::collections::IdMap;
use crate::time::{SimDuration, SimTime};

/// Identifier of a task inside a [`CpuPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(u64);

#[derive(Clone, Debug)]
struct Task {
    /// Remaining service demand in cpu-seconds (`f64::INFINITY` for
    /// background tasks that never finish on their own).
    remaining: f64,
    /// Maximum rate in vCPUs (container CPU-share limit).
    cap: f64,
    /// GPS weight.
    weight: f64,
    /// Current rate in vCPUs, recomputed on every set change.
    rate: f64,
    /// Total cpu-seconds consumed so far.
    consumed: f64,
}

/// A pool of vCPUs shared by tasks under capped processor sharing.
pub struct CpuPool {
    capacity: f64,
    now: SimTime,
    tasks: IdMap<TaskId, Task>,
    next_id: u64,
    total_consumed: f64,
    /// Water-filling scratch buffers, reused across recomputations so
    /// the per-event path never allocates once warmed up.
    unfixed: Vec<TaskId>,
    still: Vec<TaskId>,
}

impl CpuPool {
    /// Creates a pool with `capacity` vCPUs starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "pool needs positive capacity");
        CpuPool {
            capacity,
            now: SimTime::ZERO,
            tasks: IdMap::new(),
            next_id: 0,
            total_consumed: 0.0,
            unfixed: Vec::new(),
            still: Vec::new(),
        }
    }

    /// Returns the pool capacity in vCPUs.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Returns the time the pool was last advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of runnable tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if no tasks are runnable.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a runnable task at the current instant.
    ///
    /// `demand` is the total service demand in cpu-seconds
    /// (`f64::INFINITY` for open-ended background load); `cap` is the
    /// task's maximum rate in vCPUs; `weight` its GPS weight.
    ///
    /// # Panics
    ///
    /// Panics if `demand < 0`, `cap <= 0` or `weight <= 0`.
    pub fn add_task(&mut self, demand: f64, cap: f64, weight: f64) -> TaskId {
        assert!(demand >= 0.0, "negative demand");
        assert!(cap > 0.0, "cap must be positive");
        assert!(weight > 0.0, "weight must be positive");
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                remaining: demand,
                cap,
                weight,
                rate: 0.0,
                consumed: 0.0,
            },
        );
        self.recompute_rates();
        id
    }

    /// Adds `extra` cpu-seconds of demand to an existing task.
    ///
    /// # Panics
    ///
    /// Panics if the task does not exist.
    pub fn add_demand(&mut self, id: TaskId, extra: f64) {
        let t = self.tasks.get_mut(&id).expect("no such task");
        t.remaining += extra;
    }

    /// Removes a task, returning the cpu-seconds it consumed.
    ///
    /// # Panics
    ///
    /// Panics if the task does not exist.
    pub fn remove(&mut self, id: TaskId) -> f64 {
        let t = self.tasks.remove(&id).expect("no such task");
        self.recompute_rates();
        t.consumed
    }

    /// Returns the current rate of `id` in vCPUs, or `None` if absent.
    pub fn rate_of(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| t.rate)
    }

    /// Returns the remaining demand of `id`, or `None` if absent.
    pub fn remaining(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| t.remaining)
    }

    /// Returns the cpu-seconds consumed by `id` so far, or `None`.
    pub fn consumed(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| t.consumed)
    }

    /// Returns the sum of all current task rates (instantaneous pool
    /// utilization in vCPUs).
    pub fn total_rate(&self) -> f64 {
        self.tasks.values().map(|t| t.rate).sum()
    }

    /// Returns total cpu-seconds consumed by all tasks ever in the pool.
    pub fn total_consumed(&self) -> f64 {
        self.total_consumed
    }

    /// Advances the pool clock to `t`, charging consumption at current
    /// rates.
    ///
    /// The caller must not advance past the next task completion (use
    /// [`CpuPool::next_completion`]); in debug builds this is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "pool time went backwards");
        let dt = t.since(self.now).as_secs_f64();
        if dt > 0.0 {
            for task in self.tasks.values_mut() {
                let used = task.rate * dt;
                debug_assert!(
                    task.remaining.is_infinite() || task.remaining - used > -1e-6,
                    "advanced past completion: remaining {} used {used}",
                    task.remaining
                );
                if task.remaining.is_finite() {
                    task.remaining = (task.remaining - used).max(0.0);
                }
                task.consumed += used;
                self.total_consumed += used;
            }
        }
        self.now = t;
    }

    /// Returns the earliest task completion `(task, time)` under current
    /// rates, or `None` if no finite-demand task is running.
    pub fn next_completion(&self) -> Option<(TaskId, SimTime)> {
        let mut best: Option<(TaskId, f64)> = None;
        for (&id, t) in self.tasks.iter() {
            if !t.remaining.is_finite() || t.rate <= 0.0 {
                continue;
            }
            let eta = t.remaining / t.rate;
            match best {
                Some((_, b)) if b <= eta => {}
                _ => best = Some((id, eta)),
            }
        }
        best.map(|(id, eta)| (id, self.now + SimDuration::from_secs_f64(eta)))
    }

    /// Recomputes all task rates by water-filling.
    ///
    /// Capacity is split in proportion to weights; any task whose
    /// proportional share exceeds its cap is pinned at the cap and the
    /// leftover is redistributed among the rest.
    fn recompute_rates(&mut self) {
        // Reuse the scratch buffers (taken out of `self` so the task map
        // stays borrowable): the floating-point operation order below is
        // deliberately identical to the original BTreeMap formulation,
        // so rates — and every digest downstream — are bit-exact.
        let mut unfixed = std::mem::take(&mut self.unfixed);
        let mut still = std::mem::take(&mut self.still);
        unfixed.clear();
        unfixed.extend(self.tasks.keys().copied());
        let mut cap_left = self.capacity;
        // Water-filling terminates in at most `n` rounds because each
        // round fixes at least one task.
        loop {
            let wsum: f64 = unfixed.iter().map(|id| self.tasks[id].weight).sum();
            if wsum <= 0.0 || unfixed.is_empty() {
                break;
            }
            let mut fixed_any = false;
            still.clear();
            for id in unfixed.drain(..) {
                let t = &self.tasks[&id];
                let share = cap_left * t.weight / wsum;
                if share >= t.cap {
                    let cap = t.cap;
                    self.tasks.get_mut(&id).expect("present").rate = cap;
                    cap_left -= cap;
                    fixed_any = true;
                } else {
                    still.push(id);
                }
            }
            std::mem::swap(&mut unfixed, &mut still);
            if !fixed_any {
                // No task is capped: split what is left proportionally.
                let wsum: f64 = unfixed.iter().map(|id| self.tasks[id].weight).sum();
                for id in &unfixed {
                    let w = self.tasks[id].weight;
                    self.tasks.get_mut(id).expect("present").rate = cap_left * w / wsum;
                }
                break;
            }
            if unfixed.is_empty() {
                break;
            }
        }
        self.unfixed = unfixed;
        self.still = still;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn single_task_runs_at_cap() {
        let mut pool = CpuPool::new(4.0);
        let t = pool.add_task(1.0, 0.25, 1.0);
        assert_close(pool.rate_of(t).unwrap(), 0.25);
        let (id, when) = pool.next_completion().unwrap();
        assert_eq!(id, t);
        assert_close(when.as_secs_f64(), 4.0);
    }

    #[test]
    fn uncontended_tasks_all_run_at_cap() {
        let mut pool = CpuPool::new(4.0);
        let a = pool.add_task(f64::INFINITY, 1.0, 1.0);
        let b = pool.add_task(f64::INFINITY, 1.0, 1.0);
        let c = pool.add_task(f64::INFINITY, 0.25, 1.0);
        assert_close(pool.rate_of(a).unwrap(), 1.0);
        assert_close(pool.rate_of(b).unwrap(), 1.0);
        assert_close(pool.rate_of(c).unwrap(), 0.25);
        assert_close(pool.total_rate(), 2.25);
    }

    #[test]
    fn contended_tasks_share_fairly() {
        let mut pool = CpuPool::new(2.0);
        let ids: Vec<_> = (0..4)
            .map(|_| pool.add_task(f64::INFINITY, 1.0, 1.0))
            .collect();
        for id in &ids {
            assert_close(pool.rate_of(*id).unwrap(), 0.5);
        }
    }

    #[test]
    fn capped_task_leftover_goes_to_others() {
        // Capacity 2, one task capped at 0.25, one uncapped: the uncapped
        // task should get min(1.75, its cap=2.0) = 1.75... but caps are
        // per-vCPU, so cap it at 1.0.
        let mut pool = CpuPool::new(2.0);
        let small = pool.add_task(f64::INFINITY, 0.25, 1.0);
        let big = pool.add_task(f64::INFINITY, 1.0, 1.0);
        assert_close(pool.rate_of(small).unwrap(), 0.25);
        assert_close(pool.rate_of(big).unwrap(), 1.0);
    }

    #[test]
    fn overload_respects_weights() {
        let mut pool = CpuPool::new(1.0);
        let heavy = pool.add_task(f64::INFINITY, 1.0, 3.0);
        let light = pool.add_task(f64::INFINITY, 1.0, 1.0);
        assert_close(pool.rate_of(heavy).unwrap(), 0.75);
        assert_close(pool.rate_of(light).unwrap(), 0.25);
    }

    #[test]
    fn advance_consumes_and_completes() {
        let mut pool = CpuPool::new(1.0);
        let a = pool.add_task(0.5, 1.0, 1.0);
        let b = pool.add_task(f64::INFINITY, 1.0, 1.0);
        // Both run at 0.5; `a` finishes after 1 s.
        let (id, when) = pool.next_completion().unwrap();
        assert_eq!(id, a);
        assert_close(when.as_secs_f64(), 1.0);
        pool.advance_to(when);
        assert_close(pool.remaining(a).unwrap(), 0.0);
        assert_close(pool.consumed(a).unwrap(), 0.5);
        let used = pool.remove(a);
        assert_close(used, 0.5);
        // `b` now gets the whole CPU.
        assert_close(pool.rate_of(b).unwrap(), 1.0);
        assert_close(pool.total_consumed(), 1.0);
    }

    #[test]
    fn add_demand_extends_task() {
        let mut pool = CpuPool::new(1.0);
        let a = pool.add_task(1.0, 1.0, 1.0);
        pool.add_demand(a, 1.0);
        let (_, when) = pool.next_completion().unwrap();
        assert_close(when.as_secs_f64(), 2.0);
    }

    #[test]
    fn interference_slows_everyone() {
        // One function at cap 1.0 on a 1-vCPU pool, then a kthread with
        // equal weight arrives: the function drops to 0.5 vCPU, doubling
        // its completion time — the Figure 9 effect in miniature.
        let mut pool = CpuPool::new(1.0);
        let func = pool.add_task(1.0, 1.0, 1.0);
        assert_close(pool.next_completion().unwrap().1.as_secs_f64(), 1.0);
        let kthread = pool.add_task(f64::INFINITY, 1.0, 1.0);
        assert_close(pool.rate_of(func).unwrap(), 0.5);
        let (_, when) = pool.next_completion().unwrap();
        assert_close(when.as_secs_f64(), 2.0);
        pool.advance_to(when);
        pool.remove(kthread);
    }

    #[test]
    fn empty_pool_has_no_completion() {
        let pool = CpuPool::new(1.0);
        assert!(pool.next_completion().is_none());
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "no such task")]
    fn remove_unknown_task_panics() {
        let mut pool = CpuPool::new(1.0);
        let t = pool.add_task(1.0, 1.0, 1.0);
        pool.remove(t);
        pool.remove(t);
    }
}
