//! The calibrated cost model.
//!
//! Every nanosecond the simulator charges comes from a named constant in
//! [`CostModel`]. The defaults are calibrated so that the microbenchmark
//! experiments land on the absolute numbers the paper reports on its Xeon
//! E5-2630 testbed (§6.1): balloon ≈ 5-6 s, virtio-mem ≈ 2.5 s and Squeezy
//! ≈ 127 ms when reclaiming 2 GiB, with virtio-mem's latency split ≈ 61.5 %
//! migration / 24 % zeroing. The calibration table lives in
//! `EXPERIMENTS.md`; nothing else in the workspace hard-codes a duration.

use crate::time::SimDuration;

/// Calibrated per-operation costs (all in nanoseconds unless noted).
#[derive(Clone, Debug)]
pub struct CostModel {
    // --- Generic virtualization costs -----------------------------------
    /// Base cost of a VM exit round trip (world switch + host dispatch).
    pub vmexit_ns: u64,
    /// Host-side cost to handle a nested (EPT) page fault and back a fresh
    /// 4 KiB guest page with host memory. Dominates the cold-start tax of
    /// dynamically resized VMs (§6.2.1: 3-35 % slower cold starts).
    pub ept_fault_4k_ns: u64,
    /// Host-side cost to handle a nested fault backing a whole 2 MiB huge
    /// page (THP on the host, §5.1): one exit amortized over 512 base
    /// pages, which is why the paper's testbed enables THP.
    pub ept_fault_2m_ns: u64,
    /// Guest-side cost of a minor page fault that hits already-backed
    /// memory (buddy allocation + page-table update).
    pub guest_minor_fault_ns: u64,

    // --- Guest kernel memory-management costs ---------------------------
    /// Zeroing one 4 KiB page (`init_on_alloc=1` hardening, §2.2): the
    /// calibrated ~3.5 GiB/s the paper's zeroing share implies.
    pub zero_page_ns: u64,
    /// Migrating one occupied 4 KiB page during offlining: target
    /// allocation, copy, remap and TLB shootdown share.
    pub migrate_page_ns: u64,
    /// Migrating one 2 MiB huge page as a unit: one 2 MiB copy plus a
    /// single remap — far cheaper than 512 base-page migrations.
    pub migrate_huge_page_ns: u64,
    /// Splitting a huge page into base pages before migration (PMD
    /// unmap, per-page remap setup) when no order-9 target exists.
    pub huge_split_ns: u64,
    /// Per-page scan/isolate work while offlining a block (LRU isolation,
    /// pcp drain, movability checks).
    pub offline_scan_page_ns: u64,
    /// Fixed per-block cost of `offline_pages()` bookkeeping (memory
    /// notifier chain, zone span shrink).
    pub offline_block_fixed_ns: u64,
    /// Fixed per-block cost of hot-remove (memmap teardown, sysfs).
    pub hot_remove_block_ns: u64,
    /// Fixed per-block cost of hot-add (memmap init, sysfs).
    pub hot_add_block_ns: u64,
    /// Fixed per-block cost of onlining (releasing pages to the buddy).
    pub online_block_ns: u64,

    // --- virtio-mem device costs -----------------------------------------
    /// Host-side handling of one unplugged 128 MiB block: config update,
    /// `madvise(MADV_DONTNEED)` on the range, response. The paper reports
    /// ~3 ms per 128 MiB chunk (§8).
    pub virtio_block_exit_ns: u64,
    /// Fixed latency of a resize request round trip (runtime → VMM →
    /// device config → guest driver wakeup).
    pub resize_request_fixed_ns: u64,

    // --- virtio-balloon costs --------------------------------------------
    /// Number of page-frame numbers per balloon descriptor array (the
    /// virtio-balloon `VIRTIO_BALLOON_ARRAY_PFNS_MAX`).
    pub balloon_pages_per_desc: u64,
    /// Free-page-reporting: ranges per report request (the kernel's
    /// `PAGE_REPORTING_CAPACITY` scatter-gather limit).
    pub fpr_ranges_per_report: u64,
    /// Free-page-reporting: guest cost to isolate, queue and return one
    /// free chunk during a reporting cycle.
    pub fpr_chunk_ns: u64,
    /// Guest-side per-page inflate work (allocate + queue the pfn).
    pub balloon_guest_page_ns: u64,
    /// Host-side per-page release during inflate (leak-page accounting and
    /// per-page `madvise`). Charged to the VM-exit bucket: the paper
    /// attributes 81 % of balloon latency to serving exits.
    pub balloon_host_page_ns: u64,

    // --- Swap-device costs --------------------------------------------------
    /// Writing one 4 KiB page to a disk-backed swap device (batched SSD
    /// writeback share).
    pub swap_out_page_disk_ns: u64,
    /// Major fault reading one 4 KiB page back from disk swap
    /// (synchronous read + fault handling).
    pub swap_in_page_disk_ns: u64,
    /// Compressing one page into a memory-backed (zswap/frontswap)
    /// pool.
    pub swap_compress_page_ns: u64,
    /// Decompressing one page out of the memory-backed pool.
    pub swap_decompress_page_ns: u64,

    // --- Host / VMM costs --------------------------------------------------
    /// Fixed cost of one `madvise(MADV_DONTNEED)` call.
    pub madvise_fixed_ns: u64,
    /// Per-MiB cost of unmapping host pages in `madvise(MADV_DONTNEED)`.
    pub madvise_per_mib_ns: u64,
    /// microVM boot: VMM setup + guest kernel boot + init, before any
    /// container work starts (1:1 model, Figure 11a "VMM cold delays").
    pub microvm_boot_fixed_ns: u64,
    /// Cloning a running N:1 VM (Snowflock-style copy-on-write fork,
    /// the hybrid scaling approach of §7 \[56\]): much cheaper than a
    /// cold boot because guest state is shared CoW with the parent.
    pub vm_clone_fixed_ns: u64,
    /// Reading one MiB of image/dependency data from backing storage on a
    /// page-cache miss (container rootfs pulls, runtime deps).
    pub disk_read_mib_ns: u64,
    /// Touching one MiB of data already resident in the guest page cache.
    pub cached_read_mib_ns: u64,

    // --- Squeezy-specific costs -------------------------------------------
    /// The Squeezy partition-assignment syscall (zonelist scan + lock).
    pub squeezy_syscall_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            vmexit_ns: 1_500,
            ept_fault_4k_ns: 2_200,
            ept_fault_2m_ns: 16_000,
            guest_minor_fault_ns: 750,

            zero_page_ns: 1_120,
            migrate_page_ns: 3_100,
            migrate_huge_page_ns: 230_000,
            huge_split_ns: 30_000,
            offline_scan_page_ns: 200,
            offline_block_fixed_ns: 2_000_000,
            hot_remove_block_ns: 1_500_000,
            hot_add_block_ns: 1_000_000,
            online_block_ns: 800_000,

            virtio_block_exit_ns: 3_000_000,
            resize_request_fixed_ns: 15_000_000,

            balloon_pages_per_desc: 256,
            fpr_ranges_per_report: 32,
            fpr_chunk_ns: 1_600,
            balloon_guest_page_ns: 1_900,
            balloon_host_page_ns: 8_200,

            swap_out_page_disk_ns: 8_000,
            swap_in_page_disk_ns: 26_000,
            swap_compress_page_ns: 2_500,
            swap_decompress_page_ns: 1_500,

            madvise_fixed_ns: 2_000,
            madvise_per_mib_ns: 500,
            microvm_boot_fixed_ns: 380_000_000,
            vm_clone_fixed_ns: 85_000_000,
            disk_read_mib_ns: 1_800_000,
            cached_read_mib_ns: 60_000,

            squeezy_syscall_ns: 4_000,
        }
    }
}

impl CostModel {
    /// Cost to zero `n` pages.
    pub fn zero_pages(&self, n: u64) -> SimDuration {
        SimDuration(self.zero_page_ns * n)
    }

    /// Cost to migrate `n` pages.
    pub fn migrate_pages(&self, n: u64) -> SimDuration {
        SimDuration(self.migrate_page_ns * n)
    }

    /// Cost to fault `n` fresh 4 KiB guest pages whose backing requires a
    /// nested EPT fault each.
    pub fn ept_faults(&self, n: u64) -> SimDuration {
        SimDuration(self.ept_fault_4k_ns * n)
    }

    /// Cost to back `n` huge pages with one 2 MiB nested fault each.
    pub fn ept_faults_huge(&self, n: u64) -> SimDuration {
        SimDuration(self.ept_fault_2m_ns * n)
    }

    /// Cost to migrate `n` huge pages whole, plus splitting `splits`
    /// huge pages whose base pages migrate individually (the base-page
    /// migrations themselves are charged via [`CostModel::migrate_pages`]).
    pub fn migrate_huge(&self, n: u64, splits: u64) -> SimDuration {
        SimDuration(self.migrate_huge_page_ns * n + self.huge_split_ns * splits)
    }

    /// Cost of the host `madvise(MADV_DONTNEED)` releasing `bytes`.
    pub fn madvise(&self, bytes: u64) -> SimDuration {
        SimDuration(self.madvise_fixed_ns + self.madvise_per_mib_ns * (bytes >> 20))
    }
}

/// Where the nanoseconds of a reclamation operation went.
///
/// Mirrors the stacked bars of Figure 5: page zeroing (guest), page
/// migration (guest), serving VM exits (host) and the rest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Guest time spent zeroing pages.
    pub zeroing: SimDuration,
    /// Guest time spent migrating occupied pages.
    pub migration: SimDuration,
    /// Host time spent serving VM exits (including host-side page release
    /// for ballooning, per the paper's attribution).
    pub vmexits: SimDuration,
    /// Everything else: scans, offline/remove bookkeeping, request fixed
    /// costs.
    pub rest: SimDuration,
}

impl LatencyBreakdown {
    /// Total latency across all buckets.
    pub fn total(&self) -> SimDuration {
        self.zeroing + self.migration + self.vmexits + self.rest
    }

    /// Adds another breakdown bucket-wise.
    pub fn accumulate(&mut self, other: &LatencyBreakdown) {
        self.zeroing += other.zeroing;
        self.migration += other.migration;
        self.vmexits += other.vmexits;
        self.rest += other.rest;
    }

    /// Returns each bucket as a fraction of the total (zeroing, migration,
    /// vmexits, rest). Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().as_nanos() as f64;
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.zeroing.as_nanos() as f64 / t,
            self.migration.as_nanos() as f64 / t,
            self.vmexits.as_nanos() as f64 / t,
            self.rest.as_nanos() as f64 / t,
        ]
    }

    /// Divides every bucket by `n` (averaging across repeated steps).
    pub fn scale_down(&self, n: u64) -> LatencyBreakdown {
        assert!(n > 0, "cannot average over zero steps");
        LatencyBreakdown {
            zeroing: self.zeroing / n,
            migration: self.migration / n,
            vmexits: self.vmexits / n,
            rest: self.rest / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_calibration_targets() {
        let c = CostModel::default();
        // Zeroing 2 GiB should be in the vicinity of 0.6 s (24 % of the
        // ~2.5 s virtio-mem unplug the paper reports).
        let pages_2g = 2 * 1024 * 1024 * 1024u64 / 4096;
        let z = c.zero_pages(pages_2g);
        assert!(
            (0.5..0.7).contains(&z.as_secs_f64()),
            "zeroing 2 GiB took {z}"
        );
        // Ballooning 2 GiB should be several seconds.
        let balloon = (c.balloon_guest_page_ns + c.balloon_host_page_ns) * pages_2g;
        assert!(balloon > 4_000_000_000, "balloon cost {balloon} ns");
    }

    #[test]
    fn breakdown_total_and_fractions() {
        let b = LatencyBreakdown {
            zeroing: SimDuration::millis(24),
            migration: SimDuration::millis(61),
            vmexits: SimDuration::millis(5),
            rest: SimDuration::millis(10),
        };
        assert_eq!(b.total(), SimDuration::millis(100));
        let f = b.fractions();
        assert!((f[0] - 0.24).abs() < 1e-9);
        assert!((f[1] - 0.61).abs() < 1e-9);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_accumulate_and_scale() {
        let mut acc = LatencyBreakdown::default();
        let step = LatencyBreakdown {
            zeroing: SimDuration::millis(10),
            migration: SimDuration::millis(20),
            vmexits: SimDuration::millis(2),
            rest: SimDuration::millis(4),
        };
        for _ in 0..4 {
            acc.accumulate(&step);
        }
        assert_eq!(acc.total(), SimDuration::millis(144));
        let avg = acc.scale_down(4);
        assert_eq!(avg, step);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(LatencyBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn huge_costs_beat_base_equivalents() {
        let c = CostModel::default();
        // Backing 2 MiB as one huge fault must be far cheaper than 512
        // base nested faults, but dearer than a single 4 KiB fault.
        assert!(c.ept_fault_2m_ns < 512 * c.ept_fault_4k_ns / 10);
        assert!(c.ept_fault_2m_ns > c.ept_fault_4k_ns);
        // Whole-huge migration beats split + 512 base migrations.
        let whole = c.migrate_huge(1, 0);
        let split = c.migrate_huge(0, 1) + c.migrate_pages(512);
        assert!(whole < split / 3, "whole {whole} vs split {split}");
    }

    #[test]
    fn madvise_scales_with_size() {
        let c = CostModel::default();
        let small = c.madvise(1 << 20);
        let big = c.madvise(128 << 20);
        assert!(big > small);
        assert_eq!(
            big.as_nanos(),
            c.madvise_fixed_ns + 128 * c.madvise_per_mib_ns
        );
    }
}
