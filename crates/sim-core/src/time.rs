//! Virtual time: nanosecond-resolution instants and durations.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The epoch (simulation boot).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns this instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Creates a duration of `n` microseconds.
    pub const fn micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// Creates a duration of `n` milliseconds.
    pub const fn millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// Creates a duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::micros(1).0, 1_000);
        assert_eq!(SimDuration::millis(1).0, 1_000_000);
        assert_eq!(SimDuration::secs(1).0, 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).0, 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0).0, 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::millis(5);
        assert_eq!(t.0, 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::millis(5));
        assert_eq!(t - SimDuration::millis(2), SimTime(3_000_000));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_rejects_reversed_order() {
        SimTime(1).since(SimTime(2));
    }

    #[test]
    fn duration_arithmetic_saturates_on_sub() {
        let a = SimDuration::millis(1);
        let b = SimDuration::millis(3);
        assert_eq!(b - a, SimDuration::millis(2));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a * 4, SimDuration::millis(4));
        assert_eq!(SimDuration::millis(4) / 2, SimDuration::millis(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::secs(2).to_string(), "2.000s");
        assert_eq!(SimTime(1_500_000_000).to_string(), "t=1.500000s");
    }
}
