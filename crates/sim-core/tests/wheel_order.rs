//! Property: the timer-wheel [`EventQueue`] pops in exactly the same
//! (time, seq) order as the reference [`BinaryHeapQueue`] over
//! arbitrary push/pop interleavings — including same-instant FIFO ties
//! and far-future events that rest in the wheel's overflow levels and
//! cascade down through every level on their way out.

use proptest::prelude::*;
use sim_core::{BinaryHeapQueue, EventQueue, SimTime};

/// One step of an interleaving: `kind` selects push flavor vs pop,
/// `raw` supplies the time offset entropy.
fn apply(ops: &[(u8, u64)]) {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
    let mut tag = 0u32;
    for &(kind, raw) in ops {
        let pop = kind >= 7 && !wheel.is_empty();
        if pop {
            prop_assert_eq!(wheel.pop(), heap.pop());
        } else {
            // Push flavors: same-instant ties, near-future (dominant in
            // FaaS traces), mid-range, and far-future overflow that
            // exercises the upper wheel levels.
            let dt = match kind % 7 {
                0 | 1 => 0,
                2..=4 => raw % (1 << 12),
                5 => raw % (1 << 30),
                _ => raw % (1 << 52),
            };
            let at = SimTime(wheel.now().0 + dt);
            wheel.push(at, tag);
            heap.push(at, tag);
            tag += 1;
        }
        prop_assert_eq!(wheel.len(), heap.len());
        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
    }
    // Drain both to the end: the full pop order must agree.
    loop {
        let (a, b) = (wheel.pop(), heap.pop());
        prop_assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    prop_assert_eq!(wheel.now(), heap.now());
}

proptest! {
    #[test]
    fn wheel_pops_in_reference_heap_order(
        ops in proptest::collection::vec((0u8..10, 0u64..u64::MAX), 0..500)
    ) {
        apply(&ops);
    }

    // Batch pops are the sequential order, chunked by instant:
    // flattening the batches of `pop_batch` reproduces the reference
    // pop order, and every batch holds exactly the events of one
    // timestamp.
    #[test]
    fn batch_pops_flatten_to_reference_order(
        ops in proptest::collection::vec((0u8..6, 0u64..u64::MAX), 0..300)
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        for (i, &(kind, raw)) in ops.iter().enumerate() {
            let dt = match kind % 6 {
                0 | 1 => 0,
                2 | 3 => raw % (1 << 10),
                4 => raw % (1 << 26),
                _ => raw % (1 << 52),
            };
            let at = SimTime(wheel.now().0 + dt);
            wheel.push(at, i as u32);
            heap.push(at, i as u32);
        }
        let mut batch = Vec::new();
        while let Some(t) = wheel.pop_batch(&mut batch) {
            for &tagged in &batch {
                prop_assert_eq!(heap.pop(), Some((t, tagged)));
            }
            // The next pending event (if any) is strictly later.
            if let Some(next) = heap.peek_time() {
                prop_assert!(next > t);
            }
            batch.clear();
        }
        prop_assert!(heap.pop().is_none());
    }
}
