//! Free page reporting (virtio-balloon `VIRTIO_BALLOON_F_REPORTING`).
//!
//! The modern alternative to inflation that the paper cites among the
//! state-of-practice interfaces \[21\]: the guest periodically scans its
//! buddy free lists for chunks of at least the reporting order
//! (2 MiB by default), queues them to the host in bounded
//! scatter-gather requests, and the host `madvise`s the ranges away.
//! A chunk needs reporting only while its range still has host backing
//! (the kernel's `PageReported` flag plays this role), so an idle guest
//! converges to zero reporting work; reallocating, touching and
//! re-freeing a chunk makes it reportable again.
//!
//! Contrast with the paper's approaches: reporting reclaims *backing*
//! without shrinking the VM (capacity stays plugged), only finds
//! free memory that is contiguous at the reporting order (fragmented
//! frees are invisible), and is asynchronous — convergence takes
//! reporting cycles, not one synchronous operation.

use guest_mm::GuestMm;
use mem_types::{Gfn, PAGE_SIZE};
use sim_core::{CostModel, LatencyBreakdown, SimDuration};

/// Default reporting order: 2 MiB chunks (`pageblock_order`-ish).
pub const DEFAULT_REPORT_ORDER: u8 = 9;

/// Report of one reporting cycle.
#[derive(Clone, Debug, Default)]
pub struct ReportingCycle {
    /// Chunks newly reported this cycle `(head, order)`.
    pub chunks: Vec<(Gfn, u8)>,
    /// Report requests sent (one VM exit each).
    pub requests: u64,
    /// Latency in the usual buckets (scan in `rest`, host handling in
    /// `vmexits`).
    pub breakdown: LatencyBreakdown,
    /// Guest CPU consumed by the scan/isolate/return work.
    pub guest_cpu: SimDuration,
    /// Host CPU consumed serving the report requests.
    pub host_cpu: SimDuration,
}

impl ReportingCycle {
    /// Bytes newly reported this cycle.
    pub fn bytes(&self) -> u64 {
        self.chunks
            .iter()
            .map(|&(_, o)| (1u64 << o) * PAGE_SIZE)
            .sum()
    }

    /// Total wall latency of the cycle when run unconstrained.
    pub fn latency(&self) -> SimDuration {
        self.breakdown.total()
    }
}

/// Cumulative reporting statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReportingStats {
    /// Chunks ever reported.
    pub chunks_reported: u64,
    /// Bytes ever reported.
    pub bytes_reported: u64,
    /// Report requests (VM exits) ever sent.
    pub requests: u64,
    /// Cycles that found nothing new (the idle steady state).
    pub idle_cycles: u64,
}

/// The guest free-page-reporting worker.
pub struct FreePageReporter {
    /// Minimum chunk order worth reporting.
    order: u8,
    stats: ReportingStats,
}

impl FreePageReporter {
    /// Creates a reporter for chunks of at least `order`.
    pub fn new(order: u8) -> Self {
        FreePageReporter {
            order,
            stats: ReportingStats::default(),
        }
    }

    /// Returns the reporting order.
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Returns the statistics.
    pub fn stats(&self) -> &ReportingStats {
        &self.stats
    }

    /// Runs one reporting cycle: scans the buddy for free chunks that
    /// still `need_report` (their range has host backing) and reports
    /// them. Chunks whose backing is already gone are skipped, which is
    /// how the worker converges on an idle guest.
    pub fn cycle(
        &mut self,
        guest: &GuestMm,
        mut needs_report: impl FnMut(Gfn, u8) -> bool,
        cost: &CostModel,
    ) -> ReportingCycle {
        let fresh: Vec<(Gfn, u8)> = guest
            .free_chunks(self.order)
            .into_iter()
            .filter(|&(g, o)| needs_report(g, o))
            .collect();
        let mut cycle = ReportingCycle {
            requests: (fresh.len() as u64).div_ceil(cost.fpr_ranges_per_report),
            ..ReportingCycle::default()
        };
        // Guest work: isolate, queue and return each chunk.
        let scan = SimDuration::nanos(cost.fpr_chunk_ns * fresh.len() as u64);
        cycle.breakdown.rest += scan;
        cycle.guest_cpu += scan;
        // Host work: one exit per request plus a madvise per chunk.
        let mut host = SimDuration::nanos(cost.vmexit_ns * cycle.requests);
        for &(_, o) in &fresh {
            host += cost.madvise((1u64 << o) * PAGE_SIZE);
        }
        cycle.breakdown.vmexits += host;
        cycle.host_cpu += host;

        self.stats.chunks_reported += fresh.len() as u64;
        self.stats.requests += cycle.requests;
        cycle.chunks = fresh;
        self.stats.bytes_reported += cycle.bytes();
        if cycle.chunks.is_empty() {
            self.stats.idle_cycles += 1;
        }
        cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::{AllocPolicy, GuestMmConfig};
    use mem_types::MIB;
    use std::collections::HashSet;

    fn guest() -> GuestMm {
        GuestMm::new(GuestMmConfig {
            boot_bytes: 512 * MIB,
            hotplug_bytes: 128 * MIB,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        })
    }

    /// A miniature EPT for the unit tests: every frame starts backed;
    /// reported ranges lose their backing.
    struct Backing(HashSet<u64>);

    impl Backing {
        fn all(frames: u64) -> Backing {
            Backing((0..frames).collect())
        }

        fn needs_report(&self, g: Gfn, o: u8) -> bool {
            (g.0..g.0 + (1 << o)).any(|f| self.0.contains(&f))
        }

        fn apply(&mut self, cycle: &ReportingCycle) {
            for &(g, o) in &cycle.chunks {
                for f in g.0..g.0 + (1 << o) {
                    self.0.remove(&f);
                }
            }
        }
    }

    #[test]
    fn first_cycle_reports_free_memory_then_idles() {
        let g = guest();
        let mut fpr = FreePageReporter::new(DEFAULT_REPORT_ORDER);
        let cost = CostModel::default();
        let mut ept = Backing::all(g.memmap().len());
        let c1 = fpr.cycle(&g, |h, o| ept.needs_report(h, o), &cost);
        // Most of the 480 MiB of free boot memory is 2 MiB-contiguous.
        assert!(c1.bytes() > 400 * MIB, "reported {} MiB", c1.bytes() / MIB);
        assert!(c1.requests > 0);
        assert!(c1.latency() > SimDuration::ZERO);
        ept.apply(&c1);
        // Nothing changed: the next cycle is free of charge.
        let c2 = fpr.cycle(&g, |h, o| ept.needs_report(h, o), &cost);
        assert_eq!(c2.bytes(), 0);
        assert_eq!(c2.requests, 0);
        assert_eq!(fpr.stats().idle_cycles, 1);
    }

    #[test]
    fn alloc_free_makes_chunks_reportable_again() {
        let mut g = guest();
        let mut fpr = FreePageReporter::new(DEFAULT_REPORT_ORDER);
        let cost = CostModel::default();
        let mut ept = Backing::all(g.memmap().len());
        let c = fpr.cycle(&g, |h, o| ept.needs_report(h, o), &cost);
        ept.apply(&c);
        // A process uses 64 MiB (touching re-backs the frames) and exits.
        let pid = g.spawn_process(AllocPolicy::MovableDefault);
        let got = g.fault_anon(pid, 64 * MIB / 4096).unwrap();
        for f in &got {
            ept.0.insert(f.0);
        }
        let mid = fpr.cycle(&g, |h, o| ept.needs_report(h, o), &cost);
        assert_eq!(mid.bytes(), 0, "used memory is not reportable");
        g.exit_process(pid).unwrap();
        let after = fpr.cycle(&g, |h, o| ept.needs_report(h, o), &cost);
        assert!(
            after.bytes() >= 64 * MIB,
            "freed chunks re-reported: {} MiB",
            after.bytes() / MIB
        );
    }

    #[test]
    fn fragmented_frees_are_invisible() {
        let mut g = guest();
        let mut fpr = FreePageReporter::new(DEFAULT_REPORT_ORDER);
        let cost = CostModel::default();
        // Fill everything, then punch single-page holes: lots of free
        // memory, none of it 2 MiB-contiguous.
        let pid = g.spawn_process(AllocPolicy::MovableDefault);
        let free = g.free_bytes() / 4096;
        g.fault_anon(pid, free).unwrap();
        let held: Vec<_> = g.process(pid).unwrap().pages.clone();
        for gfn in held.iter().filter(|p| p.0 % 2 == 0) {
            g.free_anon_page(pid, *gfn).unwrap();
        }
        assert!(g.free_bytes() > 200 * MIB, "plenty is free");
        let c = fpr.cycle(&g, |_, _| true, &cost);
        assert_eq!(
            c.bytes(),
            0,
            "reporting cannot see sub-order frees — the coverage gap \
             Squeezy's whole-partition reclaim does not have"
        );
    }

    #[test]
    fn report_requests_are_batched() {
        let g = guest();
        let mut fpr = FreePageReporter::new(DEFAULT_REPORT_ORDER);
        let cost = CostModel::default();
        let c = fpr.cycle(&g, |_, _| true, &cost);
        assert!(
            c.requests <= c.chunks.len() as u64 / cost.fpr_ranges_per_report + 1,
            "{} requests for {} chunks",
            c.requests,
            c.chunks.len()
        );
        assert_eq!(
            fpr.stats().bytes_reported,
            c.bytes(),
            "stats track the cycle"
        );
    }
}
