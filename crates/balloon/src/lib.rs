//! A virtio-balloon driver model.
//!
//! Ballooning is the state-of-practice VM memory elasticity interface the
//! paper baselines against (§2.2): a guest driver allocates (inflates)
//! guest pages and reports their frame numbers to the hypervisor, which
//! releases them to the host. The interface works at *page granularity* —
//! pfns travel in 256-entry descriptor arrays, and the host releases each
//! page individually — which is why serving VM exits dominates its
//! latency (81 % on average in Figure 5).
//!
//! Inflated pages are pinned, unmovable allocations: they fragment the
//! guest and pin memory blocks, one of the documented pathologies of
//! ballooning [21, 30, 47].

pub mod reporting;

use guest_mm::{GuestMm, MmError};
use mem_types::{Gfn, PAGE_SIZE};
use sim_core::{CostModel, LatencyBreakdown, SimDuration};

pub use reporting::{FreePageReporter, ReportingCycle, ReportingStats, DEFAULT_REPORT_ORDER};

/// Report of an inflate or deflate operation.
#[derive(Clone, Debug, Default)]
pub struct BalloonReport {
    /// Pages moved into (inflate) or out of (deflate) the balloon.
    pub pages: u64,
    /// Latency in Figure-5 buckets: host-side per-page release is charged
    /// to `vmexits` (the paper's attribution), guest allocation to `rest`.
    pub breakdown: LatencyBreakdown,
    /// Guest-side CPU time (driver thread allocating and queueing pfns).
    pub guest_cpu: SimDuration,
    /// Host-side CPU time (exit handling, per-page release).
    pub host_cpu: SimDuration,
    /// VM exits taken (one per pfn descriptor array).
    pub exits: u64,
}

impl BalloonReport {
    /// Bytes covered by this operation.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// Total wall latency when run unconstrained.
    pub fn latency(&self) -> SimDuration {
        self.breakdown.total()
    }
}

/// Cumulative balloon statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BalloonStats {
    /// Total pages ever inflated.
    pub inflated_pages: u64,
    /// Total pages ever deflated.
    pub deflated_pages: u64,
    /// Total VM exits taken.
    pub exits: u64,
}

/// The guest balloon driver.
pub struct BalloonDevice {
    /// Pages currently held by the balloon (released to the host).
    held: Vec<Gfn>,
    stats: BalloonStats,
}

impl Default for BalloonDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl BalloonDevice {
    /// Creates an empty (deflated) balloon.
    pub fn new() -> Self {
        BalloonDevice {
            held: Vec::new(),
            stats: BalloonStats::default(),
        }
    }

    /// Returns the ballooned size in bytes.
    pub fn held_bytes(&self) -> u64 {
        self.held.len() as u64 * PAGE_SIZE
    }

    /// Returns the pages currently held (host has released their backing).
    pub fn held_pages(&self) -> &[Gfn] {
        &self.held
    }

    /// Returns the statistics.
    pub fn stats(&self) -> &BalloonStats {
        &self.stats
    }

    /// Inflates the balloon by `bytes` (page-aligned): allocates guest
    /// pages and reports them to the host for release.
    ///
    /// On partial allocation failure the balloon keeps what it got and
    /// returns `Ok` with the smaller page count — real balloon drivers
    /// simply stop inflating when the guest runs dry.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not page-aligned.
    pub fn inflate(
        &mut self,
        guest: &mut GuestMm,
        bytes: u64,
        cost: &CostModel,
    ) -> Result<BalloonReport, MmError> {
        let want = mem_types::bytes_to_pages(bytes);
        let mut report = BalloonReport::default();
        for _ in 0..want {
            match guest.alloc_unmovable() {
                Ok(g) => {
                    self.held.push(g);
                    report.pages += 1;
                }
                Err(MmError::OutOfMemory) => break,
                Err(e) => return Err(e),
            }
        }
        // Guest driver work: allocate + queue each pfn.
        let guest_work = SimDuration::nanos(cost.balloon_guest_page_ns * report.pages);
        report.breakdown.rest += guest_work;
        report.guest_cpu += guest_work;
        // One exit per full descriptor array; host releases each page.
        report.exits = report.pages.div_ceil(cost.balloon_pages_per_desc);
        let exit_time = SimDuration::nanos(
            cost.vmexit_ns * report.exits + cost.balloon_host_page_ns * report.pages,
        );
        report.breakdown.vmexits += exit_time;
        report.host_cpu += exit_time;
        self.stats.inflated_pages += report.pages;
        self.stats.exits += report.exits;
        Ok(report)
    }

    /// Deflates the balloon by `bytes` (page-aligned), returning pages to
    /// the guest. The host re-populates backing lazily on next touch.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not page-aligned.
    pub fn deflate(&mut self, guest: &mut GuestMm, bytes: u64, cost: &CostModel) -> BalloonReport {
        let want = mem_types::bytes_to_pages(bytes).min(self.held.len() as u64);
        let mut report = BalloonReport {
            pages: want,
            ..BalloonReport::default()
        };
        for _ in 0..want {
            let g = self.held.pop().expect("count checked");
            guest.free_unmovable(g);
        }
        let guest_work = SimDuration::nanos(cost.balloon_guest_page_ns * want / 2);
        report.breakdown.rest += guest_work;
        report.guest_cpu += guest_work;
        report.exits = want.div_ceil(cost.balloon_pages_per_desc);
        let exit_time = SimDuration::nanos(cost.vmexit_ns * report.exits);
        report.breakdown.vmexits += exit_time;
        report.host_cpu += exit_time;
        self.stats.deflated_pages += want;
        self.stats.exits += report.exits;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::GuestMmConfig;
    use mem_types::MIB;

    fn guest() -> GuestMm {
        GuestMm::new(GuestMmConfig {
            boot_bytes: 512 * MIB,
            hotplug_bytes: 128 * MIB,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        })
    }

    #[test]
    fn inflate_reclaims_guest_memory() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        let free0 = g.free_bytes();
        let r = b.inflate(&mut g, 128 * MIB, &cost).unwrap();
        assert_eq!(r.pages, 128 * MIB / PAGE_SIZE);
        assert_eq!(b.held_bytes(), 128 * MIB);
        assert_eq!(g.free_bytes(), free0 - 128 * MIB);
        assert!(r.exits > 0);
        g.assert_consistent();
    }

    #[test]
    fn vmexits_dominate_inflate_latency() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        let r = b.inflate(&mut g, 256 * MIB, &cost).unwrap();
        let f = r.breakdown.fractions();
        // Paper: 81 % of balloon latency is serving VM exits.
        assert!(
            f[2] > 0.7 && f[2] < 0.9,
            "vmexit fraction {:.2} outside expected band",
            f[2]
        );
    }

    #[test]
    fn deflate_returns_pages() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        b.inflate(&mut g, 64 * MIB, &cost).unwrap();
        let free_after_inflate = g.free_bytes();
        let r = b.deflate(&mut g, 32 * MIB, &cost);
        assert_eq!(r.pages, 32 * MIB / PAGE_SIZE);
        assert_eq!(b.held_bytes(), 32 * MIB);
        assert_eq!(g.free_bytes(), free_after_inflate + 32 * MIB);
        g.assert_consistent();
    }

    #[test]
    fn deflate_caps_at_held_size() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        b.inflate(&mut g, 16 * MIB, &cost).unwrap();
        let r = b.deflate(&mut g, 64 * MIB, &cost);
        assert_eq!(r.bytes(), 16 * MIB);
        assert_eq!(b.held_bytes(), 0);
    }

    #[test]
    fn inflate_stops_at_guest_exhaustion() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        // Ask for more than the guest has.
        let r = b.inflate(&mut g, 1024 * MIB, &cost).unwrap();
        assert!(r.bytes() < 1024 * MIB);
        assert_eq!(g.free_bytes(), 0);
        g.assert_consistent();
    }

    #[test]
    fn inflated_pages_pin_blocks() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        b.inflate(&mut g, 64 * MIB, &cost).unwrap();
        // Some block now holds unmovable balloon pages.
        let pinned = (0..g.blocks().len())
            .map(mem_types::BlockId)
            .filter(|&blk| g.blocks().counters(blk).used_unmovable > 0)
            .count();
        assert!(pinned > 0, "balloon pages pin at least one block");
    }

    #[test]
    fn stats_accumulate() {
        let mut g = guest();
        let mut b = BalloonDevice::new();
        let cost = CostModel::default();
        b.inflate(&mut g, 32 * MIB, &cost).unwrap();
        b.deflate(&mut g, 32 * MIB, &cost);
        assert_eq!(b.stats().inflated_pages, 32 * MIB / PAGE_SIZE);
        assert_eq!(b.stats().deflated_pages, 32 * MIB / PAGE_SIZE);
        assert!(b.stats().exits >= 2);
    }
}
