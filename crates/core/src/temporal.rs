//! Temporal segregation of invocation memory (§7, FaaSMem \[78\]).
//!
//! FaaSMem observes that a function instance's footprint splits in two:
//! long-lived *base* memory (runtime, loaded modules) that persists
//! across invocations, and *ephemeral* memory allocated during one
//! invocation and garbage immediately after. The paper's §7 proposes
//! integrating that temporal split with Squeezy partitions, "extend\[ing\]
//! the Squeezy VM reclamation benefits to function invocations as well
//! as function instance creations and evictions".
//!
//! [`TemporalInstance`] implements the split over two
//! [flex partitions](crate::FlexManager):
//!
//! * a **persistent** partition holding the instance's base memory for
//!   its whole lifetime;
//! * an **ephemeral** partition plugged at invocation start
//!   ([`TemporalInstance::begin_invocation`]) and drained + instantly
//!   unplugged at invocation end ([`TemporalInstance::end_invocation`]).
//!
//! Between invocations the instance holds only its base memory — the
//! host gets the ephemeral blocks back within the usual migration-free
//! instant path, at *invocation* granularity rather than instance
//! granularity.

use guest_mm::{AllocPolicy, Pid};
use mem_types::Gfn;
use sim_core::CostModel;
use virtio_mem::{PlugReport, UnplugReport};
use vmm::{HostMemory, Vm};

use crate::flex::FlexManager;
use crate::partition::PartitionId;
use crate::SqueezyError;

/// One instance with temporally segregated memory.
#[derive(Clone, Copy, Debug)]
pub struct TemporalInstance {
    /// The instance's process.
    pub pid: Pid,
    /// Partition holding cross-invocation base memory.
    pub persistent: PartitionId,
    /// Partition holding per-invocation scratch memory.
    pub ephemeral: PartitionId,
    /// Whether an invocation is currently running.
    in_invocation: bool,
}

impl TemporalInstance {
    /// Creates a temporally segregated instance: a fully plugged
    /// persistent partition of `base_bytes` and an (initially empty)
    /// ephemeral partition rated at `scratch_bytes`. The process is
    /// bound to the persistent partition for its base allocations.
    pub fn create(
        flex: &mut FlexManager,
        vm: &mut Vm,
        pid: Pid,
        base_bytes: u64,
        scratch_bytes: u64,
        cost: &CostModel,
    ) -> Result<(TemporalInstance, PlugReport), SqueezyError> {
        let (persistent, plug) = flex.create(vm, base_bytes, base_bytes, cost)?;
        let (ephemeral, _) = match flex.create(vm, scratch_bytes, 0, cost) {
            Ok(x) => x,
            Err(e) => {
                flex.destroy(vm, &mut HostMemory::new(0), persistent, cost)
                    .ok();
                return Err(e);
            }
        };
        flex.attach(vm, persistent, pid)?;
        Ok((
            TemporalInstance {
                pid,
                persistent,
                ephemeral,
                in_invocation: false,
            },
            plug,
        ))
    }

    /// Starts an invocation: plugs the ephemeral partition (if needed)
    /// and redirects the process's faults into it. Base memory faulted
    /// so far stays in the persistent partition.
    pub fn begin_invocation(
        &mut self,
        flex: &mut FlexManager,
        vm: &mut Vm,
        cost: &CostModel,
    ) -> Result<Option<PlugReport>, SqueezyError> {
        debug_assert!(!self.in_invocation, "invocations do not nest");
        let part = flex
            .partition(self.ephemeral)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        let missing = part.rated_bytes() - part.plugged_bytes();
        let report = if missing > 0 {
            Some(flex.grow(vm, self.ephemeral, missing, cost)?)
        } else {
            None
        };
        let zone = flex.partition(self.ephemeral).expect("just grown").zone;
        vm.guest
            .set_policy(self.pid, AllocPolicy::PinnedZone(zone))?;
        self.in_invocation = true;
        Ok(report)
    }

    /// Ends an invocation: frees every ephemeral page the invocation
    /// faulted, rebinds the process to its persistent partition, and
    /// instantly unplugs the drained ephemeral blocks.
    pub fn end_invocation(
        &mut self,
        flex: &mut FlexManager,
        vm: &mut Vm,
        host: &mut HostMemory,
        cost: &CostModel,
    ) -> Result<Option<UnplugReport>, SqueezyError> {
        debug_assert!(self.in_invocation, "no invocation in progress");
        let eph_zone = flex
            .partition(self.ephemeral)
            .ok_or(SqueezyError::NoReclaimablePartition)?
            .zone;
        // Drop the invocation's scratch: every page of the process that
        // lives in the ephemeral zone.
        let scratch: Vec<Gfn> = vm
            .guest
            .process(self.pid)
            .ok_or(SqueezyError::NotAttached)?
            .pages
            .iter()
            .copied()
            .filter(|&g| vm.guest.memmap().page(g).zone == eph_zone)
            .collect();
        for g in scratch {
            vm.guest.free_anon_page(self.pid, g)?;
        }
        // Faults go back to base memory between invocations.
        let pers_zone = flex
            .partition(self.persistent)
            .expect("persistent partition lives as long as the instance")
            .zone;
        vm.guest
            .set_policy(self.pid, AllocPolicy::PinnedZone(pers_zone))?;
        self.in_invocation = false;
        // Give the drained blocks back to the host, instantly.
        flex.shrink_to_fit(vm, host, self.ephemeral, cost)
    }

    /// Tears the instance down after its process exited: detaches and
    /// destroys both partitions.
    pub fn destroy(
        self,
        flex: &mut FlexManager,
        vm: &mut Vm,
        host: &mut HostMemory,
        cost: &CostModel,
    ) -> Result<UnplugReport, SqueezyError> {
        flex.detach(self.pid)?;
        flex.destroy(vm, host, self.ephemeral, cost)?;
        flex.destroy(vm, host, self.persistent, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::GuestMmConfig;
    use mem_types::{GIB, MIB, PAGE_SIZE};
    use vmm::VmConfig;

    fn setup() -> (Vm, HostMemory, FlexManager, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: 4 * GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 4.0,
            },
            &mut host,
        )
        .unwrap();
        let flex = FlexManager::install(&mut vm);
        (vm, host, flex, cost)
    }

    fn instance(vm: &mut Vm, flex: &mut FlexManager, cost: &CostModel) -> (TemporalInstance, Pid) {
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let (inst, _) =
            TemporalInstance::create(flex, vm, pid, 256 * MIB, 256 * MIB, cost).unwrap();
        (inst, pid)
    }

    #[test]
    fn invocation_scratch_reclaimed_between_invocations() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (mut inst, pid) = instance(&mut vm, &mut flex, &cost);
        // Base memory: persists across invocations.
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        let base_rss = vm.host_rss();

        for round in 0..3 {
            inst.begin_invocation(&mut flex, &mut vm, &cost).unwrap();
            vm.touch_anon(&mut host, pid, 20_000, &cost).unwrap();
            assert_eq!(
                vm.guest.process(pid).unwrap().rss_pages(),
                10_000 + 20_000,
                "round {round}: base + scratch resident during invocation"
            );
            let report = inst
                .end_invocation(&mut flex, &mut vm, &mut host, &cost)
                .unwrap()
                .expect("scratch blocks drained");
            assert_eq!(report.outcome.migrated, 0, "instant path");
            // Between invocations: only base memory resident, scratch
            // backing returned to the host.
            assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), 10_000);
            assert_eq!(vm.host_rss(), base_rss, "round {round}");
        }
        vm.guest.assert_consistent();
    }

    #[test]
    fn base_memory_survives_invocations() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (mut inst, pid) = instance(&mut vm, &mut flex, &cost);
        vm.touch_anon(&mut host, pid, 5000, &cost).unwrap();
        inst.begin_invocation(&mut flex, &mut vm, &cost).unwrap();
        vm.touch_anon(&mut host, pid, 8000, &cost).unwrap();
        // Base pages live in the persistent zone, scratch in ephemeral.
        let pers_zone = flex.partition(inst.persistent).unwrap().zone;
        let eph_zone = flex.partition(inst.ephemeral).unwrap().zone;
        assert_eq!(vm.guest.zone(pers_zone).used_pages(), 5000);
        assert_eq!(vm.guest.zone(eph_zone).used_pages(), 8000);
        inst.end_invocation(&mut flex, &mut vm, &mut host, &cost)
            .unwrap();
        assert_eq!(vm.guest.zone(pers_zone).used_pages(), 5000);
        assert_eq!(vm.guest.zone(eph_zone).used_pages(), 0);
    }

    #[test]
    fn scratch_overflow_cannot_spill_into_base() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (mut inst, pid) = instance(&mut vm, &mut flex, &cost);
        inst.begin_invocation(&mut flex, &mut vm, &cost).unwrap();
        // 256 MiB scratch = 65536 pages; ask for more.
        let r = vm.touch_anon(&mut host, pid, 256 * MIB / PAGE_SIZE + 1, &cost);
        assert!(r.is_err(), "scratch overflow contained");
        let pers_zone = flex.partition(inst.persistent).unwrap().zone;
        assert_eq!(
            vm.guest.zone(pers_zone).used_pages(),
            0,
            "no spill into the persistent partition"
        );
    }

    #[test]
    fn repeated_cycles_do_not_leak() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (mut inst, pid) = instance(&mut vm, &mut flex, &cost);
        vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        let mut idle_rss = None;
        for _ in 0..10 {
            inst.begin_invocation(&mut flex, &mut vm, &cost).unwrap();
            vm.touch_anon(&mut host, pid, 30_000, &cost).unwrap();
            inst.end_invocation(&mut flex, &mut vm, &mut host, &cost)
                .unwrap();
            match idle_rss {
                None => idle_rss = Some(vm.host_rss()),
                Some(r) => assert_eq!(vm.host_rss(), r, "idle footprint stable"),
            }
        }
        vm.guest.assert_consistent();
    }

    #[test]
    fn destroy_returns_everything() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (mut inst, pid) = instance(&mut vm, &mut flex, &cost);
        vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        inst.begin_invocation(&mut flex, &mut vm, &cost).unwrap();
        vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        inst.end_invocation(&mut flex, &mut vm, &mut host, &cost)
            .unwrap();
        vm.guest.exit_process(pid).unwrap();
        inst.destroy(&mut flex, &mut vm, &mut host, &cost).unwrap();
        assert_eq!(flex.partition_count(), 0);
        // The whole region is reusable again.
        let blocks = flex.largest_free_blocks();
        assert_eq!(blocks, 4 * GIB / mem_types::MEM_BLOCK_SIZE);
    }
}
