//! Squeezy partitions: fixed-size, per-instance chunks of guest memory.
//!
//! A partition is the unit of Squeezy's elasticity (§3): it is sized to
//! the function's user-defined memory limit, implemented as a dedicated
//! zone, populated by plug events and reclaimed whole — with zero page
//! migrations — when its instance terminates.

use mem_types::BlockId;

/// Identifier of a Squeezy partition within one VM.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PartitionId(pub u32);

/// Lifecycle state of a partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionState {
    /// Created at boot but not backed: its blocks are unplugged and its
    /// zone holds no pages ("The N Squeezy partitions are initially
    /// empty", §4.1).
    Unpopulated,
    /// Populated by a plug event and waiting for an instance.
    Free,
    /// Assigned to one or more processes (`users` tracks them).
    Assigned,
    /// Assigned but designated *soft* by an idle keep-alive instance
    /// (§7): the hypervisor may revoke it under memory pressure, and the
    /// instance rebuilds its state on the next invocation.
    Soft,
    /// Revoked while soft: unplugged, but still attached to its
    /// processes, which must re-plug before touching memory again.
    Revoked,
}

/// One Squeezy partition.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Partition id (stable, assigned at boot).
    pub id: PartitionId,
    /// The guest zone implementing this partition.
    pub zone: u8,
    /// The 128 MiB blocks spanning the partition.
    pub blocks: Vec<BlockId>,
    /// Lifecycle state.
    pub state: PartitionState,
    /// `partition_users` refcount: number of processes (original process
    /// plus `fork()` children) attached (§4.1 "Handling fork()").
    pub users: u32,
}

impl Partition {
    /// Returns the partition size in bytes.
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * mem_types::MEM_BLOCK_SIZE
    }

    /// Returns `true` if the partition is populated (plugged).
    pub fn is_populated(&self) -> bool {
        !matches!(
            self.state,
            PartitionState::Unpopulated | PartitionState::Revoked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_size_follows_blocks() {
        let p = Partition {
            id: PartitionId(0),
            zone: 3,
            blocks: vec![BlockId(10), BlockId(11), BlockId(12)],
            state: PartitionState::Unpopulated,
            users: 0,
        };
        assert_eq!(p.bytes(), 3 * mem_types::MEM_BLOCK_SIZE);
        assert!(!p.is_populated());
    }
}
