//! Variable-sized, application-triggered partitions (§7 "Static
//! partitioning").
//!
//! The paper's static scheme sizes all N partitions identically at boot,
//! which fits FaaS (the user declares the function's memory limit) but
//! "for longer-running workloads, with less predictable memory
//! requirements, ... it would need to be extended, to allow for the
//! plugging and unplugging of variably-sized partitions. The trigger for
//! plugging and unplugging would also need to change and be controlled
//! by the application running inside the VM instead."
//!
//! [`FlexManager`] is that extension:
//!
//! * partitions are **created at runtime** with a per-partition *rated*
//!   (maximum) size — a reserved guest-physical span, not an allocation;
//! * the application **grows** its partition by plugging more blocks of
//!   the span and **shrinks** it by releasing whatever blocks have
//!   drained empty (`shrink_to_fit`), both on its own triggers;
//! * destroyed partitions return their span to a first-fit free list
//!   (adjacent spans merge) and recycle their zone slot, so create /
//!   destroy churn does not exhaust the guest zone table.
//!
//! Isolation and instant reclaim are preserved exactly as in the static
//! scheme: allocations never cross partitions, and every unplug is the
//! migration-free instant path.

use std::collections::HashMap;

use guest_mm::{AllocPolicy, Pid, ZoneKind};
use mem_types::{align_up_to_block, BlockId, FrameRange, MEM_BLOCK_SIZE, PAGES_PER_BLOCK};
use sim_core::CostModel;
use virtio_mem::{PlugReport, UnplugReport};
use vmm::{HostMemory, Vm};

use crate::partition::PartitionId;
use crate::SqueezyError;

/// One variable-sized partition.
#[derive(Clone, Debug)]
pub struct FlexPartition {
    /// Stable identifier.
    pub id: PartitionId,
    /// The guest zone implementing the partition.
    pub zone: u8,
    /// First block of the reserved span.
    pub start_block: u64,
    /// Reserved span length in blocks (the rated size).
    pub span_blocks: u64,
    /// Currently plugged blocks (populated subset of the span).
    pub plugged: Vec<BlockId>,
    /// Attached processes (`partition_users`).
    pub users: u32,
}

impl FlexPartition {
    /// Rated (maximum) size in bytes.
    pub fn rated_bytes(&self) -> u64 {
        self.span_blocks * MEM_BLOCK_SIZE
    }

    /// Currently plugged size in bytes.
    pub fn plugged_bytes(&self) -> u64 {
        self.plugged.len() as u64 * MEM_BLOCK_SIZE
    }
}

/// Cumulative flex-manager statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlexStats {
    /// Partitions created.
    pub creates: u64,
    /// Partitions destroyed.
    pub destroys: u64,
    /// Grow operations served.
    pub grows: u64,
    /// Shrink operations served.
    pub shrinks: u64,
    /// Blocks reclaimed by shrinks.
    pub shrunk_blocks: u64,
}

/// Manager for variable-sized application-triggered partitions.
pub struct FlexManager {
    /// First block of the managed (virtio-mem) region.
    region_start: u64,
    /// Free spans `(start_block, nblocks)`, sorted by start, coalesced.
    free_spans: Vec<(u64, u64)>,
    /// Live partitions by id.
    parts: HashMap<u32, FlexPartition>,
    /// Zone slots of destroyed partitions, ready for recycling.
    spare_zones: Vec<u8>,
    /// pid → partition for attached processes.
    attached: HashMap<u32, PartitionId>,
    next_id: u32,
    stats: FlexStats,
}

impl FlexManager {
    /// Installs a flex manager over a booted VM's whole virtio-mem
    /// region. Must not be combined with the static [`SqueezyManager`]
    /// (both would claim the same blocks).
    ///
    /// [`SqueezyManager`]: crate::SqueezyManager
    pub fn install(vm: &mut Vm) -> FlexManager {
        let region = vm.virtio_mem.region();
        let start = region.start.0 / PAGES_PER_BLOCK;
        let nblocks = region.count / PAGES_PER_BLOCK;
        vm.guest.unplug_aware_zeroing_skip = true;
        FlexManager {
            region_start: start,
            free_spans: vec![(start, nblocks)],
            parts: HashMap::new(),
            spare_zones: Vec::new(),
            attached: HashMap::new(),
            next_id: 0,
            stats: FlexStats::default(),
        }
    }

    // --- Accessors -------------------------------------------------------

    /// Returns the partition with `id`, if alive.
    pub fn partition(&self, id: PartitionId) -> Option<&FlexPartition> {
        self.parts.get(&id.0)
    }

    /// Returns the partition a process is attached to, if any.
    pub fn partition_of(&self, pid: Pid) -> Option<PartitionId> {
        self.attached.get(&pid.0).copied()
    }

    /// Returns the number of live partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &FlexStats {
        &self.stats
    }

    /// Returns the largest contiguous free span in blocks (what the
    /// biggest `create` could currently reserve).
    pub fn largest_free_blocks(&self) -> u64 {
        self.free_spans.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }

    // --- Lifecycle ---------------------------------------------------------

    /// Creates a partition rated at `rated_bytes` (rounded up to whole
    /// blocks), plugging an initial `initial_bytes` prefix. The span is
    /// reserved first-fit from the free list.
    pub fn create(
        &mut self,
        vm: &mut Vm,
        rated_bytes: u64,
        initial_bytes: u64,
        cost: &CostModel,
    ) -> Result<(PartitionId, PlugReport), SqueezyError> {
        let span_blocks = align_up_to_block(rated_bytes) / MEM_BLOCK_SIZE;
        let initial_blocks = align_up_to_block(initial_bytes) / MEM_BLOCK_SIZE;
        if span_blocks == 0 || initial_blocks > span_blocks {
            return Err(SqueezyError::RegionTooSmall);
        }
        let start = self
            .take_span(span_blocks)
            .ok_or(SqueezyError::RegionTooSmall)?;
        let id = PartitionId(self.next_id);
        self.next_id += 1;
        let span = FrameRange::new(BlockId(start).first_frame(), span_blocks * PAGES_PER_BLOCK);
        let kind = ZoneKind::SqueezyPrivate { partition: id.0 };
        let zone = match self.spare_zones.pop() {
            Some(z) => {
                vm.guest.retarget_zone(z, kind, span);
                z
            }
            None => vm.guest.create_zone(kind, span),
        };
        let blocks: Vec<BlockId> = (start..start + initial_blocks).map(BlockId).collect();
        let report = match vm
            .virtio_mem
            .plug_blocks(&mut vm.guest, &blocks, zone, cost)
        {
            Ok(r) => r,
            Err(e) => {
                self.spare_zones.push(zone);
                self.put_span(start, span_blocks);
                return Err(e.into());
            }
        };
        self.parts.insert(
            id.0,
            FlexPartition {
                id,
                zone,
                start_block: start,
                span_blocks,
                plugged: blocks,
                users: 0,
            },
        );
        self.stats.creates += 1;
        Ok((id, report))
    }

    /// Binds `pid`'s anonymous faults to partition `id`.
    pub fn attach(&mut self, vm: &mut Vm, id: PartitionId, pid: Pid) -> Result<(), SqueezyError> {
        if self.attached.contains_key(&pid.0) {
            return Err(SqueezyError::AlreadyAttached);
        }
        let part = self
            .parts
            .get_mut(&id.0)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        vm.guest
            .set_policy(pid, AllocPolicy::PinnedZone(part.zone))?;
        part.users += 1;
        self.attached.insert(pid.0, id);
        Ok(())
    }

    /// Detaches an exited process from its partition.
    pub fn detach(&mut self, pid: Pid) -> Result<PartitionId, SqueezyError> {
        let id = self
            .attached
            .remove(&pid.0)
            .ok_or(SqueezyError::NotAttached)?;
        let part = self
            .parts
            .get_mut(&id.0)
            .expect("attached to live partition");
        debug_assert!(part.users > 0);
        part.users -= 1;
        Ok(id)
    }

    /// Application-triggered growth: plugs up to `bytes` more of the
    /// partition's reserved span. Fails with
    /// [`SqueezyError::RatedSizeExceeded`] when the span is exhausted.
    pub fn grow(
        &mut self,
        vm: &mut Vm,
        id: PartitionId,
        bytes: u64,
        cost: &CostModel,
    ) -> Result<PlugReport, SqueezyError> {
        let part = self
            .parts
            .get_mut(&id.0)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        let want = align_up_to_block(bytes) / MEM_BLOCK_SIZE;
        // Candidate blocks: span members not currently plugged.
        let plugged: std::collections::HashSet<u64> = part.plugged.iter().map(|b| b.0).collect();
        let fresh: Vec<BlockId> = (part.start_block..part.start_block + part.span_blocks)
            .filter(|b| !plugged.contains(b))
            .take(want as usize)
            .map(BlockId)
            .collect();
        if (fresh.len() as u64) < want {
            return Err(SqueezyError::RatedSizeExceeded);
        }
        let zone = part.zone;
        let report = vm
            .virtio_mem
            .plug_blocks(&mut vm.guest, &fresh, zone, cost)?;
        self.parts
            .get_mut(&id.0)
            .expect("still live")
            .plugged
            .extend(fresh);
        self.stats.grows += 1;
        Ok(report)
    }

    /// Application-triggered shrink: instantly unplugs every plugged
    /// block of the partition that has drained empty. Returns `None`
    /// when nothing was reclaimable.
    pub fn shrink_to_fit(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        id: PartitionId,
        cost: &CostModel,
    ) -> Result<Option<UnplugReport>, SqueezyError> {
        let part = self
            .parts
            .get(&id.0)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        let empty: Vec<BlockId> = part
            .plugged
            .iter()
            .copied()
            .filter(|&b| {
                let c = vm.guest.blocks().counters(b);
                c.used_movable == 0 && c.used_unmovable == 0
            })
            .collect();
        if empty.is_empty() {
            return Ok(None);
        }
        let report = vm.unplug_blocks_instant(host, &empty, cost)?;
        let removed: std::collections::HashSet<u64> = empty.iter().map(|b| b.0).collect();
        let part = self.parts.get_mut(&id.0).expect("still live");
        part.plugged.retain(|b| !removed.contains(&b.0));
        self.stats.shrinks += 1;
        self.stats.shrunk_blocks += empty.len() as u64;
        Ok(Some(report))
    }

    /// Destroys a partition with no attached processes: instantly
    /// unplugs whatever is still plugged and returns the span (and zone
    /// slot) for reuse.
    pub fn destroy(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        id: PartitionId,
        cost: &CostModel,
    ) -> Result<UnplugReport, SqueezyError> {
        let part = self
            .parts
            .get(&id.0)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        if part.users > 0 {
            return Err(SqueezyError::PartitionBusy);
        }
        let blocks = part.plugged.clone();
        let report = if blocks.is_empty() {
            UnplugReport::default()
        } else {
            vm.unplug_blocks_instant(host, &blocks, cost)?
        };
        let part = self.parts.remove(&id.0).expect("checked above");
        self.spare_zones.push(part.zone);
        self.put_span(part.start_block, part.span_blocks);
        self.stats.destroys += 1;
        Ok(report)
    }

    // --- Span free-list internals ------------------------------------------

    /// First-fit span reservation.
    fn take_span(&mut self, nblocks: u64) -> Option<u64> {
        let idx = self
            .free_spans
            .iter()
            .position(|&(_, len)| len >= nblocks)?;
        let (start, len) = self.free_spans[idx];
        if len == nblocks {
            self.free_spans.remove(idx);
        } else {
            self.free_spans[idx] = (start + nblocks, len - nblocks);
        }
        Some(start)
    }

    /// Returns a span to the free list, merging with neighbours.
    fn put_span(&mut self, start: u64, nblocks: u64) {
        debug_assert!(start >= self.region_start);
        let pos = self.free_spans.partition_point(|&(s, _)| s < start);
        self.free_spans.insert(pos, (start, nblocks));
        // Merge with the next span.
        if pos + 1 < self.free_spans.len() {
            let (s, n) = self.free_spans[pos];
            let (s2, n2) = self.free_spans[pos + 1];
            debug_assert!(s + n <= s2, "overlapping free spans");
            if s + n == s2 {
                self.free_spans[pos] = (s, n + n2);
                self.free_spans.remove(pos + 1);
            }
        }
        // Merge with the previous span.
        if pos > 0 {
            let (s0, n0) = self.free_spans[pos - 1];
            let (s, n) = self.free_spans[pos];
            debug_assert!(s0 + n0 <= s, "overlapping free spans");
            if s0 + n0 == s {
                self.free_spans[pos - 1] = (s0, n0 + n);
                self.free_spans.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::GuestMmConfig;
    use mem_types::{GIB, MIB};
    use vmm::VmConfig;

    fn setup() -> (Vm, HostMemory, FlexManager, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: 4 * GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 4.0,
            },
            &mut host,
        )
        .unwrap();
        let flex = FlexManager::install(&mut vm);
        (vm, host, flex, cost)
    }

    #[test]
    fn create_plugs_initial_prefix_only() {
        let (mut vm, _host, mut flex, cost) = setup();
        let (id, plug) = flex.create(&mut vm, 1024 * MIB, 256 * MIB, &cost).unwrap();
        let p = flex.partition(id).unwrap();
        assert_eq!(p.rated_bytes(), 1024 * MIB);
        assert_eq!(p.plugged_bytes(), 256 * MIB);
        assert_eq!(plug.blocks.len(), 2);
        assert_eq!(vm.guest.zone(p.zone).managed_pages, 256 * MIB / 4096);
        vm.guest.assert_consistent();
    }

    #[test]
    fn grow_on_demand_after_oom() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (id, _) = flex.create(&mut vm, GIB, 128 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, id, pid).unwrap();
        // 128 MiB plugged = 32768 pages; the workload wants more.
        let want = 40_000;
        let r = vm.touch_anon(&mut host, pid, want, &cost);
        assert!(r.is_err(), "partition initially too small");
        let missing = want - vm.guest.process(pid).unwrap().rss_pages();
        // Application-triggered growth, then the fault retry succeeds.
        flex.grow(&mut vm, id, 128 * MIB, &cost).unwrap();
        vm.touch_anon(&mut host, pid, missing, &cost).unwrap();
        assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), want);
        assert_eq!(flex.partition(id).unwrap().plugged_bytes(), 256 * MIB);
        vm.guest.assert_consistent();
    }

    #[test]
    fn grow_stops_at_rated_size() {
        let (mut vm, _host, mut flex, cost) = setup();
        let (id, _) = flex.create(&mut vm, 256 * MIB, 128 * MIB, &cost).unwrap();
        flex.grow(&mut vm, id, 128 * MIB, &cost).unwrap();
        assert!(matches!(
            flex.grow(&mut vm, id, 128 * MIB, &cost),
            Err(SqueezyError::RatedSizeExceeded)
        ));
    }

    #[test]
    fn shrink_to_fit_reclaims_empty_blocks_only() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (id, _) = flex.create(&mut vm, GIB, 512 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, id, pid).unwrap();
        // Fill 3 of the 4 plugged blocks, then free back down to ~0.5.
        vm.touch_anon(&mut host, pid, 3 * mem_types::PAGES_PER_BLOCK, &cost)
            .unwrap();
        vm.guest
            .free_anon(pid, (3 * mem_types::PAGES_PER_BLOCK) / 2)
            .unwrap();
        // LIFO frees drain the upper blocks; at least one block is empty
        // plus the never-touched fourth one.
        let report = flex
            .shrink_to_fit(&mut vm, &mut host, id, &cost)
            .unwrap()
            .expect("something reclaimable");
        assert!(report.blocks.len() >= 2, "empty blocks reclaimed");
        assert_eq!(report.outcome.migrated, 0, "instant path only");
        // The workload's memory is untouched.
        assert_eq!(
            vm.guest.process(pid).unwrap().rss_pages(),
            (3 * mem_types::PAGES_PER_BLOCK) / 2
        );
        // Second shrink with nothing empty returns None.
        assert!(flex
            .shrink_to_fit(&mut vm, &mut host, id, &cost)
            .unwrap()
            .is_none());
        vm.guest.assert_consistent();
    }

    #[test]
    fn destroy_requires_detached_users() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (id, _) = flex.create(&mut vm, 256 * MIB, 256 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, id, pid).unwrap();
        assert!(matches!(
            flex.destroy(&mut vm, &mut host, id, &cost),
            Err(SqueezyError::PartitionBusy)
        ));
        vm.guest.exit_process(pid).unwrap();
        flex.detach(pid).unwrap();
        let report = flex.destroy(&mut vm, &mut host, id, &cost).unwrap();
        assert_eq!(report.blocks.len(), 2);
        assert_eq!(flex.partition_count(), 0);
    }

    #[test]
    fn spans_merge_and_zones_recycle() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let zones_before = vm.guest.zone_count();
        let total = flex.largest_free_blocks();
        // Create three adjacent partitions, destroy them out of order.
        let (a, _) = flex.create(&mut vm, 512 * MIB, 0, &cost).unwrap();
        let (b, _) = flex.create(&mut vm, 512 * MIB, 0, &cost).unwrap();
        let (c, _) = flex.create(&mut vm, 512 * MIB, 0, &cost).unwrap();
        flex.destroy(&mut vm, &mut host, a, &cost).unwrap();
        flex.destroy(&mut vm, &mut host, c, &cost).unwrap();
        flex.destroy(&mut vm, &mut host, b, &cost).unwrap();
        assert_eq!(flex.largest_free_blocks(), total, "spans coalesced");
        // Churning create/destroy reuses zone slots instead of growing
        // the zone table.
        for _ in 0..10 {
            let (id, _) = flex.create(&mut vm, GIB, 128 * MIB, &cost).unwrap();
            flex.destroy(&mut vm, &mut host, id, &cost).unwrap();
        }
        assert!(
            vm.guest.zone_count() <= zones_before + 3,
            "zone table grew: {} -> {}",
            zones_before,
            vm.guest.zone_count()
        );
    }

    #[test]
    fn region_exhaustion_rejected() {
        let (mut vm, _host, mut flex, cost) = setup();
        // 4 GiB region: a 5 GiB rated span cannot be reserved.
        assert!(matches!(
            flex.create(&mut vm, 5 * GIB, 0, &cost),
            Err(SqueezyError::RegionTooSmall)
        ));
        // Fill the region with two 2 GiB spans, then fail on a third.
        let (_a, _) = flex.create(&mut vm, 2 * GIB, 0, &cost).unwrap();
        let (_b, _) = flex.create(&mut vm, 2 * GIB, 0, &cost).unwrap();
        assert!(matches!(
            flex.create(&mut vm, 128 * MIB, 0, &cost),
            Err(SqueezyError::RegionTooSmall)
        ));
    }

    #[test]
    fn isolation_between_flex_partitions() {
        let (mut vm, mut host, mut flex, cost) = setup();
        let (a, _) = flex.create(&mut vm, 256 * MIB, 256 * MIB, &cost).unwrap();
        let (b, _) = flex.create(&mut vm, 256 * MIB, 256 * MIB, &cost).unwrap();
        let pa = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let pb = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, a, pa).unwrap();
        flex.attach(&mut vm, b, pb).unwrap();
        vm.touch_anon(&mut host, pa, 1000, &cost).unwrap();
        vm.touch_anon(&mut host, pb, 1000, &cost).unwrap();
        let za = flex.partition(a).unwrap().zone;
        let zb = flex.partition(b).unwrap().zone;
        assert_eq!(vm.guest.zone(za).used_pages(), 1000);
        assert_eq!(vm.guest.zone(zb).used_pages(), 1000);
        // A's overflow cannot spill into B.
        let r = vm.touch_anon(&mut host, pa, 256 * MIB / 4096, &cost);
        assert!(r.is_err());
        assert_eq!(vm.guest.zone(zb).used_pages(), 1000);
    }

    #[test]
    fn double_attach_and_unknown_partition_rejected() {
        let (mut vm, _host, mut flex, cost) = setup();
        let (id, _) = flex.create(&mut vm, 256 * MIB, 128 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, id, pid).unwrap();
        assert!(matches!(
            flex.attach(&mut vm, id, pid),
            Err(SqueezyError::AlreadyAttached)
        ));
        let other = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        assert!(matches!(
            flex.attach(&mut vm, PartitionId(99), other),
            Err(SqueezyError::NoReclaimablePartition)
        ));
        assert!(matches!(
            flex.detach(Pid(4242)),
            Err(SqueezyError::NotAttached)
        ));
    }
}
