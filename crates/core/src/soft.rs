//! Soft-memory partitions for keep-alive instances (§7 future work).
//!
//! Keep-alive policies trade memory for cold-start avoidance: an idle
//! instance ties its partition down for the whole keep-alive window.
//! The paper proposes using Squeezy to soften that trade: "Applications
//! could request Squeezy partitions to use as soft-memory ... Under
//! memory pressure, the hypervisor could rapidly reclaim soft-memory
//! Squeezy partitions", and likewise reclaim "unused memory of
//! garbage-collected runtimes ... for VM-sandboxed function instances".
//!
//! The protocol implemented here:
//!
//! 1. When an instance goes idle, the runtime (or the GC'd language
//!    runtime itself) calls [`SqueezyManager::mark_soft`] — the instance
//!    keeps running, its partition stays populated, but it is now
//!    revocable.
//! 2. Under host memory pressure, [`SqueezyManager::revoke_soft`] drops
//!    the soft instances' anonymous pages inside the guest (the
//!    app-managed soft state is discarded) and instantly unplugs their
//!    partitions — the usual migration-free path.
//! 3. On the next invocation the runtime calls
//!    [`SqueezyManager::mark_firm`]: a still-populated partition wakes
//!    warm ([`SoftWake::Warm`]); a revoked one reports
//!    [`SoftWake::NeedsReplug`], and [`SqueezyManager::replug`] restores
//!    its backing before the instance rebuilds its state (a *soft-cold*
//!    start: container and runtime survive, only the heap is rebuilt).

use guest_mm::Pid;
use sim_core::CostModel;
use virtio_mem::{PlugReport, UnplugReport};
use vmm::{HostMemory, Vm};

use crate::partition::{PartitionId, PartitionState};
use crate::{SqueezyError, SqueezyManager};

/// What `mark_firm` found when waking a soft instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SoftWake {
    /// The partition was never revoked: all state intact, warm start.
    Warm,
    /// The partition was revoked: re-plug and rebuild state.
    NeedsReplug,
}

impl SqueezyManager {
    /// Marks the partition of idle instance `pid` as soft (revocable
    /// under pressure). The instance keeps running.
    pub fn mark_soft(&mut self, pid: Pid) -> Result<PartitionId, SqueezyError> {
        let id = *self
            .attached()
            .get(&pid.0)
            .ok_or(SqueezyError::NotAttached)?;
        let part = self.partition_mut(id);
        if part.state != PartitionState::Assigned {
            return Err(SqueezyError::PartitionBusy);
        }
        part.state = PartitionState::Soft;
        self.stats_mut().soft_marks += 1;
        Ok(id)
    }

    /// Wakes instance `pid` for a new invocation. Returns whether its
    /// soft state survived ([`SoftWake::Warm`]) or was revoked and needs
    /// a re-plug ([`SoftWake::NeedsReplug`]).
    pub fn mark_firm(&mut self, pid: Pid) -> Result<SoftWake, SqueezyError> {
        let id = *self
            .attached()
            .get(&pid.0)
            .ok_or(SqueezyError::NotAttached)?;
        let part = self.partition_mut(id);
        match part.state {
            PartitionState::Soft => {
                part.state = PartitionState::Assigned;
                Ok(SoftWake::Warm)
            }
            PartitionState::Revoked => Ok(SoftWake::NeedsReplug),
            PartitionState::Assigned => Ok(SoftWake::Warm),
            _ => Err(SqueezyError::NotAttached),
        }
    }

    /// Hypervisor-side pressure handler: revokes up to `max` soft
    /// partitions — dropping their instances' anonymous pages in the
    /// guest and instantly unplugging their blocks. Returns one report
    /// per revoked partition.
    pub fn revoke_soft(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        max: usize,
        cost: &CostModel,
    ) -> Result<Vec<(PartitionId, UnplugReport)>, SqueezyError> {
        let victims: Vec<PartitionId> = self
            .partitions()
            .iter()
            .filter(|p| p.state == PartitionState::Soft)
            .map(|p| p.id)
            .take(max)
            .collect();
        let mut out = Vec::with_capacity(victims.len());
        for id in victims {
            // Drop the soft state of every process attached to this
            // partition (the app relinquished it when marking soft).
            // Sorted so the release order into the buddy is
            // deterministic (the map iterates in random order).
            let mut pids: Vec<Pid> = self
                .attached()
                .iter()
                .filter(|&(_, &p)| p == id)
                .map(|(&raw, _)| Pid(raw))
                .collect();
            pids.sort_unstable();
            for pid in pids {
                vm.guest.drop_anon(pid)?;
            }
            let blocks = self.partition_mut(id).blocks.clone();
            let report = vm.unplug_blocks_instant(host, &blocks, cost)?;
            self.partition_mut(id).state = PartitionState::Revoked;
            self.stats_mut().soft_revocations += 1;
            self.stats_mut().unplugs += 1;
            out.push((id, report));
        }
        Ok(out)
    }

    /// Re-plugs the revoked partition of instance `pid` so it can
    /// rebuild its state (the soft-cold start path).
    pub fn replug(
        &mut self,
        vm: &mut Vm,
        pid: Pid,
        cost: &CostModel,
    ) -> Result<PlugReport, SqueezyError> {
        let id = *self
            .attached()
            .get(&pid.0)
            .ok_or(SqueezyError::NotAttached)?;
        let part = self.partition_mut(id);
        if part.state != PartitionState::Revoked {
            return Err(SqueezyError::PartitionBusy);
        }
        let zone = part.zone;
        let blocks = part.blocks.clone();
        let report = vm
            .virtio_mem
            .plug_blocks(&mut vm.guest, &blocks, zone, cost)?;
        self.partition_mut(id).state = PartitionState::Assigned;
        self.stats_mut().replugs += 1;
        self.stats_mut().plugs += 1;
        Ok(report)
    }

    /// Returns the number of partitions currently marked soft.
    pub fn soft_count(&self) -> usize {
        self.partitions()
            .iter()
            .filter(|p| p.state == PartitionState::Soft)
            .count()
    }

    /// Returns the number of partitions currently revoked.
    pub fn revoked_count(&self) -> usize {
        self.partitions()
            .iter()
            .filter(|p| p.state == PartitionState::Revoked)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::{AllocPolicy, GuestMmConfig};
    use mem_types::{GIB, MIB, PAGE_SIZE};
    use vmm::VmConfig;

    use crate::SqueezyConfig;

    fn setup() -> (Vm, HostMemory, SqueezyManager, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: 8 * GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 4.0,
            },
            &mut host,
        )
        .unwrap();
        let sq = SqueezyManager::install(
            &mut vm,
            SqueezyConfig {
                partition_bytes: 768 * MIB,
                shared_bytes: 0,
                concurrency: 4,
            },
            &cost,
        )
        .unwrap();
        (vm, host, sq, cost)
    }

    /// Plug + attach + warm one instance; returns its pid.
    fn warm_instance(
        vm: &mut Vm,
        host: &mut HostMemory,
        sq: &mut SqueezyManager,
        pages: u64,
        cost: &CostModel,
    ) -> Pid {
        sq.plug_partition(vm, cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(vm, pid).unwrap();
        vm.touch_anon(host, pid, pages, cost).unwrap();
        pid
    }

    #[test]
    fn soft_survives_without_pressure() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let pid = warm_instance(&mut vm, &mut host, &mut sq, 10_000, &cost);
        sq.mark_soft(pid).unwrap();
        assert_eq!(sq.soft_count(), 1);
        // No pressure: next wake is warm with all pages intact.
        assert_eq!(sq.mark_firm(pid).unwrap(), SoftWake::Warm);
        assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), 10_000);
        assert_eq!(sq.soft_count(), 0);
    }

    #[test]
    fn revoke_reclaims_soft_partition_instantly() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let pid = warm_instance(&mut vm, &mut host, &mut sq, 10_000, &cost);
        sq.mark_soft(pid).unwrap();
        let rss_before = vm.host_rss();

        let reports = sq
            .revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();
        assert_eq!(reports.len(), 1);
        let (_, report) = &reports[0];
        assert_eq!(report.outcome.migrated, 0, "instant path");
        assert_eq!(report.outcome.zeroed, 0, "zeroing skipped");
        // Host memory came back; the guest process is alive but empty.
        assert!(vm.host_rss() < rss_before);
        assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), 0);
        assert_eq!(sq.revoked_count(), 1);
        assert_eq!(sq.populated_count(), 0);
        vm.guest.assert_consistent();
    }

    #[test]
    fn revoked_instance_replugs_and_rebuilds() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let pid = warm_instance(&mut vm, &mut host, &mut sq, 10_000, &cost);
        sq.mark_soft(pid).unwrap();
        sq.revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();

        // Next invocation: wake reports the revocation.
        assert_eq!(sq.mark_firm(pid).unwrap(), SoftWake::NeedsReplug);
        // Touching memory before re-plug fails: the partition is gone.
        assert!(vm.touch_anon(&mut host, pid, 1, &cost).is_err());
        sq.replug(&mut vm, pid, &cost).unwrap();
        assert_eq!(sq.mark_firm(pid).unwrap(), SoftWake::Warm);
        // Rebuild the soft state.
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), 10_000);
        assert_eq!(sq.stats().replugs, 1);
        vm.guest.assert_consistent();
    }

    #[test]
    fn revoke_respects_max_and_skips_firm_partitions() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let idle_a = warm_instance(&mut vm, &mut host, &mut sq, 1000, &cost);
        let idle_b = warm_instance(&mut vm, &mut host, &mut sq, 1000, &cost);
        let busy = warm_instance(&mut vm, &mut host, &mut sq, 1000, &cost);
        sq.mark_soft(idle_a).unwrap();
        sq.mark_soft(idle_b).unwrap();

        let reports = sq.revoke_soft(&mut vm, &mut host, 1, &cost).unwrap();
        assert_eq!(reports.len(), 1, "max respected");
        assert_eq!(sq.soft_count(), 1);
        // The busy instance is untouched.
        assert_eq!(vm.guest.process(busy).unwrap().rss_pages(), 1000);
        let _ = idle_a;
    }

    #[test]
    fn detached_revoked_partition_returns_unpopulated() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let pid = warm_instance(&mut vm, &mut host, &mut sq, 1000, &cost);
        sq.mark_soft(pid).unwrap();
        sq.revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();
        // The runtime decides to evict the instance outright instead of
        // re-warming it.
        vm.guest.exit_process(pid).unwrap();
        sq.detach(pid).unwrap();
        // The partition is reusable by a fresh plug (not double-unplug).
        assert_eq!(sq.reclaimable_count(), 0);
        let (id, _) = sq.plug_partition(&mut vm, &cost).unwrap();
        let p2 = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, p2).unwrap();
        vm.touch_anon(&mut host, p2, 500, &cost).unwrap();
        let zone = sq.partitions()[id.0 as usize].zone;
        assert_eq!(vm.guest.zone(zone).used_pages(), 500);
    }

    #[test]
    fn mark_soft_requires_assigned_partition() {
        let (mut vm, mut host, mut sq, cost) = setup();
        assert!(matches!(
            sq.mark_soft(Pid(99)),
            Err(SqueezyError::NotAttached)
        ));
        let pid = warm_instance(&mut vm, &mut host, &mut sq, 100, &cost);
        sq.mark_soft(pid).unwrap();
        // Double-soft is rejected (already Soft, not Assigned).
        assert!(matches!(
            sq.mark_soft(pid),
            Err(SqueezyError::PartitionBusy)
        ));
    }

    #[test]
    fn soft_memory_saves_bytes_during_idle() {
        let (mut vm, mut host, mut sq, cost) = setup();
        let pages = 100_000u64;
        let pid = warm_instance(&mut vm, &mut host, &mut sq, pages, &cost);
        let held_firm = vm.host_rss();
        sq.mark_soft(pid).unwrap();
        sq.revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();
        let held_soft = vm.host_rss();
        assert!(
            held_firm - held_soft >= pages * PAGE_SIZE,
            "idle instance footprint released: {held_firm} -> {held_soft}"
        );
    }
}
