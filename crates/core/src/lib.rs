//! **Squeezy** — rapid VM memory reclamation for serverless functions.
//!
//! This crate is the paper's core contribution (§3-§4): an extension to
//! the guest OS memory manager that segregates the footprints of
//! co-located function instances so their memory can be unplugged
//! instantly — no page migrations, no zeroing — when they terminate.
//!
//! The pieces, mapped to the paper:
//!
//! * [`Partition`]s implemented as dedicated zones, sized to the
//!   function's memory limit, plus one *shared* partition backing file
//!   mappings (libraries/runtime deps) of all instances;
//! * the **syscall interface** ([`SqueezyManager::attach`]) that binds a
//!   process to an empty populated partition, with a **waitqueue** for
//!   requests racing ahead of plug completions;
//! * `partition_users` refcounting with [`SqueezyManager::fork_attach`]
//!   co-locating children on the parent's partition;
//! * **partition-aware unplug** ([`SqueezyManager::unplug_partition`]):
//!   empty partitions offline instantly via `virtio-mem`'s instant path,
//!   and the allocator's zeroing of about-to-be-unplugged pages is
//!   skipped;
//! * OOM containment: a process exceeding its partition gets
//!   `OutOfMemory` instead of spilling into other zones.
//!
//! # Examples
//!
//! ```
//! use guest_mm::GuestMmConfig;
//! use mem_types::{GIB, MIB};
//! use sim_core::CostModel;
//! use squeezy::{AttachOutcome, SqueezyConfig, SqueezyManager};
//! use vmm::{HostMemory, Vm, VmConfig};
//!
//! let cost = CostModel::default();
//! let mut host = HostMemory::new(16 * GIB);
//! let mut vm = Vm::boot(
//!     VmConfig {
//!         guest: GuestMmConfig {
//!             boot_bytes: 512 * MIB,
//!             hotplug_bytes: 4 * GIB,
//!             kernel_bytes: 128 * MIB,
//!             init_on_alloc: true,
//!         },
//!         vcpus: 2.0,
//!     },
//!     &mut host,
//! )
//! .unwrap();
//! let mut sq = SqueezyManager::install(
//!     &mut vm,
//!     SqueezyConfig {
//!         partition_bytes: 768 * MIB,
//!         shared_bytes: 256 * MIB,
//!         concurrency: 4,
//!     },
//!     &cost,
//! )
//! .unwrap();
//! // Scale up: plug a partition, spawn an instance, attach it.
//! let (part, _plug) = sq.plug_partition(&mut vm, &cost).unwrap();
//! let pid = vm.guest.spawn_process(guest_mm::AllocPolicy::MovableDefault);
//! let attached = sq.attach(&mut vm, pid).unwrap();
//! assert_eq!(attached, AttachOutcome::Attached(part));
//! ```

pub mod flex;
pub mod partition;
pub mod soft;
pub mod temporal;

use std::collections::{HashMap, VecDeque};

use guest_mm::{AllocPolicy, MmError, Pid, ZoneKind};
use mem_types::{align_up_to_block, BlockId, FrameRange, PAGES_PER_BLOCK};
use sim_core::{CostModel, SimDuration};
use virtio_mem::{PlugReport, UnplugReport};
use vmm::{HostMemory, Vm, VmmError};

pub use flex::{FlexManager, FlexPartition, FlexStats};
pub use partition::{Partition, PartitionId, PartitionState};
pub use soft::SoftWake;
pub use temporal::TemporalInstance;

/// Errors from the Squeezy layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SqueezyError {
    /// The hotplug region cannot fit shared + N private partitions.
    RegionTooSmall,
    /// No unpopulated partition left to plug (concurrency N reached).
    NoUnpopulatedPartition,
    /// No free populated partition to unplug.
    NoReclaimablePartition,
    /// The process is not attached to any partition.
    NotAttached,
    /// The process is already attached.
    AlreadyAttached,
    /// A flex partition cannot grow beyond its rated span (§7).
    RatedSizeExceeded,
    /// The partition still has attached processes.
    PartitionBusy,
    /// An underlying VM/guest error.
    Vm(VmmError),
}

impl From<VmmError> for SqueezyError {
    fn from(e: VmmError) -> Self {
        SqueezyError::Vm(e)
    }
}

impl From<virtio_mem::VirtioMemError> for SqueezyError {
    fn from(e: virtio_mem::VirtioMemError) -> Self {
        SqueezyError::Vm(VmmError::Virtio(e))
    }
}

impl From<MmError> for SqueezyError {
    fn from(e: MmError) -> Self {
        SqueezyError::Vm(VmmError::Guest(e))
    }
}

impl core::fmt::Display for SqueezyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SqueezyError::RegionTooSmall => f.write_str("hotplug region too small"),
            SqueezyError::NoUnpopulatedPartition => {
                f.write_str("no unpopulated partition (concurrency limit)")
            }
            SqueezyError::NoReclaimablePartition => {
                f.write_str("no free populated partition to reclaim")
            }
            SqueezyError::NotAttached => f.write_str("process not attached"),
            SqueezyError::AlreadyAttached => f.write_str("process already attached"),
            SqueezyError::RatedSizeExceeded => f.write_str("flex partition rated size exceeded"),
            SqueezyError::PartitionBusy => f.write_str("partition still has attached processes"),
            SqueezyError::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl std::error::Error for SqueezyError {}

/// Result of an attach (Squeezy syscall) request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttachOutcome {
    /// Bound to a populated partition.
    Attached(PartitionId),
    /// No populated free partition yet: parked on the waitqueue until a
    /// plug completes (§4.1 "Squeezy waitqueue").
    Queued,
}

/// Boot-time Squeezy parameters (set by the serverless runtime, §4.2
/// "VM creation").
#[derive(Clone, Copy, Debug)]
pub struct SqueezyConfig {
    /// Private partition size = the function's memory limit (rounded up
    /// to whole 128 MiB blocks).
    pub partition_bytes: u64,
    /// Shared partition size (runtime/language dependencies).
    pub shared_bytes: u64,
    /// Concurrency factor N: the maximum co-resident instances.
    pub concurrency: u32,
}

/// Cumulative Squeezy statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SqueezyStats {
    /// Partitions plugged.
    pub plugs: u64,
    /// Partitions unplugged.
    pub unplugs: u64,
    /// Successful attaches.
    pub attaches: u64,
    /// Attach requests that had to wait on the queue.
    pub queued_attaches: u64,
    /// Detaches.
    pub detaches: u64,
    /// Partitions marked soft by idle instances (§7).
    pub soft_marks: u64,
    /// Soft partitions revoked under memory pressure.
    pub soft_revocations: u64,
    /// Revoked partitions re-plugged on instance re-use.
    pub replugs: u64,
}

/// The Squeezy guest memory-manager extension for one VM.
pub struct SqueezyManager {
    config: SqueezyConfig,
    shared_zone: u8,
    partitions: Vec<Partition>,
    /// pid → partition for attached processes.
    attached: HashMap<u32, PartitionId>,
    /// Processes waiting for a populated partition.
    waitqueue: VecDeque<Pid>,
    stats: SqueezyStats,
}

impl SqueezyManager {
    /// Installs Squeezy into a booted VM.
    ///
    /// Lays out the shared partition followed by N private partitions
    /// over the virtio-mem managed region, creates their zones, redirects
    /// file (page-cache) allocations to the shared partition, enables the
    /// allocator's unplug-aware zeroing skip, and populates the shared
    /// partition (§4.1).
    pub fn install(
        vm: &mut Vm,
        config: SqueezyConfig,
        cost: &CostModel,
    ) -> Result<SqueezyManager, SqueezyError> {
        let region = vm.virtio_mem.region();
        let region_blocks = region.count / PAGES_PER_BLOCK;
        let shared_blocks = align_up_to_block(config.shared_bytes) / mem_types::MEM_BLOCK_SIZE;
        let part_blocks = align_up_to_block(config.partition_bytes) / mem_types::MEM_BLOCK_SIZE;
        let need = shared_blocks + part_blocks * config.concurrency as u64;
        if need > region_blocks {
            return Err(SqueezyError::RegionTooSmall);
        }
        let first_block = region.start.0 / PAGES_PER_BLOCK;

        // Shared partition zone over the first blocks of the region.
        let shared_zone = vm.guest.create_zone(
            ZoneKind::SqueezyShared,
            FrameRange::new(
                BlockId(first_block).first_frame(),
                shared_blocks * PAGES_PER_BLOCK,
            ),
        );
        vm.guest
            .set_file_policy(AllocPolicy::PinnedZone(shared_zone));
        vm.guest.unplug_aware_zeroing_skip = true;

        // N private partitions, each over `part_blocks` consecutive blocks.
        let mut partitions = Vec::with_capacity(config.concurrency as usize);
        for i in 0..config.concurrency as u64 {
            let start_block = first_block + shared_blocks + i * part_blocks;
            let blocks: Vec<BlockId> = (start_block..start_block + part_blocks)
                .map(BlockId)
                .collect();
            let zone = vm.guest.create_zone(
                ZoneKind::SqueezyPrivate {
                    partition: i as u32,
                },
                FrameRange::new(
                    BlockId(start_block).first_frame(),
                    part_blocks * PAGES_PER_BLOCK,
                ),
            );
            partitions.push(Partition {
                id: PartitionId(i as u32),
                zone,
                blocks,
                state: PartitionState::Unpopulated,
                users: 0,
            });
        }

        // Pre-populate the shared partition at boot (§3 "This partition
        // is pre-populated at boot time").
        if shared_blocks > 0 {
            let blocks: Vec<BlockId> = (first_block..first_block + shared_blocks)
                .map(BlockId)
                .collect();
            vm.virtio_mem
                .plug_blocks(&mut vm.guest, &blocks, shared_zone, cost)?;
        }

        Ok(SqueezyManager {
            config,
            shared_zone,
            partitions,
            attached: HashMap::new(),
            waitqueue: VecDeque::new(),
            stats: SqueezyStats::default(),
        })
    }

    // --- Accessors -------------------------------------------------------

    /// Returns the boot configuration.
    pub fn config(&self) -> &SqueezyConfig {
        &self.config
    }

    /// Returns the shared partition's zone index.
    pub fn shared_zone(&self) -> u8 {
        self.shared_zone
    }

    /// Returns all partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Returns the partition a process is attached to, if any.
    pub fn partition_of(&self, pid: Pid) -> Option<PartitionId> {
        self.attached.get(&pid.0).copied()
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &SqueezyStats {
        &self.stats
    }

    /// Returns the number of populated partitions (the *effective*
    /// concurrency factor, §7).
    pub fn populated_count(&self) -> usize {
        self.partitions.iter().filter(|p| p.is_populated()).count()
    }

    /// Returns the number of free populated partitions (reclaimable).
    pub fn reclaimable_count(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.state == PartitionState::Free)
            .count()
    }

    /// Returns the number of queued attach requests.
    pub fn waitqueue_len(&self) -> usize {
        self.waitqueue.len()
    }

    // --- Plug / unplug -----------------------------------------------------

    /// Plugs (populates) one unpopulated partition; triggered by the
    /// runtime on scale-up (§4.2 step 2). Returns the partition and the
    /// plug report for cost accounting.
    pub fn plug_partition(
        &mut self,
        vm: &mut Vm,
        cost: &CostModel,
    ) -> Result<(PartitionId, PlugReport), SqueezyError> {
        let part = self
            .partitions
            .iter_mut()
            .find(|p| p.state == PartitionState::Unpopulated)
            .ok_or(SqueezyError::NoUnpopulatedPartition)?;
        let id = part.id;
        let zone = part.zone;
        let blocks = part.blocks.clone();
        part.state = PartitionState::Free;
        let report = match vm
            .virtio_mem
            .plug_blocks(&mut vm.guest, &blocks, zone, cost)
        {
            Ok(r) => r,
            Err(e) => {
                self.partitions[id.0 as usize].state = PartitionState::Unpopulated;
                return Err(e.into());
            }
        };
        self.stats.plugs += 1;
        Ok((id, report))
    }

    /// Unplugs one free (empty) partition instantly; triggered by the
    /// runtime on scale-down (§4.2 steps 5-6). Zero migrations by
    /// construction.
    pub fn unplug_partition(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        cost: &CostModel,
    ) -> Result<(PartitionId, UnplugReport), SqueezyError> {
        let part = self
            .partitions
            .iter_mut()
            .find(|p| p.state == PartitionState::Free)
            .ok_or(SqueezyError::NoReclaimablePartition)?;
        let id = part.id;
        let blocks = part.blocks.clone();
        let report = vm.unplug_blocks_instant(host, &blocks, cost)?;
        self.partitions[id.0 as usize].state = PartitionState::Unpopulated;
        self.stats.unplugs += 1;
        Ok((id, report))
    }

    /// Unplugs up to `max` free partitions in one *batched* request:
    /// one device notification round trip for the whole batch instead of
    /// one per block — the §8 future optimization for reclaiming
    /// multiple terminated instances concurrently.
    ///
    /// Returns the reclaimed partitions and a combined report. With no
    /// free partition it returns [`SqueezyError::NoReclaimablePartition`].
    pub fn unplug_partitions_batched(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        max: usize,
        cost: &CostModel,
    ) -> Result<(Vec<PartitionId>, UnplugReport), SqueezyError> {
        let free: Vec<PartitionId> = self
            .partitions
            .iter()
            .filter(|p| p.state == PartitionState::Free)
            .map(|p| p.id)
            .take(max)
            .collect();
        if free.is_empty() {
            return Err(SqueezyError::NoReclaimablePartition);
        }
        let blocks: Vec<BlockId> = free
            .iter()
            .flat_map(|id| self.partitions[id.0 as usize].blocks.clone())
            .collect();
        let report = vm
            .virtio_mem
            .unplug_blocks_instant_opts(&mut vm.guest, &blocks, true, cost)
            .map_err(|e| SqueezyError::Vm(VmmError::Virtio(e)))?;
        // Release the EPT backing of the whole batch.
        let mut freed_pages = 0;
        for b in &blocks {
            freed_pages += vm.ept.release_range(b.frames());
        }
        host.release(freed_pages * mem_types::PAGE_SIZE);
        for id in &free {
            self.partitions[id.0 as usize].state = PartitionState::Unpopulated;
            self.stats.unplugs += 1;
        }
        Ok((free, report))
    }

    // --- The Squeezy syscall interface --------------------------------------

    /// The Squeezy syscall: requests a populated free partition for
    /// `pid`. If none is available the process parks on the waitqueue
    /// (§4.1) and is bound later by [`SqueezyManager::wake_waiters`].
    pub fn attach(&mut self, vm: &mut Vm, pid: Pid) -> Result<AttachOutcome, SqueezyError> {
        if self.attached.contains_key(&pid.0) {
            return Err(SqueezyError::AlreadyAttached);
        }
        match self.grab_free_partition() {
            Some(id) => {
                self.bind(vm, pid, id)?;
                Ok(AttachOutcome::Attached(id))
            }
            None => {
                self.waitqueue.push_back(pid);
                self.stats.queued_attaches += 1;
                Ok(AttachOutcome::Queued)
            }
        }
    }

    /// Binds queued waiters to newly populated partitions. Call after
    /// plug completions; returns the `(process, partition)` bindings
    /// made.
    pub fn wake_waiters(&mut self, vm: &mut Vm) -> Vec<(Pid, PartitionId)> {
        let mut woken = Vec::new();
        while !self.waitqueue.is_empty() {
            let Some(id) = self.grab_free_partition() else {
                break;
            };
            let pid = self.waitqueue.pop_front().expect("checked non-empty");
            if self.bind(vm, pid, id).is_ok() {
                woken.push((pid, id));
            }
        }
        woken
    }

    /// `fork()` handling: the child joins the parent's partition and
    /// bumps `partition_users` (§4.1).
    pub fn fork_attach(
        &mut self,
        vm: &mut Vm,
        parent: Pid,
        child: Pid,
    ) -> Result<PartitionId, SqueezyError> {
        let id = *self
            .attached
            .get(&parent.0)
            .ok_or(SqueezyError::NotAttached)?;
        if self.attached.contains_key(&child.0) {
            return Err(SqueezyError::AlreadyAttached);
        }
        let zone = self.partitions[id.0 as usize].zone;
        vm.guest.set_policy(child, AllocPolicy::PinnedZone(zone))?;
        self.partitions[id.0 as usize].users += 1;
        self.attached.insert(child.0, id);
        Ok(id)
    }

    /// Detaches an exiting process. When `partition_users` drops to zero
    /// the partition becomes free — i.e. instantly reclaimable.
    ///
    /// The caller must have already terminated the process in the guest
    /// (`exit_process`), which returns its pages to the partition's
    /// buddy.
    pub fn detach(&mut self, pid: Pid) -> Result<PartitionId, SqueezyError> {
        let id = self
            .attached
            .remove(&pid.0)
            .ok_or(SqueezyError::NotAttached)?;
        let part = &mut self.partitions[id.0 as usize];
        debug_assert!(part.users > 0);
        part.users -= 1;
        if part.users == 0 {
            part.state = match part.state {
                // A revoked partition's blocks are already unplugged.
                PartitionState::Revoked => PartitionState::Unpopulated,
                _ => PartitionState::Free,
            };
        }
        self.stats.detaches += 1;
        Ok(id)
    }

    /// Returns the syscall cost for one attach (callers charge time).
    pub fn syscall_cost(cost: &CostModel) -> SimDuration {
        SimDuration::nanos(cost.squeezy_syscall_ns)
    }

    // --- Internals -----------------------------------------------------------

    /// Attached-process map (soft-memory extension plumbing).
    pub(crate) fn attached(&self) -> &HashMap<u32, PartitionId> {
        &self.attached
    }

    /// Mutable partition access (soft-memory extension plumbing).
    pub(crate) fn partition_mut(&mut self, id: PartitionId) -> &mut Partition {
        &mut self.partitions[id.0 as usize]
    }

    /// Mutable stats access (soft-memory extension plumbing).
    pub(crate) fn stats_mut(&mut self) -> &mut SqueezyStats {
        &mut self.stats
    }

    /// Finds a free populated partition and marks it assigned.
    fn grab_free_partition(&mut self) -> Option<PartitionId> {
        let part = self
            .partitions
            .iter_mut()
            .find(|p| p.state == PartitionState::Free)?;
        part.state = PartitionState::Assigned;
        part.users = 0;
        Some(part.id)
    }

    /// Binds `pid` to partition `id` (already marked assigned).
    fn bind(&mut self, vm: &mut Vm, pid: Pid, id: PartitionId) -> Result<(), SqueezyError> {
        let zone = self.partitions[id.0 as usize].zone;
        match vm.guest.set_policy(pid, AllocPolicy::PinnedZone(zone)) {
            Ok(()) => {
                self.partitions[id.0 as usize].users = 1;
                self.attached.insert(pid.0, id);
                self.stats.attaches += 1;
                Ok(())
            }
            Err(e) => {
                // Process died before binding: partition returns to free.
                self.partitions[id.0 as usize].state = PartitionState::Free;
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::GuestMmConfig;
    use mem_types::{GIB, MIB};

    fn setup(concurrency: u32) -> (Vm, HostMemory, SqueezyManager, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            vmm::VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: 8 * GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 4.0,
            },
            &mut host,
        )
        .unwrap();
        let sq = SqueezyManager::install(
            &mut vm,
            SqueezyConfig {
                partition_bytes: 768 * MIB,
                shared_bytes: 256 * MIB,
                concurrency,
            },
            &cost,
        )
        .unwrap();
        (vm, host, sq, cost)
    }

    #[test]
    fn install_lays_out_partitions() {
        let (vm, _host, sq, _cost) = setup(4);
        assert_eq!(sq.partitions().len(), 4);
        // 768 MiB = 6 blocks each.
        for p in sq.partitions() {
            assert_eq!(p.blocks.len(), 6);
            assert_eq!(p.state, PartitionState::Unpopulated);
        }
        // Shared partition populated at boot: 256 MiB onlined.
        assert_eq!(
            vm.guest.zone(sq.shared_zone()).managed_pages,
            256 * MIB / mem_types::PAGE_SIZE
        );
        // Partitions do not overlap.
        let mut all_blocks: Vec<BlockId> = sq
            .partitions()
            .iter()
            .flat_map(|p| p.blocks.clone())
            .collect();
        let n = all_blocks.len();
        all_blocks.sort();
        all_blocks.dedup();
        assert_eq!(all_blocks.len(), n, "partition blocks overlap");
    }

    #[test]
    fn install_rejects_oversized_layout() {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            vmm::VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 1.0,
            },
            &mut host,
        )
        .unwrap();
        let r = SqueezyManager::install(
            &mut vm,
            SqueezyConfig {
                partition_bytes: 768 * MIB,
                shared_bytes: 256 * MIB,
                concurrency: 4,
            },
            &cost,
        );
        assert!(matches!(r, Err(SqueezyError::RegionTooSmall)));
    }

    #[test]
    fn plug_attach_detach_unplug_cycle() {
        let (mut vm, mut host, mut sq, cost) = setup(4);
        // Scale up.
        let (part, plug) = sq.plug_partition(&mut vm, &cost).unwrap();
        assert_eq!(plug.blocks.len(), 6);
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let out = sq.attach(&mut vm, pid).unwrap();
        assert_eq!(out, AttachOutcome::Attached(part));
        assert_eq!(sq.partition_of(pid), Some(part));

        // The instance faults memory: it lands in the partition zone.
        let zone = sq.partitions()[part.0 as usize].zone;
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        assert_eq!(vm.guest.zone(zone).used_pages(), 10_000);

        // Scale down: exit, detach, unplug — instantly.
        vm.guest.exit_process(pid).unwrap();
        let freed_part = sq.detach(pid).unwrap();
        assert_eq!(freed_part, part);
        assert_eq!(sq.reclaimable_count(), 1);
        let (unplugged, report) = sq.unplug_partition(&mut vm, &mut host, &cost).unwrap();
        assert_eq!(unplugged, part);
        assert_eq!(report.outcome.migrated, 0, "zero migrations");
        assert_eq!(report.outcome.zeroed, 0, "zeroing skipped");
        assert_eq!(sq.populated_count(), 0);
        vm.guest.assert_consistent();
    }

    #[test]
    fn attach_queues_until_plug() {
        let (mut vm, _host, mut sq, cost) = setup(2);
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        // No populated partition yet: queued.
        assert_eq!(sq.attach(&mut vm, pid).unwrap(), AttachOutcome::Queued);
        assert_eq!(sq.waitqueue_len(), 1);
        // Plug completes; waiter binds.
        let (part, _) = sq.plug_partition(&mut vm, &cost).unwrap();
        let woken = sq.wake_waiters(&mut vm);
        assert_eq!(woken, vec![(pid, part)]);
        assert_eq!(sq.waitqueue_len(), 0);
        assert_eq!(sq.partition_of(pid), Some(part));
    }

    #[test]
    fn fork_children_share_partition() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        let (part, _) = sq.plug_partition(&mut vm, &cost).unwrap();
        let parent = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, parent).unwrap();
        let child = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let got = sq.fork_attach(&mut vm, parent, child).unwrap();
        assert_eq!(got, part);
        assert_eq!(sq.partitions()[part.0 as usize].users, 2);

        // Both allocate from the same zone.
        let zone = sq.partitions()[part.0 as usize].zone;
        vm.touch_anon(&mut host, parent, 100, &cost).unwrap();
        vm.touch_anon(&mut host, child, 100, &cost).unwrap();
        assert_eq!(vm.guest.zone(zone).used_pages(), 200);

        // Partition frees only after BOTH exit.
        vm.guest.exit_process(parent).unwrap();
        sq.detach(parent).unwrap();
        assert_eq!(sq.reclaimable_count(), 0, "child still attached");
        vm.guest.exit_process(child).unwrap();
        sq.detach(child).unwrap();
        assert_eq!(sq.reclaimable_count(), 1);
    }

    #[test]
    fn partition_limit_ooms_contained() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        // 768 MiB partition = 196608 pages; ask for more.
        let r = vm.touch_anon(&mut host, pid, 196_608 + 1, &cost);
        assert!(matches!(r, Err(VmmError::Guest(MmError::OutOfMemory))));
        // Other zones untouched by the overflow.
        assert!(vm.guest.free_bytes() > 0);
    }

    #[test]
    fn concurrency_limit_enforced() {
        let (mut vm, _host, mut sq, cost) = setup(2);
        sq.plug_partition(&mut vm, &cost).unwrap();
        sq.plug_partition(&mut vm, &cost).unwrap();
        assert!(matches!(
            sq.plug_partition(&mut vm, &cost),
            Err(SqueezyError::NoUnpopulatedPartition)
        ));
    }

    #[test]
    fn unplug_requires_free_partition() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        assert!(matches!(
            sq.unplug_partition(&mut vm, &mut host, &cost),
            Err(SqueezyError::NoReclaimablePartition)
        ));
        // Assigned partitions are not reclaimable either.
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        assert!(matches!(
            sq.unplug_partition(&mut vm, &mut host, &cost),
            Err(SqueezyError::NoReclaimablePartition)
        ));
    }

    #[test]
    fn file_pages_go_to_shared_partition() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        let f = guest_mm::FileId(9);
        vm.touch_file(&mut host, f, 1000, &cost).unwrap();
        assert_eq!(vm.guest.zone(sq.shared_zone()).used_pages(), 1000);
        // A second touch of the file hits the cache: the shared
        // partition holds it once.
        vm.touch_file(&mut host, f, 1000, &cost).unwrap();
        assert_eq!(vm.guest.zone(sq.shared_zone()).used_pages(), 1000);
    }

    #[test]
    fn double_attach_rejected() {
        let (mut vm, _host, mut sq, cost) = setup(2);
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        assert!(matches!(
            sq.attach(&mut vm, pid),
            Err(SqueezyError::AlreadyAttached)
        ));
        assert!(sq.detach(pid).is_ok());
        assert!(matches!(sq.detach(pid), Err(SqueezyError::NotAttached)));
    }

    #[test]
    fn freed_partition_can_be_reused_without_replug() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        let (part, _) = sq.plug_partition(&mut vm, &cost).unwrap();
        let a = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, a).unwrap();
        vm.touch_anon(&mut host, a, 500, &cost).unwrap();
        vm.guest.exit_process(a).unwrap();
        sq.detach(a).unwrap();
        // Reuse the populated free partition directly.
        let b = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        assert_eq!(
            sq.attach(&mut vm, b).unwrap(),
            AttachOutcome::Attached(part)
        );
        assert_eq!(sq.stats().plugs, 1, "no second plug needed");
    }

    #[test]
    fn stats_track_lifecycle() {
        let (mut vm, mut host, mut sq, cost) = setup(2);
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        vm.guest.exit_process(pid).unwrap();
        sq.detach(pid).unwrap();
        sq.unplug_partition(&mut vm, &mut host, &cost).unwrap();
        let s = sq.stats();
        assert_eq!((s.plugs, s.unplugs, s.attaches, s.detaches), (1, 1, 1, 1));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use guest_mm::{AllocPolicy, GuestMmConfig};
    use mem_types::{GIB, MIB};

    fn setup() -> (Vm, HostMemory, SqueezyManager, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(32 * GIB);
        let mut vm = Vm::boot(
            vmm::VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: 8 * GIB,
                    kernel_bytes: 128 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 4.0,
            },
            &mut host,
        )
        .unwrap();
        let sq = SqueezyManager::install(
            &mut vm,
            SqueezyConfig {
                partition_bytes: 768 * MIB,
                shared_bytes: 0,
                concurrency: 6,
            },
            &cost,
        )
        .unwrap();
        (vm, host, sq, cost)
    }

    /// Populates `n` partitions with instances and immediately frees them.
    fn make_free_partitions(
        vm: &mut Vm,
        host: &mut HostMemory,
        sq: &mut SqueezyManager,
        n: usize,
        cost: &CostModel,
    ) {
        for _ in 0..n {
            sq.plug_partition(vm, cost).unwrap();
            let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
            sq.attach(vm, pid).unwrap();
            vm.touch_anon(host, pid, 10_000, cost).unwrap();
            vm.guest.exit_process(pid).unwrap();
            sq.detach(pid).unwrap();
        }
    }

    #[test]
    fn batched_unplug_reclaims_all_free_partitions() {
        let (mut vm, mut host, mut sq, cost) = setup();
        make_free_partitions(&mut vm, &mut host, &mut sq, 4, &cost);
        let rss_before = vm.host_rss();
        let (parts, report) = sq
            .unplug_partitions_batched(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(report.blocks.len(), 4 * 6);
        assert_eq!(report.outcome.migrated, 0);
        assert!(vm.host_rss() < rss_before, "backing released");
        assert_eq!(sq.populated_count(), 0);
        assert_eq!(host.used_bytes(), vm.host_rss());
        vm.guest.assert_consistent();
    }

    #[test]
    fn batched_unplug_is_faster_than_sequential() {
        // Batch of 4 partitions: one exit round trip instead of 24.
        let (mut vm, mut host, mut sq, cost) = setup();
        make_free_partitions(&mut vm, &mut host, &mut sq, 4, &cost);
        let (_, batched) = sq
            .unplug_partitions_batched(&mut vm, &mut host, usize::MAX, &cost)
            .unwrap();

        let (mut vm2, mut host2, mut sq2, _) = setup();
        make_free_partitions(&mut vm2, &mut host2, &mut sq2, 4, &cost);
        let mut sequential = sim_core::SimDuration::ZERO;
        for _ in 0..4 {
            let (_, r) = sq2.unplug_partition(&mut vm2, &mut host2, &cost).unwrap();
            sequential += r.latency();
        }
        assert!(
            batched.latency() < sequential,
            "batched {} < sequential {}",
            batched.latency(),
            sequential
        );
        // The exit bucket specifically shrinks.
        assert!(batched.breakdown.vmexits < sequential / 4);
    }

    #[test]
    fn batched_unplug_respects_max() {
        let (mut vm, mut host, mut sq, cost) = setup();
        make_free_partitions(&mut vm, &mut host, &mut sq, 3, &cost);
        let (parts, _) = sq
            .unplug_partitions_batched(&mut vm, &mut host, 2, &cost)
            .unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(sq.reclaimable_count(), 1);
    }

    #[test]
    fn batched_unplug_empty_errors() {
        let (mut vm, mut host, mut sq, cost) = setup();
        assert!(matches!(
            sq.unplug_partitions_batched(&mut vm, &mut host, 8, &cost),
            Err(SqueezyError::NoReclaimablePartition)
        ));
    }
}
