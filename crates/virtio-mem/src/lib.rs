//! A virtio-mem device + guest-driver model.
//!
//! virtio-mem (Hildenbrand & Schulz, VEE '21) exposes a paravirtual DIMM
//! sliced into blocks that can be (un)plugged independently. The device
//! tracks a `plugged` bitmap over its managed region; the guest driver
//! reacts to resize requests by hot-adding + onlining blocks (plug) or
//! offlining + hot-removing them (unplug), using the native Linux
//! mechanisms modelled in [`guest_mm`].
//!
//! Every operation returns a report with
//!
//! * a [`LatencyBreakdown`] in the paper's Figure-5 buckets (zeroing /
//!   migration / VM exits / rest),
//! * guest and host CPU time (for the Figure-7/9 interference model), and
//! * the affected blocks, so the VMM can release or prepare host backing.
//!
//! The model is synchronous: it mutates the guest memory manager and
//! charges calibrated costs; the caller decides how charged CPU time maps
//! to wall-clock time (directly for microbenchmarks, through a
//! [`sim_core::CpuPool`] when the driver thread shares vCPUs with
//! function instances).

use guest_mm::{CandidateStrategy, GuestMm, MmError, OfflineOutcome};
use mem_types::{BlockId, FrameRange, MEM_BLOCK_SIZE, PAGES_PER_BLOCK};
use sim_core::{CostModel, LatencyBreakdown, SimDuration};

/// Errors from virtio-mem operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VirtioMemError {
    /// The request exceeds the device's managed region.
    RegionExhausted,
    /// The request is not a multiple of the 128 MiB block size.
    Misaligned,
    /// A guest-side memory-management operation failed.
    Guest(MmError),
}

impl core::fmt::Display for VirtioMemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VirtioMemError::RegionExhausted => f.write_str("managed region exhausted"),
            VirtioMemError::Misaligned => f.write_str("request not block-aligned"),
            VirtioMemError::Guest(e) => write!(f, "guest error: {e}"),
        }
    }
}

impl std::error::Error for VirtioMemError {}

/// Report of a plug operation.
#[derive(Clone, Debug, Default)]
pub struct PlugReport {
    /// Blocks hot-added and onlined, in order.
    pub blocks: Vec<BlockId>,
    /// Latency breakdown (plugging has no migration/zeroing).
    pub breakdown: LatencyBreakdown,
    /// Guest-side CPU time consumed (driver + onlining).
    pub guest_cpu: SimDuration,
    /// Host-side CPU time consumed (device emulation).
    pub host_cpu: SimDuration,
}

impl PlugReport {
    /// Bytes plugged.
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * MEM_BLOCK_SIZE
    }

    /// Total wall latency when run unconstrained.
    pub fn latency(&self) -> SimDuration {
        self.breakdown.total()
    }
}

/// Report of an unplug operation.
#[derive(Clone, Debug, Default)]
pub struct UnplugReport {
    /// Blocks offlined and hot-removed, in order.
    pub blocks: Vec<BlockId>,
    /// Aggregate mechanical counts across all offlined blocks.
    pub outcome: OfflineOutcome,
    /// Latency breakdown in Figure-5 buckets.
    pub breakdown: LatencyBreakdown,
    /// Guest-side CPU time (driver kthread: scans, migration, zeroing).
    pub guest_cpu: SimDuration,
    /// Host-side CPU time (exit service, `madvise`).
    pub host_cpu: SimDuration,
    /// Bytes that could not be reclaimed (timeout / no candidates).
    pub shortfall_bytes: u64,
    /// Offline attempts that failed and were rolled back.
    pub failed_attempts: u64,
}

impl UnplugReport {
    /// Bytes actually unplugged.
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * MEM_BLOCK_SIZE
    }

    /// Total wall latency when run unconstrained.
    pub fn latency(&self) -> SimDuration {
        self.breakdown.total()
    }
}

/// Cumulative device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtioMemStats {
    /// Total bytes ever plugged.
    pub plugged_bytes: u64,
    /// Total bytes ever unplugged.
    pub unplugged_bytes: u64,
    /// Plug operations served.
    pub plug_ops: u64,
    /// Unplug operations served.
    pub unplug_ops: u64,
    /// Unplug operations that fell short of their target.
    pub unplug_shortfalls: u64,
}

/// The virtio-mem device model.
pub struct VirtioMemDevice {
    /// Managed guest-physical region (block-aligned).
    region: FrameRange,
    /// Plugged state per block of the region.
    plugged: mem_types::Bitmap,
    /// Zone blocks are onlined into on the vanilla path.
    default_zone: u8,
    /// Candidate selection strategy for vanilla unplug.
    pub strategy: CandidateStrategy,
    stats: VirtioMemStats,
}

impl VirtioMemDevice {
    /// Creates a device managing `region` (must be block-aligned), with
    /// vanilla plugs onlining into `default_zone`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is not block-aligned.
    pub fn new(region: FrameRange, default_zone: u8) -> Self {
        assert_eq!(region.start.0 % PAGES_PER_BLOCK, 0, "region misaligned");
        assert_eq!(region.count % PAGES_PER_BLOCK, 0, "region not block-sized");
        let nblocks = (region.count / PAGES_PER_BLOCK) as usize;
        VirtioMemDevice {
            region,
            plugged: mem_types::Bitmap::new(nblocks),
            default_zone,
            strategy: CandidateStrategy::HighestFirst,
            stats: VirtioMemStats::default(),
        }
    }

    /// Returns the managed region.
    pub fn region(&self) -> FrameRange {
        self.region
    }

    /// Returns the currently plugged size in bytes.
    pub fn plugged_bytes(&self) -> u64 {
        self.plugged.count_ones() as u64 * MEM_BLOCK_SIZE
    }

    /// Returns the device statistics.
    pub fn stats(&self) -> &VirtioMemStats {
        &self.stats
    }

    /// Returns `true` if `b` lies in the managed region and is plugged.
    pub fn is_plugged(&self, b: BlockId) -> bool {
        self.block_index(b)
            .map(|i| self.plugged.get(i))
            .unwrap_or(false)
    }

    fn block_index(&self, b: BlockId) -> Option<usize> {
        let first = self.region.start.0 / PAGES_PER_BLOCK;
        let n = self.region.count / PAGES_PER_BLOCK;
        if b.0 >= first && b.0 < first + n {
            Some((b.0 - first) as usize)
        } else {
            None
        }
    }

    fn block_at(&self, index: usize) -> BlockId {
        BlockId(self.region.start.0 / PAGES_PER_BLOCK + index as u64)
    }

    // --- Plug paths -----------------------------------------------------

    /// Vanilla plug: adds `bytes` of memory, onlining into the default
    /// zone. Blocks are chosen lowest-address-first like the real driver.
    pub fn plug(
        &mut self,
        guest: &mut GuestMm,
        bytes: u64,
        cost: &CostModel,
    ) -> Result<PlugReport, VirtioMemError> {
        if !bytes.is_multiple_of(MEM_BLOCK_SIZE) {
            return Err(VirtioMemError::Misaligned);
        }
        let want = (bytes / MEM_BLOCK_SIZE) as usize;
        let mut chosen = Vec::with_capacity(want);
        for i in 0..self.plugged.len() {
            if chosen.len() == want {
                break;
            }
            if !self.plugged.get(i) {
                chosen.push(self.block_at(i));
            }
        }
        if chosen.len() < want {
            return Err(VirtioMemError::RegionExhausted);
        }
        let zone = self.default_zone;
        self.plug_blocks(guest, &chosen, zone, cost)
    }

    /// Plugs a specific set of blocks, onlining them into `zone`
    /// (Squeezy populates partitions through this path, §4.1 "Plugging a
    /// Squeezy partition").
    pub fn plug_blocks(
        &mut self,
        guest: &mut GuestMm,
        blocks: &[BlockId],
        zone: u8,
        cost: &CostModel,
    ) -> Result<PlugReport, VirtioMemError> {
        let mut report = PlugReport {
            // Request round trip: runtime → VMM → device config → driver.
            breakdown: LatencyBreakdown {
                rest: SimDuration::nanos(cost.resize_request_fixed_ns),
                ..LatencyBreakdown::default()
            },
            host_cpu: SimDuration::nanos(cost.resize_request_fixed_ns / 2),
            ..PlugReport::default()
        };
        for &b in blocks {
            let idx = self.block_index(b).ok_or(VirtioMemError::RegionExhausted)?;
            if self.plugged.get(idx) {
                return Err(VirtioMemError::Guest(MmError::BadBlockState));
            }
            guest
                .hot_add_online_block(b, zone)
                .map_err(VirtioMemError::Guest)?;
            self.plugged.set(idx);
            let block_cost = SimDuration::nanos(cost.hot_add_block_ns + cost.online_block_ns);
            report.breakdown.rest += block_cost;
            report.guest_cpu += block_cost;
            // One exit per block to acknowledge the plugged range.
            report.breakdown.vmexits += SimDuration::nanos(cost.vmexit_ns);
            report.host_cpu += SimDuration::nanos(cost.vmexit_ns);
            report.blocks.push(b);
        }
        self.stats.plugged_bytes += report.bytes();
        self.stats.plug_ops += 1;
        Ok(report)
    }

    // --- Unplug paths ---------------------------------------------------

    /// Vanilla unplug: reclaims up to `bytes`, scanning candidates and
    /// migrating occupied pages out of chosen blocks (§2.2).
    ///
    /// Stops early when `deadline` (if given) is exceeded — the
    /// reclamation timeouts the paper observes under memory pressure
    /// (§6.2.2). The report's `shortfall_bytes` says how much was left
    /// unreclaimed.
    pub fn unplug(
        &mut self,
        guest: &mut GuestMm,
        bytes: u64,
        deadline: Option<SimDuration>,
        cost: &CostModel,
    ) -> Result<UnplugReport, VirtioMemError> {
        if !bytes.is_multiple_of(MEM_BLOCK_SIZE) {
            return Err(VirtioMemError::Misaligned);
        }
        let want = (bytes / MEM_BLOCK_SIZE) as usize;
        let mut report = UnplugReport {
            breakdown: LatencyBreakdown {
                rest: SimDuration::nanos(cost.resize_request_fixed_ns),
                ..LatencyBreakdown::default()
            },
            host_cpu: SimDuration::nanos(cost.resize_request_fixed_ns / 2),
            ..UnplugReport::default()
        };

        // The driver iterates over candidate blocks; candidates come from
        // the guest's zone state, filtered to the managed region.
        let candidates: Vec<BlockId> = guest
            .offline_candidates(self.default_zone, usize::MAX, self.strategy)
            .into_iter()
            .filter(|&b| self.is_plugged(b))
            .collect();

        for b in candidates {
            if report.blocks.len() == want {
                break;
            }
            if let Some(dl) = deadline {
                if report.breakdown.total() >= dl {
                    break;
                }
            }
            match guest.offline_block(b) {
                Ok(outcome) => {
                    self.charge_offline(&outcome, &mut report, cost);
                    guest.hot_remove_block(b).map_err(VirtioMemError::Guest)?;
                    let idx = self.block_index(b).expect("candidate in region");
                    self.plugged.clear(idx);
                    report.outcome.accumulate(&outcome);
                    report.blocks.push(b);
                    // Per-block device notification + host madvise.
                    report.breakdown.vmexits += SimDuration::nanos(cost.virtio_block_exit_ns);
                    report.host_cpu += SimDuration::nanos(cost.virtio_block_exit_ns);
                    let fixed =
                        SimDuration::nanos(cost.offline_block_fixed_ns + cost.hot_remove_block_ns);
                    report.breakdown.rest += fixed;
                    report.guest_cpu += fixed;
                }
                Err(failure) => {
                    // Wasted work still costs CPU time.
                    self.charge_offline(&failure.partial, &mut report, cost);
                    report.outcome.accumulate(&failure.partial);
                    report.failed_attempts += 1;
                }
            }
        }

        report.shortfall_bytes = (want as u64 - report.blocks.len() as u64) * MEM_BLOCK_SIZE;
        self.stats.unplugged_bytes += report.bytes();
        self.stats.unplug_ops += 1;
        if report.shortfall_bytes > 0 {
            self.stats.unplug_shortfalls += 1;
        }
        Ok(report)
    }

    /// Squeezy's partition-aware unplug: offlines the given *known-empty*
    /// blocks instantly — zero migrations (§4.1 "Unplugging a Squeezy
    /// partition").
    pub fn unplug_blocks_instant(
        &mut self,
        guest: &mut GuestMm,
        blocks: &[BlockId],
        cost: &CostModel,
    ) -> Result<UnplugReport, VirtioMemError> {
        self.unplug_blocks_instant_opts(guest, blocks, false, cost)
    }

    /// Like [`VirtioMemDevice::unplug_blocks_instant`], optionally
    /// *batching* the device notifications: one VM exit for the whole
    /// request instead of one per block, with only the host-side
    /// `madvise` still paid per range — the §8 future optimization
    /// ("batching ... to further reduce the VMexit overheads, when
    /// multiple instances need to be reclaimed concurrently").
    pub fn unplug_blocks_instant_opts(
        &mut self,
        guest: &mut GuestMm,
        blocks: &[BlockId],
        batched: bool,
        cost: &CostModel,
    ) -> Result<UnplugReport, VirtioMemError> {
        let mut report = UnplugReport {
            breakdown: LatencyBreakdown {
                rest: SimDuration::nanos(cost.resize_request_fixed_ns),
                ..LatencyBreakdown::default()
            },
            host_cpu: SimDuration::nanos(cost.resize_request_fixed_ns / 2),
            ..UnplugReport::default()
        };
        for &b in blocks {
            let idx = self.block_index(b).ok_or(VirtioMemError::RegionExhausted)?;
            if !self.plugged.get(idx) {
                return Err(VirtioMemError::Guest(MmError::BadBlockState));
            }
            let outcome = guest
                .offline_block_instant(b)
                .map_err(VirtioMemError::Guest)?;
            self.charge_offline(&outcome, &mut report, cost);
            guest.hot_remove_block(b).map_err(VirtioMemError::Guest)?;
            self.plugged.clear(idx);
            report.outcome.accumulate(&outcome);
            report.blocks.push(b);
            if batched {
                // Host still madvises each range; the exit round trip is
                // shared by the batch (added once below).
                let madvise = cost.madvise(mem_types::MEM_BLOCK_SIZE);
                report.breakdown.vmexits += madvise;
                report.host_cpu += madvise;
            } else {
                report.breakdown.vmexits += SimDuration::nanos(cost.virtio_block_exit_ns);
                report.host_cpu += SimDuration::nanos(cost.virtio_block_exit_ns);
            }
            let fixed = SimDuration::nanos(cost.offline_block_fixed_ns + cost.hot_remove_block_ns);
            report.breakdown.rest += fixed;
            report.guest_cpu += fixed;
        }
        if batched && !report.blocks.is_empty() {
            report.breakdown.vmexits += SimDuration::nanos(cost.virtio_block_exit_ns);
            report.host_cpu += SimDuration::nanos(cost.virtio_block_exit_ns);
        }
        self.stats.unplugged_bytes += report.bytes();
        self.stats.unplug_ops += 1;
        Ok(report)
    }

    /// Converts an offline outcome's mechanical counts into charged time.
    fn charge_offline(
        &self,
        outcome: &OfflineOutcome,
        report: &mut UnplugReport,
        cost: &CostModel,
    ) {
        let scan = SimDuration::nanos(cost.offline_scan_page_ns * outcome.scanned);
        let migration = cost.migrate_pages(outcome.migrated)
            + cost.migrate_huge(outcome.migrated_huge, outcome.huge_splits);
        let zeroing = cost.zero_pages(outcome.zeroed);
        report.breakdown.rest += scan;
        report.breakdown.migration += migration;
        report.breakdown.zeroing += zeroing;
        report.guest_cpu += scan + migration + zeroing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::{AllocPolicy, GuestMmConfig, ZONE_MOVABLE};
    use mem_types::{Gfn, GIB, MIB};

    fn setup(hotplug_mib: u64) -> (GuestMm, VirtioMemDevice) {
        let config = GuestMmConfig {
            boot_bytes: 256 * MIB,
            hotplug_bytes: hotplug_mib * MIB,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        };
        let guest = GuestMm::new(config);
        let region = FrameRange::new(
            Gfn(256 * MIB / mem_types::PAGE_SIZE),
            hotplug_mib * MIB / mem_types::PAGE_SIZE,
        );
        let dev = VirtioMemDevice::new(region, ZONE_MOVABLE);
        (guest, dev)
    }

    #[test]
    fn plug_makes_memory_usable() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        let report = dev.plug(&mut guest, 256 * MIB, &cost).unwrap();
        assert_eq!(report.blocks.len(), 2);
        assert_eq!(report.bytes(), 256 * MIB);
        assert_eq!(dev.plugged_bytes(), 256 * MIB);
        assert_eq!(guest.zone(ZONE_MOVABLE).free_pages, 2 * PAGES_PER_BLOCK);
        assert!(report.latency() > SimDuration::ZERO);
        // Plug cost stays within the paper's 35-45 ms ballpark.
        let r2 = dev.plug(&mut guest, 256 * MIB, &cost).unwrap();
        assert!(r2.latency() < SimDuration::millis(60));
        guest.assert_consistent();
    }

    #[test]
    fn plug_rejects_misaligned_and_exhausted() {
        let (mut guest, mut dev) = setup(256);
        let cost = CostModel::default();
        assert_eq!(
            dev.plug(&mut guest, MIB, &cost).unwrap_err(),
            VirtioMemError::Misaligned
        );
        assert_eq!(
            dev.plug(&mut guest, GIB, &cost).unwrap_err(),
            VirtioMemError::RegionExhausted
        );
    }

    #[test]
    fn unplug_empty_memory_has_no_migrations() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        dev.plug(&mut guest, 512 * MIB, &cost).unwrap();
        let report = dev.unplug(&mut guest, 256 * MIB, None, &cost).unwrap();
        assert_eq!(report.blocks.len(), 2);
        assert_eq!(report.outcome.migrated, 0);
        assert_eq!(report.shortfall_bytes, 0);
        // Zeroing still charged: isolated free pages are zeroed by
        // init_on_alloc obliviousness.
        assert!(report.breakdown.zeroing > SimDuration::ZERO);
        assert_eq!(dev.plugged_bytes(), 256 * MIB);
        guest.assert_consistent();
    }

    #[test]
    fn unplug_occupied_memory_migrates() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        dev.plug(&mut guest, 512 * MIB, &cost).unwrap();
        let pid = guest.spawn_process(AllocPolicy::MovableDefault);
        // Occupy half the hotplugged memory.
        guest.fault_anon(pid, 2 * PAGES_PER_BLOCK).unwrap();
        let report = dev.unplug(&mut guest, 256 * MIB, None, &cost).unwrap();
        assert_eq!(report.blocks.len(), 2);
        assert!(report.outcome.migrated > 0, "occupied pages migrated");
        assert!(report.breakdown.migration > SimDuration::ZERO);
        // Process kept its memory.
        assert_eq!(guest.process(pid).unwrap().rss_pages(), 2 * PAGES_PER_BLOCK);
        guest.assert_consistent();
    }

    #[test]
    fn unplug_huge_backed_memory_migrates_whole() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        dev.plug(&mut guest, 512 * MIB, &cost).unwrap();
        let pid = guest.spawn_process(AllocPolicy::MovableDefault);
        // 128 MiB of THP-backed memory: 64 huge pages in one block.
        guest.fault_anon_huge(pid, 64).unwrap();
        let report = dev.unplug(&mut guest, 512 * MIB, None, &cost).unwrap();
        // The huge pages had order-9 targets (other blocks + normal
        // zone), so they moved whole, never split. The linear
        // highest-first scan cascades them through each successive
        // block, so the count exceeds the 64 resident huge pages —
        // exactly the repeated-migration pathology §2.2 describes.
        assert!(report.outcome.migrated_huge >= 64, "whole-huge migrations");
        assert_eq!(report.outcome.huge_splits, 0, "targets always existed");
        assert_eq!(report.outcome.migrated, 0, "no base-page migrations");
        // Whole-huge migration must be far cheaper than splitting each
        // of those migrations into 512 base-page moves.
        assert!(
            report.breakdown.migration
                < cost.migrate_pages(report.outcome.migrated_huge * guest_mm::PAGES_PER_HUGE) / 2,
            "huge migration not amortized: {}",
            report.breakdown.migration
        );
        assert_eq!(guest.process(pid).unwrap().rss_huge(), 64);
        guest.assert_consistent();
    }

    #[test]
    fn unplug_respects_deadline() {
        let (mut guest, mut dev) = setup(1024);
        let cost = CostModel::default();
        dev.plug(&mut guest, 1024 * MIB, &cost).unwrap();
        let pid = guest.spawn_process(AllocPolicy::MovableDefault);
        guest.fault_anon(pid, 4 * PAGES_PER_BLOCK).unwrap();
        // A deadline shorter than one migration-heavy block forces a
        // shortfall.
        let report = dev
            .unplug(&mut guest, 512 * MIB, Some(SimDuration::millis(20)), &cost)
            .unwrap();
        assert!(report.shortfall_bytes > 0, "deadline forced a shortfall");
        assert!(dev.stats().unplug_shortfalls > 0);
        guest.assert_consistent();
    }

    #[test]
    fn instant_unplug_of_empty_blocks() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        let plugged = dev.plug(&mut guest, 512 * MIB, &cost).unwrap();
        guest.unplug_aware_zeroing_skip = true;
        let report = dev
            .unplug_blocks_instant(&mut guest, &plugged.blocks, &cost)
            .unwrap();
        assert_eq!(report.blocks.len(), 4);
        assert_eq!(report.outcome.migrated, 0);
        assert_eq!(report.outcome.zeroed, 0);
        assert_eq!(report.breakdown.migration, SimDuration::ZERO);
        assert_eq!(report.breakdown.zeroing, SimDuration::ZERO);
        assert_eq!(dev.plugged_bytes(), 0);
        guest.assert_consistent();
    }

    #[test]
    fn instant_unplug_rejects_occupied_block() {
        let (mut guest, mut dev) = setup(256);
        let cost = CostModel::default();
        let plugged = dev.plug(&mut guest, 128 * MIB, &cost).unwrap();
        let pid = guest.spawn_process(AllocPolicy::MovableDefault);
        guest.fault_anon(pid, 1).unwrap();
        let err = dev
            .unplug_blocks_instant(&mut guest, &plugged.blocks, &cost)
            .unwrap_err();
        assert_eq!(err, VirtioMemError::Guest(MmError::BlockNotEmpty));
    }

    #[test]
    fn squeezy_unplug_is_much_faster_than_vanilla() {
        // The headline comparison in miniature: unplug 256 MiB after a
        // process died, vanilla (interleaved) vs instant (partitioned).
        let cost = CostModel::default();

        // Vanilla: another process's pages interleave in the same blocks.
        let (mut guest, mut dev) = setup(512);
        dev.plug(&mut guest, 512 * MIB, &cost).unwrap();
        let keep = guest.spawn_process(AllocPolicy::MovableDefault);
        let die = guest.spawn_process(AllocPolicy::MovableDefault);
        // Interleave allocations of the two processes.
        for _ in 0..(PAGES_PER_BLOCK / 256) {
            guest.fault_anon(keep, 512).unwrap();
            guest.fault_anon(die, 512).unwrap();
        }
        guest.exit_process(die).unwrap();
        let vanilla = dev.unplug(&mut guest, 256 * MIB, None, &cost).unwrap();
        assert_eq!(vanilla.shortfall_bytes, 0);
        assert!(vanilla.outcome.migrated > 0);

        // Squeezy-style: the dying process lived alone in its blocks.
        let (mut guest2, mut dev2) = setup(512);
        let plugged = dev2.plug(&mut guest2, 256 * MIB, &cost).unwrap();
        guest2.unplug_aware_zeroing_skip = true;
        let squeezy = dev2
            .unplug_blocks_instant(&mut guest2, &plugged.blocks, &cost)
            .unwrap();

        let speedup = vanilla.latency().as_nanos() as f64 / squeezy.latency().as_nanos() as f64;
        assert!(
            speedup > 3.0,
            "expected large speedup, got {speedup:.2}x ({} vs {})",
            vanilla.latency(),
            squeezy.latency()
        );
    }

    #[test]
    fn stats_track_operations() {
        let (mut guest, mut dev) = setup(512);
        let cost = CostModel::default();
        dev.plug(&mut guest, 256 * MIB, &cost).unwrap();
        dev.unplug(&mut guest, 128 * MIB, None, &cost).unwrap();
        let s = dev.stats();
        assert_eq!(s.plug_ops, 1);
        assert_eq!(s.unplug_ops, 1);
        assert_eq!(s.plugged_bytes, 256 * MIB);
        assert_eq!(s.unplugged_bytes, 128 * MIB);
    }
}
