//! The VM composite: guest kernel + EPT + paravirtual memory devices.
//!
//! [`Vm`] wires a [`GuestMm`] to its [`Ept`] and devices and owns the
//! host-visible consequences of guest activity:
//!
//! * guest faults lazily back pages with host memory (nested faults);
//! * guest frees are *invisible* to the host — backing stays until
//!   virtio-mem unplug or balloon inflation releases it (the Figure-1
//!   "host line stays flat" effect);
//! * unplugged block ranges are `madvise(MADV_DONTNEED)`d away,
//!   shrinking host usage.

use balloon::{BalloonDevice, BalloonReport};
use guest_mm::{FileId, GuestMm, GuestMmConfig, MmError, Pid, ZONE_MOVABLE};
use mem_types::{FrameRange, Gfn, PAGES_PER_BLOCK, PAGE_SIZE};
use sim_core::{CostModel, SimDuration};
use virtio_mem::{PlugReport, UnplugReport, VirtioMemDevice, VirtioMemError};

use crate::ept::Ept;
use crate::hostmem::{HostMemError, HostMemory};

/// Errors surfaced by VM-level operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmmError {
    /// The host ran out of physical memory.
    HostOom,
    /// A guest memory-management error.
    Guest(MmError),
    /// A virtio-mem device error.
    Virtio(VirtioMemError),
}

impl From<HostMemError> for VmmError {
    fn from(_: HostMemError) -> Self {
        VmmError::HostOom
    }
}

impl From<MmError> for VmmError {
    fn from(e: MmError) -> Self {
        VmmError::Guest(e)
    }
}

impl From<VirtioMemError> for VmmError {
    fn from(e: VirtioMemError) -> Self {
        VmmError::Virtio(e)
    }
}

impl core::fmt::Display for VmmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmmError::HostOom => f.write_str("host out of memory"),
            VmmError::Guest(e) => write!(f, "guest: {e}"),
            VmmError::Virtio(e) => write!(f, "virtio-mem: {e}"),
        }
    }
}

impl std::error::Error for VmmError {}

/// Cost and backing effects of a fault burst.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCharge {
    /// Guest pages faulted (minor faults), in 4 KiB units.
    pub pages: u64,
    /// Pages that were newly backed by host memory (nested faults), in
    /// 4 KiB units.
    pub newly_backed: u64,
    /// Page-cache hits (file touches only).
    pub cache_hits: u64,
    /// Huge pages mapped as real 2 MiB mappings (huge touches only).
    pub huge_mapped: u64,
    /// Huge requests that fell back to base pages (huge touches only).
    pub huge_fallbacks: u64,
    /// Total latency of the burst.
    pub latency: SimDuration,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Guest memory layout.
    pub guest: GuestMmConfig,
    /// Number of vCPUs (drives the FaaS CPU pools).
    pub vcpus: f64,
}

/// A running VM: guest kernel, EPT, virtio-mem and balloon devices.
pub struct Vm {
    /// The guest kernel memory manager.
    pub guest: GuestMm,
    /// The nested page table.
    pub ept: Ept,
    /// The virtio-mem device (managed region = the hotplug range).
    pub virtio_mem: VirtioMemDevice,
    /// The balloon device.
    pub balloon: BalloonDevice,
    /// vCPU count.
    pub vcpus: f64,
    /// Reusable scratch for run-based fault paths (capacity persists
    /// across touches, so warmed-up VMs fault without allocating).
    fault_runs: Vec<FrameRange>,
}

impl Vm {
    /// Boots a VM, reserving host backing for the guest kernel's
    /// boot-time working set.
    pub fn boot(config: VmConfig, host: &mut HostMemory) -> Result<Vm, VmmError> {
        let guest = GuestMm::new(config.guest);
        let boot_frames = config.guest.boot_bytes / PAGE_SIZE;
        let hotplug_frames = config.guest.hotplug_bytes / PAGE_SIZE;
        let mut ept = Ept::new(boot_frames + hotplug_frames);
        let kpages: Vec<Gfn> = guest.kernel_pages().to_vec();
        host.reserve(kpages.len() as u64 * PAGE_SIZE)?;
        ept.populate(&kpages);
        let region = FrameRange::new(Gfn(boot_frames), hotplug_frames);
        Ok(Vm {
            guest,
            ept,
            virtio_mem: VirtioMemDevice::new(region, ZONE_MOVABLE),
            balloon: BalloonDevice::new(),
            vcpus: config.vcpus,
            fault_runs: Vec::new(),
        })
    }

    /// Returns the VM's host-resident set (bytes the host has committed).
    pub fn host_rss(&self) -> u64 {
        self.ept.backed_bytes()
    }

    /// Faults `pages` anonymous pages into `pid`, backing fresh ones with
    /// host memory.
    pub fn touch_anon(
        &mut self,
        host: &mut HostMemory,
        pid: Pid,
        pages: u64,
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        let mut runs = std::mem::take(&mut self.fault_runs);
        runs.clear();
        let backed = self
            .guest
            .fault_anon_runs(pid, pages, &mut runs)
            .map_err(VmmError::from)
            .and_then(|()| self.back_runs(host, &runs, cost));
        self.fault_runs = runs;
        let charge = backed?;
        Ok(FaultCharge {
            pages,
            newly_backed: charge.newly_backed,
            latency: SimDuration::nanos(cost.guest_minor_fault_ns * pages) + charge.latency,
            ..FaultCharge::default()
        })
    }

    /// Faults `n_huge` 2 MiB huge pages into `pid`, backing each mapped
    /// huge page with a single 2 MiB nested fault (THP on the host, §5.1)
    /// and any fallback base pages with 4 KiB nested faults.
    pub fn touch_anon_huge(
        &mut self,
        host: &mut HostMemory,
        pid: Pid,
        n_huge: u64,
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        let outcome = self.guest.fault_anon_huge(pid, n_huge)?;
        let mut latency = SimDuration::ZERO;
        let mut newly_backed = 0;
        // Huge mappings: one reservation + one 2 MiB nested fault per
        // head whose range is not yet fully backed.
        for &h in &outcome.huge_heads {
            let range = FrameRange::new(h, guest_mm::PAGES_PER_HUGE);
            let fresh = self.ept.count_unbacked(range);
            if fresh > 0 {
                host.reserve(fresh * PAGE_SIZE)?;
                self.ept.populate_range(range);
                newly_backed += fresh;
                latency += cost.ept_faults_huge(1);
            } else {
                latency += SimDuration::nanos(cost.guest_minor_fault_ns);
            }
        }
        // Fallback base pages go through the ordinary path.
        let base = self.back_pages(host, &outcome.fallback_pages, cost)?;
        newly_backed += base.newly_backed;
        latency += base.latency
            + SimDuration::nanos(cost.guest_minor_fault_ns * outcome.fallback_pages.len() as u64);
        Ok(FaultCharge {
            pages: outcome.total_pages(),
            newly_backed,
            cache_hits: 0,
            huge_mapped: outcome.huge_heads.len() as u64,
            huge_fallbacks: n_huge - outcome.huge_heads.len() as u64,
            latency,
        })
    }

    /// Touches the first `want_pages` of `file`: cache hits are nearly
    /// free, misses pay a storage read plus nested faults.
    pub fn touch_file(
        &mut self,
        host: &mut HostMemory,
        file: FileId,
        want_pages: u64,
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        let mut runs = std::mem::take(&mut self.fault_runs);
        runs.clear();
        let result = self
            .guest
            .fault_file_runs(file, want_pages, &mut runs)
            .map_err(VmmError::from)
            .and_then(|outcome| Ok((outcome, self.back_runs(host, &runs, cost)?)));
        self.fault_runs = runs;
        let (outcome, backing) = result?;
        debug_assert_eq!(
            self.fault_runs.iter().map(|r| r.count).sum::<u64>(),
            outcome.new_pages
        );
        let miss_bytes_mib = outcome.new_pages * PAGE_SIZE / (1 << 20);
        let hit_bytes_mib = outcome.cached_pages * PAGE_SIZE / (1 << 20);
        let latency = SimDuration::nanos(cost.disk_read_mib_ns * miss_bytes_mib)
            + SimDuration::nanos(cost.cached_read_mib_ns * hit_bytes_mib)
            + backing.latency;
        Ok(FaultCharge {
            pages: outcome.new_pages + outcome.cached_pages,
            newly_backed: backing.newly_backed,
            cache_hits: outcome.cached_pages,
            latency,
            ..FaultCharge::default()
        })
    }

    /// Plugs `bytes` of memory via virtio-mem (no host backing yet:
    /// memory is backed on first touch, §3 "Physical memory allocation").
    pub fn plug(&mut self, bytes: u64, cost: &CostModel) -> Result<PlugReport, VmmError> {
        Ok(self.virtio_mem.plug(&mut self.guest, bytes, cost)?)
    }

    /// Unplugs up to `bytes` via vanilla virtio-mem, releasing the host
    /// backing of removed blocks.
    pub fn unplug(
        &mut self,
        host: &mut HostMemory,
        bytes: u64,
        deadline: Option<SimDuration>,
        cost: &CostModel,
    ) -> Result<UnplugReport, VmmError> {
        let report = self
            .virtio_mem
            .unplug(&mut self.guest, bytes, deadline, cost)?;
        self.release_blocks(host, &report.blocks);
        Ok(report)
    }

    /// Squeezy-style instant unplug of specific empty blocks, releasing
    /// their host backing.
    pub fn unplug_blocks_instant(
        &mut self,
        host: &mut HostMemory,
        blocks: &[mem_types::BlockId],
        cost: &CostModel,
    ) -> Result<UnplugReport, VmmError> {
        let report = self
            .virtio_mem
            .unplug_blocks_instant(&mut self.guest, blocks, cost)?;
        self.release_blocks(host, &report.blocks);
        Ok(report)
    }

    /// Runs one free-page-reporting cycle (\[21\]): the guest reports
    /// unreported free chunks and the host releases their backing.
    /// Capacity stays plugged — only the backing shrinks.
    pub fn report_free_pages(
        &mut self,
        host: &mut HostMemory,
        reporter: &mut balloon::FreePageReporter,
        cost: &CostModel,
    ) -> balloon::ReportingCycle {
        let ept = &self.ept;
        let cycle = reporter.cycle(
            &self.guest,
            |g, o| ept.count_unbacked(FrameRange::new(g, 1 << o)) < (1 << o),
            cost,
        );
        let mut freed = 0;
        for &(g, o) in &cycle.chunks {
            freed += self.ept.release_range(FrameRange::new(g, 1 << o));
        }
        host.release(freed * PAGE_SIZE);
        cycle
    }

    /// Reclaims `bytes` by balloon inflation, releasing each inflated
    /// page's host backing individually.
    pub fn balloon_reclaim(
        &mut self,
        host: &mut HostMemory,
        bytes: u64,
        cost: &CostModel,
    ) -> Result<BalloonReport, VmmError> {
        let before = self.balloon.held_pages().len();
        let report = self.balloon.inflate(&mut self.guest, bytes, cost)?;
        let fresh: Vec<Gfn> = self.balloon.held_pages()[before..].to_vec();
        let freed = self.ept.release_pages(&fresh);
        host.release(freed * PAGE_SIZE);
        Ok(report)
    }

    /// Shuts the VM down, returning all host backing.
    pub fn shutdown(mut self, host: &mut HostMemory) {
        let total_frames = self.guest.memmap().len();
        let freed = self
            .ept
            .release_range(FrameRange::new(Gfn(0), total_frames));
        host.release(freed * PAGE_SIZE);
    }

    /// Backs `gfns` with host memory, returning the nested-fault charge.
    fn back_pages(
        &mut self,
        host: &mut HostMemory,
        gfns: &[Gfn],
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        let fresh: Vec<Gfn> = gfns
            .iter()
            .copied()
            .filter(|&g| !self.ept.is_backed(g))
            .collect();
        host.reserve(fresh.len() as u64 * PAGE_SIZE)?;
        let newly = self.ept.populate(&fresh);
        debug_assert_eq!(newly, fresh.len() as u64);
        Ok(FaultCharge {
            newly_backed: newly,
            latency: cost.ept_faults(newly),
            ..FaultCharge::default()
        })
    }

    /// Backs contiguous frame runs with host memory — the range-based
    /// sibling of [`Vm::back_pages`]: one reservation for the whole
    /// burst, then word-granular EPT populates per run.
    fn back_runs(
        &mut self,
        host: &mut HostMemory,
        runs: &[FrameRange],
        cost: &CostModel,
    ) -> Result<FaultCharge, VmmError> {
        let fresh: u64 = runs.iter().map(|&r| self.ept.count_unbacked(r)).sum();
        host.reserve(fresh * PAGE_SIZE)?;
        let mut newly = 0;
        for &r in runs {
            newly += self.ept.populate_range(r);
        }
        debug_assert_eq!(newly, fresh);
        Ok(FaultCharge {
            newly_backed: newly,
            latency: cost.ept_faults(newly),
            ..FaultCharge::default()
        })
    }

    /// Releases host backing of unplugged blocks.
    fn release_blocks(&mut self, host: &mut HostMemory, blocks: &[mem_types::BlockId]) {
        let mut freed = 0;
        for b in blocks {
            freed += self
                .ept
                .release_range(FrameRange::new(b.first_frame(), PAGES_PER_BLOCK));
        }
        host.release(freed * PAGE_SIZE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::AllocPolicy;
    use mem_types::{BlockId, GIB, MIB};

    fn config() -> VmConfig {
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 256 * MIB,
                hotplug_bytes: GIB,
                kernel_bytes: 64 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        }
    }

    #[test]
    fn boot_backs_kernel_memory() {
        let mut host = HostMemory::new(8 * GIB);
        let vm = Vm::boot(config(), &mut host).unwrap();
        assert_eq!(vm.host_rss(), 64 * MIB);
        assert_eq!(host.used_bytes(), 64 * MIB);
    }

    #[test]
    fn anon_touch_backs_host_memory_once() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let c = vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        assert_eq!(c.pages, 1000);
        assert_eq!(c.newly_backed, 1000);
        assert!(c.latency > SimDuration::ZERO);
        let rss = vm.host_rss();
        assert_eq!(rss, 64 * MIB + 1000 * PAGE_SIZE);

        // Guest free + refault: pages reused, no new host backing.
        vm.guest.free_anon(pid, 1000).unwrap();
        assert_eq!(vm.host_rss(), rss, "host blind to guest frees");
        let c2 = vm.touch_anon(&mut host, pid, 500, &cost).unwrap();
        assert_eq!(c2.newly_backed, 0, "reused pages were already backed");
        assert_eq!(vm.host_rss(), rss);
    }

    #[test]
    fn plug_then_unplug_releases_host_memory() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        vm.plug(512 * MIB, &cost).unwrap();
        assert_eq!(vm.host_rss(), 64 * MIB, "plug does not back memory");

        // Touch the plugged memory.
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 2 * PAGES_PER_BLOCK, &cost)
            .unwrap();
        let rss_peak = vm.host_rss();
        assert_eq!(rss_peak, 64 * MIB + 256 * MIB);

        // Kill the process and reclaim.
        vm.guest.exit_process(pid).unwrap();
        let report = vm.unplug(&mut host, 256 * MIB, None, &cost).unwrap();
        assert_eq!(report.blocks.len(), 2);
        assert!(vm.host_rss() < rss_peak, "unplug released backing");
        assert_eq!(host.used_bytes(), vm.host_rss());
    }

    #[test]
    fn balloon_reclaim_releases_per_page() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        vm.guest.free_anon(pid, 10_000).unwrap();
        let rss = vm.host_rss();
        let report = vm.balloon_reclaim(&mut host, 32 * MIB, &cost).unwrap();
        assert_eq!(report.bytes(), 32 * MIB);
        // Balloon grabbed (mostly) previously-backed free pages.
        assert!(vm.host_rss() < rss);
        assert_eq!(host.used_bytes(), vm.host_rss());
    }

    #[test]
    fn shutdown_returns_everything() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 5000, &cost).unwrap();
        assert!(host.used_bytes() > 0);
        vm.shutdown(&mut host);
        assert_eq!(host.used_bytes(), 0);
    }

    #[test]
    fn host_oom_propagates() {
        let mut host = HostMemory::new(80 * MIB);
        let vm = Vm::boot(config(), &mut host).unwrap();
        let mut vm = vm;
        let cost = CostModel::default();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        // 80 MiB host, 64 MiB kernel: ~16 MiB of slack.
        let r = vm.touch_anon(&mut host, pid, 10_000, &cost);
        assert_eq!(r.unwrap_err(), VmmError::HostOom);
    }

    #[test]
    fn file_touch_uses_cache() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        let f = FileId(1);
        let c1 = vm.touch_file(&mut host, f, 25_600, &cost).unwrap(); // 100 MiB
        assert_eq!(c1.cache_hits, 0);
        assert_eq!(c1.newly_backed, 25_600);
        let c2 = vm.touch_file(&mut host, f, 25_600, &cost).unwrap();
        assert_eq!(c2.cache_hits, 25_600);
        assert_eq!(c2.newly_backed, 0);
        assert!(
            c2.latency < c1.latency / 10,
            "cache hit ({}) ≫ faster than miss ({})",
            c2.latency,
            c1.latency
        );
    }

    #[test]
    fn free_page_reporting_releases_backing_without_unplug() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        vm.plug(512 * MIB, &cost).unwrap();
        let mut fpr = balloon::FreePageReporter::new(balloon::DEFAULT_REPORT_ORDER);
        // Converge on the initial state (plugged-but-untouched memory
        // has no backing to release).
        vm.report_free_pages(&mut host, &mut fpr, &cost);
        // A workload touches 256 MiB then exits: backing stays (Fig. 1).
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 256 * MIB / PAGE_SIZE, &cost)
            .unwrap();
        vm.guest.exit_process(pid).unwrap();
        let rss_before = vm.host_rss();
        // Reporting cycles recover the freed memory — without any
        // unplug: the guest's plugged capacity is unchanged.
        let plugged = vm.virtio_mem.plugged_bytes();
        let cycle = vm.report_free_pages(&mut host, &mut fpr, &cost);
        assert!(cycle.bytes() >= 256 * MIB);
        assert!(vm.host_rss() + 256 * MIB <= rss_before + MIB);
        assert_eq!(vm.virtio_mem.plugged_bytes(), plugged);
        assert_eq!(host.used_bytes(), vm.host_rss());
        // Refaulting pays nested faults again.
        let pid2 = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let c = vm.touch_anon(&mut host, pid2, 1000, &cost).unwrap();
        assert_eq!(c.newly_backed, 1000);
        vm.guest.assert_consistent();
    }

    #[test]
    fn huge_touch_backs_2mib_at_a_time() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        vm.plug(256 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        let c = vm.touch_anon_huge(&mut host, pid, 16, &cost).unwrap();
        assert_eq!(c.huge_mapped, 16);
        assert_eq!(c.huge_fallbacks, 0);
        assert_eq!(c.pages, 16 * 512);
        assert_eq!(c.newly_backed, 16 * 512);
        assert_eq!(vm.host_rss(), 64 * MIB + 32 * MIB);
        // 16 huge nested faults are much cheaper than 8192 base faults.
        let base_cost = cost.ept_faults(16 * 512);
        assert!(
            c.latency < base_cost / 5,
            "huge backing {} vs base {}",
            c.latency,
            base_cost
        );
    }

    #[test]
    fn huge_retouch_is_minor() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        vm.plug(256 * MIB, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon_huge(&mut host, pid, 4, &cost).unwrap();
        vm.guest.free_anon_huge(pid, 4).unwrap();
        let rss = vm.host_rss();
        // Refault: the buddy hands back the same (already backed) range.
        let c = vm.touch_anon_huge(&mut host, pid, 4, &cost).unwrap();
        assert_eq!(c.newly_backed, 0);
        assert_eq!(vm.host_rss(), rss);
    }

    #[test]
    fn squeezy_blocks_instant_path() {
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = Vm::boot(config(), &mut host).unwrap();
        let cost = CostModel::default();
        let plugged = vm.plug(256 * MIB, &cost).unwrap();
        let blocks: Vec<BlockId> = plugged.blocks.clone();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, PAGES_PER_BLOCK, &cost)
            .unwrap();
        vm.guest.exit_process(pid).unwrap();
        vm.guest.unplug_aware_zeroing_skip = true;
        let report = vm.unplug_blocks_instant(&mut host, &blocks, &cost).unwrap();
        assert_eq!(report.outcome.migrated, 0);
        assert_eq!(vm.host_rss(), 64 * MIB, "backing fully released");
    }
}
