//! The nested (second-stage) page table of one VM.
//!
//! Guest frames are backed by host memory lazily: the first guest touch
//! of a fresh page triggers a nested page fault (a VM exit) that maps a
//! host frame. This is why plugging is cheap but first-touch of freshly
//! plugged memory taxes cold starts by 3-35 % (§6.2.1), and why the host
//! does not see guest frees until the VMM `madvise`s ranges away
//! (Figure 1's flat host line).

use mem_types::{Bitmap, FrameRange, Gfn, PAGE_SIZE};

/// Per-VM EPT state: which guest frames have host backing.
pub struct Ept {
    backed: Bitmap,
}

impl Ept {
    /// Creates an EPT covering `frames` guest frames, none backed.
    pub fn new(frames: u64) -> Self {
        Ept {
            backed: Bitmap::new(frames as usize),
        }
    }

    /// Returns the number of backed guest pages.
    pub fn backed_pages(&self) -> u64 {
        self.backed.count_ones() as u64
    }

    /// Returns the backed bytes (the VM's host RSS).
    pub fn backed_bytes(&self) -> u64 {
        self.backed_pages() * PAGE_SIZE
    }

    /// Returns `true` if `g` currently has host backing.
    pub fn is_backed(&self, g: Gfn) -> bool {
        self.backed.get(g.0 as usize)
    }

    /// Backs the given frames, returning how many were *newly* backed
    /// (each newly backed frame cost one nested fault).
    pub fn populate(&mut self, gfns: &[Gfn]) -> u64 {
        let mut new = 0;
        for &g in gfns {
            if !self.backed.set(g.0 as usize) {
                new += 1;
            }
        }
        new
    }

    /// Backs every frame of `range`, returning the newly backed count.
    pub fn populate_range(&mut self, range: FrameRange) -> u64 {
        self.backed
            .set_range(range.start.0 as usize, range.count as usize) as u64
    }

    /// Returns how many frames of `range` currently lack host backing
    /// (what a populate of the range would need to reserve).
    pub fn count_unbacked(&self, range: FrameRange) -> u64 {
        self.backed
            .count_zeros_in(range.start.0 as usize, range.count as usize) as u64
    }

    /// Releases backing for every frame of `range`
    /// (`madvise(MADV_DONTNEED)` after unplug), returning freed pages.
    pub fn release_range(&mut self, range: FrameRange) -> u64 {
        self.backed
            .clear_range(range.start.0 as usize, range.count as usize) as u64
    }

    /// Releases backing for individual frames (balloon inflation),
    /// returning freed pages.
    pub fn release_pages(&mut self, gfns: &[Gfn]) -> u64 {
        let mut freed = 0;
        for &g in gfns {
            if self.backed.clear(g.0 as usize) {
                freed += 1;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_counts_only_new() {
        let mut e = Ept::new(100);
        assert_eq!(e.populate(&[Gfn(1), Gfn(2), Gfn(3)]), 3);
        assert_eq!(e.populate(&[Gfn(2), Gfn(3), Gfn(4)]), 1);
        assert_eq!(e.backed_pages(), 4);
        assert!(e.is_backed(Gfn(1)));
        assert!(!e.is_backed(Gfn(0)));
    }

    #[test]
    fn range_populate_and_release() {
        let mut e = Ept::new(1000);
        let r = FrameRange::new(Gfn(100), 50);
        assert_eq!(e.populate_range(r), 50);
        assert_eq!(e.populate_range(r), 0, "idempotent");
        assert_eq!(e.backed_bytes(), 50 * PAGE_SIZE);
        assert_eq!(e.release_range(FrameRange::new(Gfn(100), 10)), 10);
        assert_eq!(e.backed_pages(), 40);
        assert_eq!(e.release_range(r), 40);
        assert_eq!(e.backed_pages(), 0);
    }

    #[test]
    fn release_pages_individual() {
        let mut e = Ept::new(10);
        e.populate(&[Gfn(1), Gfn(5)]);
        assert_eq!(e.release_pages(&[Gfn(1), Gfn(2)]), 1);
        assert_eq!(e.backed_pages(), 1);
    }
}
