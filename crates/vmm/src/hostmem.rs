//! Host physical memory accounting.
//!
//! The memory-limited experiment (§6.2.2, Figure 10) restricts the host
//! to ~70 % of the peak footprint, forcing scale-up events to wait for
//! reclamation. [`HostMemory`] is the single source of truth for how many
//! host bytes are committed to VMs; EPT populate operations reserve from
//! it and unplug/madvise releases back into it.

use sim_core::SimTime;
use sim_core::TimeSeries;

/// Errors from host memory operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostMemError {
    /// The host has no free memory for the reservation.
    HostOom,
}

impl core::fmt::Display for HostMemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("host out of memory")
    }
}

impl std::error::Error for HostMemError {}

/// Host physical memory: capacity, usage, and a usage time series.
pub struct HostMemory {
    capacity: u64,
    used: u64,
    usage: TimeSeries,
}

impl HostMemory {
    /// Creates a host with `capacity` bytes (`u64::MAX` ≈ unlimited).
    pub fn new(capacity: u64) -> Self {
        HostMemory {
            capacity,
            used: 0,
            usage: TimeSeries::new(),
        }
    }

    /// Returns the host capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns the bytes currently committed to VMs.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Returns the free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Reserves `bytes`, failing if the host is out of memory.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), HostMemError> {
        if self.used + bytes > self.capacity {
            return Err(HostMemError::HostOom);
        }
        self.used += bytes;
        Ok(())
    }

    /// Releases `bytes` back to the host.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is used (accounting bug).
    pub fn release(&mut self, bytes: u64) {
        assert!(bytes <= self.used, "releasing {bytes} > used {}", self.used);
        self.used -= bytes;
    }

    /// Records the current usage at `t` into the usage time series.
    pub fn sample(&mut self, t: SimTime) {
        self.usage.push(t, self.used as f64);
    }

    /// Returns the recorded usage time series (bytes over time).
    pub fn usage_series(&self) -> &TimeSeries {
        &self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut h = HostMemory::new(1000);
        assert_eq!(h.free_bytes(), 1000);
        h.reserve(400).unwrap();
        assert_eq!(h.used_bytes(), 400);
        assert_eq!(h.free_bytes(), 600);
        h.release(100);
        assert_eq!(h.used_bytes(), 300);
    }

    #[test]
    fn reserve_fails_at_capacity() {
        let mut h = HostMemory::new(100);
        h.reserve(100).unwrap();
        assert_eq!(h.reserve(1), Err(HostMemError::HostOom));
        // Failed reserve leaves accounting untouched.
        assert_eq!(h.used_bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut h = HostMemory::new(100);
        h.release(1);
    }

    #[test]
    fn usage_series_records() {
        let mut h = HostMemory::new(1000);
        h.sample(SimTime(0));
        h.reserve(500).unwrap();
        h.sample(SimTime(10));
        let pts = h.usage_series().points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[1].1, 500.0);
    }
}
