//! The host/VMM side of the simulation.
//!
//! Models the Cloud Hypervisor role in the paper's setup: host physical
//! memory accounting ([`HostMemory`]), per-VM nested page tables
//! ([`Ept`]) with lazy populate on first touch and
//! `madvise(MADV_DONTNEED)` release after unplug, and the [`Vm`]
//! composite that wires the guest kernel to its devices.

pub mod ept;
pub mod hostmem;
pub mod vm;

pub use ept::Ept;
pub use hostmem::{HostMemError, HostMemory};
pub use vm::{FaultCharge, Vm, VmConfig, VmmError};
