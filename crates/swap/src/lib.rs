//! Swap-based VM memory elasticity (the related-work baseline of §8).
//!
//! Before hot(un)plug interfaces matured, VM memory elasticity was
//! commonly realized with swapping — vSwapper, Memflex, and the
//! transcendent-memory/frontswap line of work. Instead of removing
//! memory from the guest, cold pages are written out to a host-side
//! swap backend and their host backing is released (fully, for a disk
//! backend; partially, for a compressed in-memory pool). The guest's
//! logical memory stays the same; touching a swapped page pays a major
//! fault.
//!
//! Two backends are modelled:
//!
//! * [`SwapBackend::Disk`] — classic swap to SSD: host memory fully
//!   released, slow synchronous swap-ins;
//! * [`SwapBackend::Compressed`] — zswap/frontswap-style pool: faster
//!   both ways, but the host retains `retain_ratio` of every swapped
//!   byte.
//!
//! Unlike unplugging, swap can reclaim memory that is *still in use* —
//! its niche is idle-but-alive instances (keep-alive), which is exactly
//! where the paper's §7 soft-memory proposal competes: swap preserves
//! the state it evicts (slow to restore), soft revocation discards it
//! (cheap to reclaim, rebuilt on demand).

use guest_mm::Pid;
use mem_types::PAGE_SIZE;
use sim_core::{CostModel, SimDuration};
use vmm::{HostMemory, Vm, VmmError};

/// Where swapped pages go on the host.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SwapBackend {
    /// SSD-backed swap: host memory fully released.
    Disk,
    /// Compressed in-memory pool retaining `retain_ratio` of each page.
    Compressed {
        /// Fraction of each swapped byte the host still holds
        /// (typical zswap ratios: 0.3-0.5).
        retain_ratio: f64,
    },
}

/// Report of one swap operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwapReport {
    /// Pages moved.
    pub pages: u64,
    /// Host bytes released (swap-out) or re-reserved (swap-in).
    pub host_bytes: u64,
    /// Wall latency of the operation.
    pub latency: SimDuration,
}

/// Cumulative device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwapStats {
    /// Pages ever swapped out.
    pub pages_out: u64,
    /// Pages ever swapped back in.
    pub pages_in: u64,
}

/// The host-side swap device of one VM.
pub struct SwapDevice {
    backend: SwapBackend,
    /// Pages currently held by the device, per process.
    held: std::collections::HashMap<u32, u64>,
    /// Host bytes pinned by the compressed pool.
    pool_bytes: u64,
    stats: SwapStats,
}

impl SwapDevice {
    /// Creates a swap device with the given backend.
    pub fn new(backend: SwapBackend) -> Self {
        SwapDevice {
            backend,
            held: std::collections::HashMap::new(),
            pool_bytes: 0,
            stats: SwapStats::default(),
        }
    }

    /// Returns the backend.
    pub fn backend(&self) -> SwapBackend {
        self.backend
    }

    /// Returns the device statistics.
    pub fn stats(&self) -> &SwapStats {
        &self.stats
    }

    /// Returns the pages the device currently holds for `pid`.
    pub fn held_pages(&self, pid: Pid) -> u64 {
        self.held.get(&pid.0).copied().unwrap_or(0)
    }

    /// Host bytes pinned by the compressed pool (0 for disk swap).
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }

    /// Swaps out the `pages` oldest anonymous pages of `pid`, releasing
    /// their host backing (minus the compressed pool's retained share).
    pub fn swap_out(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        pid: Pid,
        pages: u64,
        cost: &CostModel,
    ) -> Result<SwapReport, VmmError> {
        let victims = vm.guest.swap_out_anon(pid, pages)?;
        let n = victims.len() as u64;
        let freed = vm.ept.release_pages(&victims);
        let released = match self.backend {
            SwapBackend::Disk => freed * PAGE_SIZE,
            SwapBackend::Compressed { retain_ratio } => {
                let retained = (n as f64 * PAGE_SIZE as f64 * retain_ratio) as u64;
                self.pool_bytes += retained;
                (freed * PAGE_SIZE).saturating_sub(retained)
            }
        };
        host.release(released);
        *self.held.entry(pid.0).or_default() += n;
        self.stats.pages_out += n;
        let per_page = match self.backend {
            SwapBackend::Disk => cost.swap_out_page_disk_ns,
            SwapBackend::Compressed { .. } => cost.swap_compress_page_ns,
        };
        Ok(SwapReport {
            pages: n,
            host_bytes: released,
            latency: SimDuration::nanos(per_page * n),
        })
    }

    /// Swaps up to `pages` of `pid`'s pages back in: fresh guest pages
    /// are faulted, host backing re-reserved, and the major-fault read
    /// (or decompression) charged.
    pub fn swap_in(
        &mut self,
        vm: &mut Vm,
        host: &mut HostMemory,
        pid: Pid,
        pages: u64,
        cost: &CostModel,
    ) -> Result<SwapReport, VmmError> {
        let want = pages.min(self.held_pages(pid));
        let gfns = vm.guest.swap_in_anon(pid, want)?;
        let n = gfns.len() as u64;
        // Back the faulted pages with host memory.
        let fresh: Vec<_> = gfns
            .iter()
            .copied()
            .filter(|&g| !vm.ept.is_backed(g))
            .collect();
        host.reserve(fresh.len() as u64 * PAGE_SIZE)?;
        vm.ept.populate(&fresh);
        // The pool gives back its retained share.
        if let SwapBackend::Compressed { retain_ratio } = self.backend {
            let retained = (n as f64 * PAGE_SIZE as f64 * retain_ratio) as u64;
            let give_back = retained.min(self.pool_bytes);
            self.pool_bytes -= give_back;
            host.release(give_back);
        }
        *self.held.entry(pid.0).or_default() -= n;
        self.stats.pages_in += n;
        let per_page = match self.backend {
            SwapBackend::Disk => cost.swap_in_page_disk_ns,
            SwapBackend::Compressed { .. } => cost.swap_decompress_page_ns,
        };
        Ok(SwapReport {
            pages: n,
            host_bytes: fresh.len() as u64 * PAGE_SIZE,
            latency: SimDuration::nanos(per_page * n) + cost.ept_faults(fresh.len() as u64),
        })
    }

    /// Drops the swap slots of an exited process (disk space or pool
    /// bytes come back without any swap-in).
    pub fn forget(&mut self, host: &mut HostMemory, pid: Pid) {
        if let Some(n) = self.held.remove(&pid.0) {
            if let SwapBackend::Compressed { retain_ratio } = self.backend {
                let retained = (n as f64 * PAGE_SIZE as f64 * retain_ratio) as u64;
                let give_back = retained.min(self.pool_bytes);
                self.pool_bytes -= give_back;
                host.release(give_back);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_mm::{AllocPolicy, GuestMmConfig};
    use mem_types::{GIB, MIB};
    use vmm::VmConfig;

    fn setup() -> (Vm, HostMemory, CostModel) {
        let cost = CostModel::default();
        let mut host = HostMemory::new(8 * GIB);
        let vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: 512 * MIB,
                    hotplug_bytes: GIB,
                    kernel_bytes: 64 * MIB,
                    init_on_alloc: true,
                },
                vcpus: 2.0,
            },
            &mut host,
        )
        .unwrap();
        (vm, host, cost)
    }

    #[test]
    fn disk_swap_round_trip_releases_and_restores() {
        let (mut vm, mut host, cost) = setup();
        let mut dev = SwapDevice::new(SwapBackend::Disk);
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        let rss0 = vm.host_rss();

        let out = dev
            .swap_out(&mut vm, &mut host, pid, 10_000, &cost)
            .unwrap();
        assert_eq!(out.pages, 10_000);
        assert_eq!(out.host_bytes, 10_000 * PAGE_SIZE);
        assert_eq!(vm.host_rss(), rss0 - 10_000 * PAGE_SIZE);
        assert_eq!(host.used_bytes(), vm.host_rss());
        assert_eq!(dev.held_pages(pid), 10_000);

        let back = dev.swap_in(&mut vm, &mut host, pid, 10_000, &cost).unwrap();
        assert_eq!(back.pages, 10_000);
        assert_eq!(vm.guest.process(pid).unwrap().rss_pages(), 10_000);
        assert_eq!(dev.held_pages(pid), 0);
        // Major faults are dearer than the write-out.
        assert!(back.latency > out.latency);
        vm.guest.assert_consistent();
    }

    #[test]
    fn compressed_pool_retains_a_share() {
        let (mut vm, mut host, cost) = setup();
        let mut dev = SwapDevice::new(SwapBackend::Compressed { retain_ratio: 0.4 });
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 10_000, &cost).unwrap();
        let used0 = host.used_bytes();

        let out = dev
            .swap_out(&mut vm, &mut host, pid, 10_000, &cost)
            .unwrap();
        let full = 10_000 * PAGE_SIZE;
        assert!(out.host_bytes < full, "pool retains a share");
        assert_eq!(out.host_bytes, full - dev.pool_bytes());
        assert_eq!(host.used_bytes(), used0 - out.host_bytes);

        // Swap-in gives the retained share back.
        dev.swap_in(&mut vm, &mut host, pid, 10_000, &cost).unwrap();
        assert_eq!(dev.pool_bytes(), 0);
        assert_eq!(host.used_bytes(), used0);
    }

    #[test]
    fn compressed_is_faster_but_saves_less() {
        let (mut vm, mut host, cost) = setup();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 20_000, &cost).unwrap();
        let mut disk = SwapDevice::new(SwapBackend::Disk);
        let d = disk
            .swap_out(&mut vm, &mut host, pid, 10_000, &cost)
            .unwrap();
        let mut comp = SwapDevice::new(SwapBackend::Compressed { retain_ratio: 0.4 });
        let c = comp
            .swap_out(&mut vm, &mut host, pid, 10_000, &cost)
            .unwrap();
        assert!(c.latency < d.latency, "compression beats SSD writes");
        assert!(c.host_bytes < d.host_bytes, "but releases less");
    }

    #[test]
    fn forget_returns_pool_bytes_of_dead_process() {
        let (mut vm, mut host, cost) = setup();
        let mut dev = SwapDevice::new(SwapBackend::Compressed { retain_ratio: 0.5 });
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        dev.swap_out(&mut vm, &mut host, pid, 1000, &cost).unwrap();
        assert!(dev.pool_bytes() > 0);
        let used = host.used_bytes();
        vm.guest.exit_process(pid).unwrap();
        dev.forget(&mut host, pid);
        assert_eq!(dev.pool_bytes(), 0);
        assert!(host.used_bytes() < used);
    }

    #[test]
    fn swap_in_caps_at_held_pages() {
        let (mut vm, mut host, cost) = setup();
        let mut dev = SwapDevice::new(SwapBackend::Disk);
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        vm.touch_anon(&mut host, pid, 100, &cost).unwrap();
        dev.swap_out(&mut vm, &mut host, pid, 40, &cost).unwrap();
        let r = dev.swap_in(&mut vm, &mut host, pid, 1000, &cost).unwrap();
        assert_eq!(r.pages, 40);
        assert_eq!(dev.stats().pages_out, 40);
        assert_eq!(dev.stats().pages_in, 40);
    }
}
