//! Process address spaces: the simulator's `mm_struct`.
//!
//! A process owns a set of anonymous pages (its resident set) and an
//! allocation policy deciding which zones serve its faults — the paper's
//! Squeezy extension adds a partition id to Linux's `mm_struct` so the
//! fault path can "only allocate pages from the specific partition for
//! the process" (§4.1). Here the policy enum plays that role.

use mem_types::Gfn;

/// Process identifier inside one guest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Where a process's anonymous faults are served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// Default Linux behaviour: movable zones first, normal as fallback.
    MovableDefault,
    /// Squeezy: allocate only from the given zone (partition); OOM-kill
    /// rather than spill into other zones (§4.1 "OS mechanisms (e.g. the
    /// OOM Killer) are triggered ... to prevent violations of partition
    /// isolation").
    PinnedZone(u8),
}

/// A process address space (the simulator's `mm_struct`).
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// Allocation policy for anonymous faults.
    pub policy: AllocPolicy,
    /// Resident anonymous pages. `PageDesc.b` of each page stores its
    /// index here so migration and free can update the set in O(1).
    pub pages: Vec<Gfn>,
    /// Head frames of resident 2 MiB transparent huge pages. As with
    /// `pages`, `PageDesc.b` of each head stores its index here.
    pub huge_pages: Vec<Gfn>,
    /// Pages currently swapped out to the host swap device (counts, not
    /// identities: swap slots live host-side).
    pub swapped: u64,
}

impl Process {
    /// Creates an empty address space.
    pub fn new(pid: Pid, policy: AllocPolicy) -> Self {
        Process {
            pid,
            policy,
            pages: Vec::new(),
            huge_pages: Vec::new(),
            swapped: 0,
        }
    }

    /// Returns the anonymous resident set size in 4 KiB pages (huge pages
    /// count as 512 each).
    pub fn rss_pages(&self) -> u64 {
        self.pages.len() as u64 + self.huge_pages.len() as u64 * crate::page::PAGES_PER_HUGE
    }

    /// Returns the number of resident huge pages.
    pub fn rss_huge(&self) -> u64 {
        self.huge_pages.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_empty() {
        let p = Process::new(Pid(7), AllocPolicy::MovableDefault);
        assert_eq!(p.pid, Pid(7));
        assert_eq!(p.rss_pages(), 0);
        assert_eq!(p.rss_huge(), 0);
        assert_eq!(p.policy, AllocPolicy::MovableDefault);
    }

    #[test]
    fn huge_pages_count_512_base_pages_each() {
        let mut p = Process::new(Pid(1), AllocPolicy::MovableDefault);
        p.pages.push(Gfn(3));
        p.huge_pages.push(Gfn(512));
        p.huge_pages.push(Gfn(1024));
        assert_eq!(p.rss_pages(), 1 + 2 * 512);
        assert_eq!(p.rss_huge(), 2);
    }

    #[test]
    fn pinned_policy_carries_zone() {
        let p = Process::new(Pid(1), AllocPolicy::PinnedZone(5));
        match p.policy {
            AllocPolicy::PinnedZone(z) => assert_eq!(z, 5),
            _ => panic!("wrong policy"),
        }
    }
}
