//! Transparent huge pages (2 MiB) in the guest memory manager.
//!
//! The paper's testbed enables THP on the host and notes that guest
//! memory is allocated "in page granularity (4KiB or 2MiB)" (§7). This
//! module adds the guest half of that: anonymous faults may be served by
//! order-9 buddy allocations when the zone has the contiguity, falling
//! back to base pages when it does not — the fallback rate is itself a
//! fragmentation metric (cf. the fragmentation pathologies of §2.2).
//!
//! Huge pages interact with hot-unplug the way they do in Linux:
//!
//! * a huge page inside an offlining block is migrated *as a unit* when
//!   an order-9 target exists elsewhere;
//! * otherwise it is **split** into 512 base pages that migrate
//!   individually — slower, and the reason THP and dense memory
//!   hot-unplug compose poorly on vanilla paths. Squeezy side-steps both
//!   cases: partitions are reclaimed only when empty.

use mem_types::Gfn;

use crate::page::{PageState, HUGE_ORDER, PAGES_PER_HUGE};
use crate::{GuestMm, MmError, Pid};

/// Result of a huge-backed anonymous fault burst.
#[derive(Clone, Debug, Default)]
pub struct HugeFaultOutcome {
    /// Head frames mapped as real 2 MiB huge pages.
    pub huge_heads: Vec<Gfn>,
    /// Base pages allocated by fallback when no order-9 contiguity was
    /// available (whole huge requests fall back as 512 base pages).
    pub fallback_pages: Vec<Gfn>,
}

impl HugeFaultOutcome {
    /// Total 4 KiB pages mapped by the burst.
    pub fn total_pages(&self) -> u64 {
        self.huge_heads.len() as u64 * PAGES_PER_HUGE + self.fallback_pages.len() as u64
    }

    /// Fraction of requested huge pages actually mapped huge (1.0 when
    /// nothing fell back; 0.0 when everything did). `None` if the burst
    /// mapped nothing.
    pub fn huge_success_rate(&self) -> Option<f64> {
        let total = self.total_pages();
        if total == 0 {
            return None;
        }
        Some(self.huge_heads.len() as u64 as f64 * PAGES_PER_HUGE as f64 / total as f64)
    }
}

/// How one huge page inside an offlining block was evacuated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum HugeEvacuation {
    /// Migrated whole to an order-9 target.
    Whole,
    /// Split in place; the caller must migrate the resulting base pages.
    Split,
}

impl GuestMm {
    /// Faults `n_huge` 2 MiB huge pages into `pid`'s address space.
    ///
    /// Each huge request tries an order-9 allocation from the process's
    /// zonelist first; when no zone has the contiguity the request falls
    /// back to 512 base-page allocations (Linux's THP fault fallback).
    /// On `Err(OutOfMemory)` the memory mapped before exhaustion remains
    /// attached to the process, as with [`GuestMm::fault_anon`].
    pub fn fault_anon_huge(&mut self, pid: Pid, n_huge: u64) -> Result<HugeFaultOutcome, MmError> {
        let policy = self.procs.get(&pid.0).ok_or(MmError::NoSuchProcess)?.policy;
        let zonelist = self.zonelist_for(policy);
        let mut out = HugeFaultOutcome::default();
        for _ in 0..n_huge {
            match self.alloc_order_from_zonelist(&zonelist, HUGE_ORDER) {
                Some(head) => {
                    let proc = self.procs.get_mut(&pid.0).expect("checked above");
                    let slot = proc.huge_pages.len() as u32;
                    proc.huge_pages.push(head);
                    self.claim_huge(head, pid.0, slot);
                    out.huge_heads.push(head);
                    self.stats.huge_faults += 1;
                }
                None => {
                    // THP fallback: 512 base pages instead.
                    self.stats.huge_fallbacks += 1;
                    match self.fault_anon(pid, PAGES_PER_HUGE) {
                        Ok(pages) => out.fallback_pages.extend(pages),
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        self.stats.anon_faults += out.huge_heads.len() as u64 * PAGES_PER_HUGE;
        Ok(out)
    }

    /// Releases the `n` most recently faulted huge pages of `pid`.
    /// Returns the number of huge pages actually freed.
    pub fn free_anon_huge(&mut self, pid: Pid, n: u64) -> Result<u64, MmError> {
        let mut freed = 0;
        for _ in 0..n {
            let Some(head) = self
                .procs
                .get_mut(&pid.0)
                .ok_or(MmError::NoSuchProcess)?
                .huge_pages
                .pop()
            else {
                break;
            };
            self.release_huge(head);
            freed += 1;
        }
        Ok(freed)
    }

    /// Claims a freshly allocated order-9 block (pages in `FreeTail`
    /// state, already out of the buddy) as a huge page for `owner`.
    pub(crate) fn claim_huge(&mut self, head: Gfn, owner: u32, slot: u32) {
        debug_assert_eq!(head.0 % PAGES_PER_HUGE, 0, "huge head misaligned");
        for i in 0..PAGES_PER_HUGE {
            let g = Gfn(head.0 + i);
            debug_assert_eq!(self.memmap.state(g), PageState::FreeTail);
            let d = self.memmap.page_mut(g);
            d.state = if i == 0 {
                PageState::HugeHead
            } else {
                PageState::HugeTail
            };
            d.a = owner;
            d.b = slot;
        }
        // A 2 MiB huge page never straddles a 128 MiB block.
        let c = self.blocks.counters_mut(head.block());
        c.free -= PAGES_PER_HUGE as u32;
        c.used_movable += PAGES_PER_HUGE as u32;
    }

    /// Frees a whole huge page back to its zone's buddy.
    pub(crate) fn release_huge(&mut self, head: Gfn) {
        debug_assert_eq!(self.memmap.state(head), PageState::HugeHead);
        let zone = self.memmap.page(head).zone;
        let c = self.blocks.counters_mut(head.block());
        c.used_movable -= PAGES_PER_HUGE as u32;
        c.free += PAGES_PER_HUGE as u32;
        self.zones[zone as usize].free_block(&mut self.memmap, head, HUGE_ORDER);
    }

    /// Evacuates the huge page at `head` out of an offlining block:
    /// whole-unit migration to an order-9 target when one exists,
    /// otherwise an in-place split (the caller migrates the resulting
    /// base pages individually).
    pub(crate) fn evacuate_huge(&mut self, head: Gfn) -> HugeEvacuation {
        let (zone, owner, slot) = {
            let d = self.memmap.page(head);
            debug_assert_eq!(d.state, PageState::HugeHead);
            (d.zone, d.a, d.b)
        };
        let mut zonelist = vec![zone];
        if zone != crate::ZONE_MOVABLE {
            zonelist.push(crate::ZONE_MOVABLE);
        }
        if zone != crate::ZONE_NORMAL {
            zonelist.push(crate::ZONE_NORMAL);
        }
        if let Some(target) = self.alloc_order_from_zonelist(&zonelist, HUGE_ORDER) {
            // Whole-huge migration: claim the target, patch the owner's
            // huge set, isolate the source range.
            self.claim_huge(target, owner, slot);
            let proc = self
                .procs
                .get_mut(&owner)
                .expect("huge page owned by live process");
            proc.huge_pages[slot as usize] = target;
            let from = head.block();
            for i in 0..PAGES_PER_HUGE {
                self.memmap.page_mut(Gfn(head.0 + i)).state = PageState::Isolated;
            }
            let c = self.blocks.counters_mut(from);
            c.used_movable -= PAGES_PER_HUGE as u32;
            c.isolated += PAGES_PER_HUGE as u32;
            self.stats.huge_migrated += 1;
            HugeEvacuation::Whole
        } else {
            self.split_huge(head);
            HugeEvacuation::Split
        }
    }

    /// Splits the huge page at `head` into 512 independent base `Anon`
    /// pages in place (block counters are unchanged: the pages stay
    /// used-movable). The owner's bookkeeping moves from the huge set to
    /// the base-page set.
    pub(crate) fn split_huge(&mut self, head: Gfn) {
        let (owner, slot) = {
            let d = self.memmap.page(head);
            debug_assert_eq!(d.state, PageState::HugeHead);
            (d.a, d.b)
        };
        // Remove from the owner's huge set (swap_remove + patch the
        // moved entry's slot, as the migration path does for base pages).
        let moved = {
            let proc = self
                .procs
                .get_mut(&owner)
                .expect("huge page owned by live process");
            debug_assert_eq!(proc.huge_pages[slot as usize], head);
            proc.huge_pages.swap_remove(slot as usize);
            proc.huge_pages.get(slot as usize).copied()
        };
        if let Some(m) = moved {
            for i in 0..PAGES_PER_HUGE {
                self.memmap.page_mut(Gfn(m.0 + i)).b = slot;
            }
        }
        // Rewrite every frame as an individual Anon page owned by the
        // same process.
        for i in 0..PAGES_PER_HUGE {
            let g = Gfn(head.0 + i);
            let proc = self.procs.get_mut(&owner).expect("owner alive");
            let base_slot = proc.pages.len() as u32;
            proc.pages.push(g);
            let d = self.memmap.page_mut(g);
            d.state = PageState::Anon;
            d.a = owner;
            d.b = base_slot;
        }
        self.stats.huge_splits += 1;
    }

    /// Allocates one order-`order` block from the first zone in
    /// `zonelist` that can serve it.
    pub(crate) fn alloc_order_from_zonelist(&mut self, zonelist: &[u8], order: u8) -> Option<Gfn> {
        for &z in zonelist {
            if let Some(g) = self.zones[z as usize].alloc_block(&mut self.memmap, order) {
                return Some(g);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::AllocPolicy;
    use crate::{BlockState, GuestMmConfig, ZONE_MOVABLE};
    use mem_types::{BlockId, PAGE_SIZE};

    const MIB: u64 = 1 << 20;

    fn config() -> GuestMmConfig {
        GuestMmConfig {
            boot_bytes: 256 * MIB,
            hotplug_bytes: 512 * MIB,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        }
    }

    fn mm_with_movable_blocks(n: u64) -> GuestMm {
        let mut mm = GuestMm::new(config());
        for i in 2..2 + n {
            mm.hot_add_block(BlockId(i)).unwrap();
            mm.online_block(BlockId(i), ZONE_MOVABLE).unwrap();
        }
        mm
    }

    #[test]
    fn huge_fault_maps_aligned_heads() {
        let mut mm = mm_with_movable_blocks(1);
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        let out = mm.fault_anon_huge(pid, 4).unwrap();
        assert_eq!(out.huge_heads.len(), 4);
        assert!(out.fallback_pages.is_empty());
        assert_eq!(out.huge_success_rate(), Some(1.0));
        for h in &out.huge_heads {
            assert_eq!(h.0 % PAGES_PER_HUGE, 0, "head misaligned");
            assert_eq!(mm.memmap().state(*h), PageState::HugeHead);
            assert_eq!(mm.memmap().state(Gfn(h.0 + 1)), PageState::HugeTail);
            assert_eq!(
                mm.memmap().state(Gfn(h.0 + PAGES_PER_HUGE - 1)),
                PageState::HugeTail
            );
        }
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 4 * PAGES_PER_HUGE);
        assert_eq!(mm.process(pid).unwrap().rss_huge(), 4);
        assert_eq!(mm.used_bytes(), 32 * MIB + 4 * PAGES_PER_HUGE * PAGE_SIZE);
        mm.assert_consistent();
    }

    #[test]
    fn huge_fault_falls_back_when_fragmented() {
        let mut mm = mm_with_movable_blocks(1);
        // Fragment the movable zone: claim base pages so that no free
        // order-9 chunk remains, then free every other one.
        let frag = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        let total = mem_types::PAGES_PER_BLOCK;
        mm.fault_anon(frag, total).unwrap();
        let held: Vec<Gfn> = mm.process(frag).unwrap().pages.clone();
        for g in held.iter().filter(|g| g.0 % 2 == 0) {
            // Free even frames: every free run is 1 page long.
            mm.free_anon_page(frag, *g).unwrap();
        }

        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        let out = mm.fault_anon_huge(pid, 1).unwrap();
        assert!(out.huge_heads.is_empty(), "no contiguity for huge");
        assert_eq!(out.fallback_pages.len(), PAGES_PER_HUGE as usize);
        assert_eq!(out.huge_success_rate(), Some(0.0));
        assert_eq!(mm.stats().huge_fallbacks, 1);
        mm.assert_consistent();
    }

    #[test]
    fn free_anon_huge_returns_contiguity() {
        let mut mm = mm_with_movable_blocks(1);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        mm.fault_anon_huge(pid, 8).unwrap();
        assert_eq!(mm.free_anon_huge(pid, 3).unwrap(), 3);
        assert_eq!(mm.process(pid).unwrap().rss_huge(), 5);
        // Freeing more than resident frees what is there.
        assert_eq!(mm.free_anon_huge(pid, 100).unwrap(), 5);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 0);
        // Everything merged back: another full-block huge run succeeds.
        let out = mm
            .fault_anon_huge(pid, mem_types::PAGES_PER_BLOCK / PAGES_PER_HUGE)
            .unwrap();
        assert!(out.fallback_pages.is_empty());
        mm.assert_consistent();
    }

    #[test]
    fn exit_frees_huge_pages_too() {
        let mut mm = mm_with_movable_blocks(1);
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 100).unwrap();
        mm.fault_anon_huge(pid, 2).unwrap();
        let used0 = mm.used_bytes();
        let freed = mm.exit_process(pid).unwrap();
        assert_eq!(freed, 100 + 2 * PAGES_PER_HUGE);
        assert_eq!(mm.used_bytes(), used0 - freed * PAGE_SIZE);
        mm.assert_consistent();
    }

    #[test]
    fn offline_migrates_huge_whole_when_target_exists() {
        let mut mm = mm_with_movable_blocks(2);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        mm.fault_anon_huge(pid, 3).unwrap();
        let b = mm.process(pid).unwrap().huge_pages[0].block();
        let out = mm.offline_block(b).unwrap();
        assert_eq!(out.migrated_huge, 3, "all three moved whole");
        assert_eq!(out.huge_splits, 0);
        assert_eq!(out.migrated, 0, "no base-page migrations");
        // The process still owns 3 huge pages, now in the other block.
        let p = mm.process(pid).unwrap();
        assert_eq!(p.rss_huge(), 3);
        for h in &p.huge_pages {
            assert_ne!(h.block(), b);
            assert_eq!(mm.memmap().state(*h), PageState::HugeHead);
        }
        assert_eq!(mm.blocks().state(b), BlockState::AddedOffline);
        mm.assert_consistent();
    }

    #[test]
    fn offline_splits_huge_when_no_order9_target() {
        // Single movable block holding the huge page; the only fallback
        // (ZONE_NORMAL) is too fragmented for order-9 but has base pages.
        let mut mm = mm_with_movable_blocks(1);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        mm.fault_anon_huge(pid, 1).unwrap();
        let b = mm.process(pid).unwrap().huge_pages[0].block();

        // Fragment ZONE_NORMAL: exhaust it, then free scattered pages.
        let frag = mm.spawn_process(AllocPolicy::PinnedZone(crate::ZONE_NORMAL));
        let free_now = mm.zone(crate::ZONE_NORMAL).free_pages;
        mm.fault_anon(frag, free_now).unwrap();
        let held: Vec<Gfn> = mm.process(frag).unwrap().pages.clone();
        for g in held.iter().filter(|g| g.0 % 2 == 0) {
            mm.free_anon_page(frag, *g).unwrap();
        }

        let out = mm.offline_block(b).unwrap();
        assert_eq!(out.migrated_huge, 0);
        assert_eq!(out.huge_splits, 1, "huge page split before migrating");
        assert_eq!(out.migrated, PAGES_PER_HUGE, "512 base migrations");
        let p = mm.process(pid).unwrap();
        assert_eq!(p.rss_huge(), 0, "huge page demoted");
        assert_eq!(p.rss_pages(), PAGES_PER_HUGE);
        mm.assert_consistent();
    }

    #[test]
    fn instant_offline_rejects_huge_occupied_block() {
        let mut mm = mm_with_movable_blocks(1);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        mm.fault_anon_huge(pid, 1).unwrap();
        let b = mm.process(pid).unwrap().huge_pages[0].block();
        assert_eq!(mm.offline_block_instant(b), Err(MmError::BlockNotEmpty));
        mm.exit_process(pid).unwrap();
        assert!(mm.offline_block_instant(b).is_ok());
        mm.assert_consistent();
    }

    #[test]
    fn huge_stats_accumulate() {
        let mut mm = mm_with_movable_blocks(2);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        mm.fault_anon_huge(pid, 2).unwrap();
        let b = mm.process(pid).unwrap().huge_pages[0].block();
        mm.offline_block(b).unwrap();
        let s = mm.stats();
        assert_eq!(s.huge_faults, 2);
        assert_eq!(s.huge_migrated, 2);
        assert_eq!(s.huge_splits, 0);
        assert_eq!(s.anon_faults, 2 * PAGES_PER_HUGE);
    }

    #[test]
    fn mixed_base_and_huge_offline() {
        let mut mm = mm_with_movable_blocks(2);
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        // Base pages land first, then huge pages from the same block.
        mm.fault_anon(pid, 64).unwrap();
        mm.fault_anon_huge(pid, 1).unwrap();
        let b = mm.process(pid).unwrap().huge_pages[0].block();
        let out = mm.offline_block(b).unwrap();
        assert_eq!(out.migrated_huge, 1);
        assert_eq!(out.migrated, 64);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 64 + PAGES_PER_HUGE);
        mm.assert_consistent();
    }

    #[test]
    fn huge_success_rate_reporting() {
        let out = HugeFaultOutcome::default();
        assert_eq!(out.huge_success_rate(), None);
        let out = HugeFaultOutcome {
            huge_heads: vec![Gfn(0)],
            fallback_pages: (0..PAGES_PER_HUGE).map(Gfn).collect(),
        };
        assert_eq!(out.huge_success_rate(), Some(0.5));
        assert_eq!(out.total_pages(), 2 * PAGES_PER_HUGE);
    }
}
