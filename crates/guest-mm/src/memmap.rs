//! The guest memory map: one [`PageDesc`] per guest frame.

use mem_types::{FrameRange, Gfn};

use crate::page::{PageDesc, PageState};

/// The simulator's `memmap` array covering the whole guest physical
/// address space (boot memory plus the hot-pluggable device region).
///
/// Hot-add materializes descriptors for a block's frames (Absent →
/// Offline); hot-remove destroys them again, exactly like the kernel
/// populating and tearing down `struct page` ranges (§2.2).
pub struct MemMap {
    pages: Vec<PageDesc>,
}

impl MemMap {
    /// Creates a map covering `frames` guest frames, all absent.
    pub fn new(frames: u64) -> Self {
        MemMap {
            pages: vec![PageDesc::ABSENT; frames as usize],
        }
    }

    /// Returns the number of frames covered.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Returns `true` if the map covers zero frames.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Returns the descriptor of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is beyond the covered address space.
    #[inline]
    pub fn page(&self, g: Gfn) -> &PageDesc {
        &self.pages[g.0 as usize]
    }

    /// Returns the mutable descriptor of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is beyond the covered address space.
    #[inline]
    pub fn page_mut(&mut self, g: Gfn) -> &mut PageDesc {
        &mut self.pages[g.0 as usize]
    }

    /// Returns the state of `g`.
    #[inline]
    pub fn state(&self, g: Gfn) -> PageState {
        self.page(g).state
    }

    /// Returns the descriptors of `range` as one mutable slice — the
    /// bulk paths (onlining, buddy frees, run claims) sweep descriptors
    /// through this instead of taking a bounds check per page.
    ///
    /// # Panics
    ///
    /// Panics if `range` runs past the covered address space.
    #[inline]
    pub fn range_mut(&mut self, range: FrameRange) -> &mut [PageDesc] {
        &mut self.pages[range.start.0 as usize..(range.start.0 + range.count) as usize]
    }

    /// Counts pages in `range` matching `pred`.
    pub fn count_in(&self, range: FrameRange, pred: impl Fn(&PageDesc) -> bool) -> u64 {
        range.iter().filter(|&g| pred(self.page(g))).count() as u64
    }

    /// Finds the head of the free buddy block containing free page `g`.
    ///
    /// Walks candidate heads of increasing order; at most
    /// [`MAX_ORDER`](crate::page::MAX_ORDER) + 1 probes.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not part of any free buddy block (caller must
    /// check the page is free first).
    pub fn free_block_head(&self, g: Gfn) -> (Gfn, u8) {
        debug_assert!(self.state(g).is_free(), "page {g:?} is not free");
        for order in 0..=crate::page::MAX_ORDER {
            let head = Gfn(g.0 & !((1u64 << order) - 1));
            let d = self.page(head);
            if d.state == PageState::FreeHead && d.order == order {
                return (head, order);
            }
        }
        panic!("free page {g:?} has no containing buddy block");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_map_is_absent() {
        let m = MemMap::new(100);
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
        for i in 0..100 {
            assert_eq!(m.state(Gfn(i)), PageState::Absent);
        }
    }

    #[test]
    fn count_in_counts_matching_pages() {
        let mut m = MemMap::new(16);
        m.page_mut(Gfn(3)).state = PageState::Anon;
        m.page_mut(Gfn(4)).state = PageState::Anon;
        m.page_mut(Gfn(5)).state = PageState::Kernel;
        let r = FrameRange::new(Gfn(0), 16);
        assert_eq!(m.count_in(r, |p| p.state == PageState::Anon), 2);
        assert_eq!(m.count_in(r, |p| p.state.is_used()), 3);
        let r2 = FrameRange::new(Gfn(4), 2);
        assert_eq!(m.count_in(r2, |p| p.state == PageState::Anon), 1);
    }

    #[test]
    fn free_block_head_finds_head() {
        let mut m = MemMap::new(1024);
        // Make pages [512, 1024) a free order-9 block.
        let head = Gfn(512);
        m.page_mut(head).state = PageState::FreeHead;
        m.page_mut(head).order = 9;
        for i in 513..1024 {
            m.page_mut(Gfn(i)).state = PageState::FreeTail;
        }
        assert_eq!(m.free_block_head(Gfn(512)), (head, 9));
        assert_eq!(m.free_block_head(Gfn(777)), (head, 9));
        assert_eq!(m.free_block_head(Gfn(1023)), (head, 9));
    }

    #[test]
    fn free_block_head_order_zero() {
        let mut m = MemMap::new(8);
        m.page_mut(Gfn(5)).state = PageState::FreeHead;
        m.page_mut(Gfn(5)).order = 0;
        assert_eq!(m.free_block_head(Gfn(5)), (Gfn(5), 0));
    }
}
