//! Per-page metadata: the simulator's `struct page`.
//!
//! The guest memory map ([`crate::memmap::MemMap`]) holds one 12-byte
//! [`PageDesc`] per 4 KiB guest frame, mirroring the Linux `memmap` array
//! the paper discusses in §2.2. The two word fields are overloaded the way
//! the kernel overloads `struct page`: free pages use them as intrusive
//! free-list links, allocated pages as owner back-references.

/// Sentinel for "no link" in intrusive free lists.
pub const NIL: u32 = u32::MAX;

/// Maximum buddy order (order 10 = 4 MiB), the Linux `MAX_PAGE_ORDER`.
pub const MAX_ORDER: u8 = 10;

/// Buddy order of a 2 MiB transparent huge page (`HPAGE_PMD_ORDER`).
pub const HUGE_ORDER: u8 = 9;

/// Number of 4 KiB base pages in one 2 MiB huge page.
pub const PAGES_PER_HUGE: u64 = 1 << HUGE_ORDER;

/// Zone index meaning "no zone" (page not onlined anywhere).
pub const NO_ZONE: u8 = u8::MAX;

/// The allocation state of a guest page frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageState {
    /// No backing `memmap` entry: the block is not hot-added.
    Absent = 0,
    /// Hot-added but not onlined (or offlined): invisible to the buddy.
    Offline = 1,
    /// Head page of a free buddy block of `order` pages.
    FreeHead = 2,
    /// Interior page of a free buddy block (its head is below it).
    FreeTail = 3,
    /// Anonymous page owned by a process (`owner` = pid).
    Anon = 4,
    /// Page-cache page owned by a file (`owner` = file id).
    File = 5,
    /// Unmovable kernel allocation.
    Kernel = 6,
    /// Pulled out of the buddy by the offlining path; not allocatable.
    Isolated = 7,
    /// Head page of a 2 MiB anonymous transparent huge page
    /// (`owner` = pid, `slot` = index in the process's huge-page set).
    HugeHead = 8,
    /// Interior page of a huge page; its 512-aligned head carries the
    /// mapping. Owner fields mirror the head's for O(1) lookups.
    HugeTail = 9,
}

impl PageState {
    /// Returns `true` for pages sitting in buddy free lists.
    pub fn is_free(self) -> bool {
        matches!(self, PageState::FreeHead | PageState::FreeTail)
    }

    /// Returns `true` for pages holding data that must be migrated before
    /// their block can be offlined.
    pub fn is_used(self) -> bool {
        matches!(
            self,
            PageState::Anon
                | PageState::File
                | PageState::Kernel
                | PageState::HugeHead
                | PageState::HugeTail
        )
    }

    /// Returns `true` if the page's contents can be migrated elsewhere.
    pub fn is_movable(self) -> bool {
        matches!(
            self,
            PageState::Anon | PageState::File | PageState::HugeHead | PageState::HugeTail
        )
    }

    /// Returns `true` for pages belonging to a transparent huge page.
    pub fn is_huge(self) -> bool {
        matches!(self, PageState::HugeHead | PageState::HugeTail)
    }
}

/// Per-frame metadata (12 bytes).
#[derive(Clone, Copy, Debug)]
pub struct PageDesc {
    /// Allocation state.
    pub state: PageState,
    /// Buddy order; meaningful only when `state == FreeHead`.
    pub order: u8,
    /// Index of the zone this page currently belongs to, or [`NO_ZONE`].
    pub zone: u8,
    /// Spare flags byte (keeps the struct naturally aligned).
    pub flags: u8,
    /// `FreeHead`: previous free-list link. `Anon`/`File`: owner id.
    pub a: u32,
    /// `FreeHead`: next free-list link. `Anon`/`File`: owner's slot index.
    pub b: u32,
}

impl PageDesc {
    /// An absent page (no memmap coverage).
    pub const ABSENT: PageDesc = PageDesc {
        state: PageState::Absent,
        order: 0,
        zone: NO_ZONE,
        flags: 0,
        a: NIL,
        b: NIL,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_desc_is_small() {
        assert!(
            core::mem::size_of::<PageDesc>() <= 12,
            "PageDesc grew to {} bytes; a 64 GiB VM memmap would bloat",
            core::mem::size_of::<PageDesc>()
        );
    }

    #[test]
    fn state_predicates() {
        assert!(PageState::FreeHead.is_free());
        assert!(PageState::FreeTail.is_free());
        assert!(!PageState::Anon.is_free());
        assert!(PageState::Anon.is_used());
        assert!(PageState::File.is_used());
        assert!(PageState::Kernel.is_used());
        assert!(!PageState::Offline.is_used());
        assert!(PageState::Anon.is_movable());
        assert!(PageState::File.is_movable());
        assert!(!PageState::Kernel.is_movable());
        assert!(!PageState::Isolated.is_movable());
    }

    #[test]
    fn huge_state_predicates() {
        assert!(PageState::HugeHead.is_used());
        assert!(PageState::HugeTail.is_used());
        assert!(PageState::HugeHead.is_movable());
        assert!(PageState::HugeTail.is_movable());
        assert!(PageState::HugeHead.is_huge());
        assert!(PageState::HugeTail.is_huge());
        assert!(!PageState::HugeHead.is_free());
        assert!(!PageState::Anon.is_huge());
        assert!(!PageState::FreeHead.is_huge());
    }

    #[test]
    fn huge_geometry() {
        assert_eq!(PAGES_PER_HUGE, 512);
        assert_eq!(PAGES_PER_HUGE * 4096, 2 * 1024 * 1024);
        const { assert!(HUGE_ORDER < MAX_ORDER, "huge pages fit the buddy") }
    }
}
